//! Descriptive statistics.
//!
//! The AwarePen cue extraction is literally "standard deviation of each
//! acceleration axis over a window" (§3.1), so these primitives sit on the
//! hot path of the sensing pipeline. [`Welford`] provides the numerically
//! stable streaming variant used by the windowed cue extractor.

use crate::{MathError, Result};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(MathError::EmptyInput("mean"));
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population (1/n) variance — the MLE variance the paper's statistics use.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn population_variance(data: &[f64]) -> Result<f64> {
    if cfg!(feature = "strict-math") {
        debug_assert!(data.iter().all(|x| x.is_finite()), "population_variance: non-finite observation");
    }
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Sample (1/(n-1)) variance.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for fewer than two points.
pub fn sample_variance(data: &[f64]) -> Result<f64> {
    if data.len() < 2 {
        return Err(MathError::EmptyInput("sample variance needs >= 2 points"));
    }
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Population standard deviation (the AwarePen cue).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
// lint: allow(ASSERT_DENSITY) -- delegates to population_variance, which guards the domain
pub fn std_dev(data: &[f64]) -> Result<f64> {
    population_variance(data).map(f64::sqrt)
}

/// Minimum and maximum, ignoring NaNs.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if the slice is empty or all-NaN.
// lint: allow(ASSERT_DENSITY) -- NaN-tolerant by contract: NaNs are filtered, empty/all-NaN is an Err
pub fn min_max(data: &[f64]) -> Result<(f64, f64)> {
    let mut it = data.iter().copied().filter(|x| !x.is_nan());
    let first = it.next().ok_or(MathError::EmptyInput("min_max"))?;
    Ok(it.fold((first, first), |(lo, hi), x| (lo.min(x), hi.max(x))))
}

/// Median (average of middle two for even length). Sorts a copy.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn median(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(MathError::EmptyInput("median"));
    }
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    Ok(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Root mean square.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn rms(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(MathError::EmptyInput("rms"));
    }
    Ok((data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64).sqrt())
}

/// Pearson correlation coefficient.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] if lengths differ.
/// * [`MathError::EmptyInput`] for fewer than two points.
/// * [`MathError::Singular`] if either series is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            context: "pearson",
            expected: a.len(),
            actual: b.len(),
        });
    }
    if a.len() < 2 {
        return Err(MathError::EmptyInput("pearson needs >= 2 points"));
    }
    let ma = mean(a)?;
    let mb = mean(b)?;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    // lint: allow(NAN_UNSAFE_CMP) -- exactly-zero variance detects a constant series; anything else falls through to the division
    if va == 0.0 || vb == 0.0 {
        return Err(MathError::Singular("constant series in pearson"));
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// Numerically stable streaming moments (Welford's algorithm).
///
/// ```
/// use cqm_math::stats::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { w.push(x); }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.population_variance() - 1.25).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        if cfg!(feature = "strict-math") {
            debug_assert!(x.is_finite(), "Welford::push: non-finite observation {x}");
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population (1/n) variance; 0 before two observations.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (1/(n-1)) variance; 0 before two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variances_differ_by_bessel() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(close(population_variance(&d).unwrap(), 4.0, 1e-14));
        assert!(close(sample_variance(&d).unwrap(), 32.0 / 7.0, 1e-14));
        assert!(close(std_dev(&d).unwrap(), 2.0, 1e-14));
        assert!(sample_variance(&[1.0]).is_err());
    }

    #[test]
    fn min_max_skips_nan() {
        assert_eq!(min_max(&[3.0, f64::NAN, -1.0, 2.0]).unwrap(), (-1.0, 3.0));
        assert!(min_max(&[f64::NAN]).is_err());
        assert!(min_max(&[]).is_err());
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn rms_known() {
        assert!(close(rms(&[3.0, 4.0]).unwrap(), (12.5f64).sqrt(), 1e-14));
        assert!(rms(&[]).is_err());
    }

    #[test]
    fn pearson_perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!(close(pearson(&a, &b).unwrap(), 1.0, 1e-14));
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!(close(pearson(&a, &c).unwrap(), -1.0, 1e-14));
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(matches!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(MathError::Singular(_))
        ));
    }

    #[test]
    fn welford_matches_batch() {
        let d = [0.3, -1.2, 4.5, 2.2, 0.0, -0.7, 3.3];
        let mut w = Welford::new();
        for &x in &d {
            w.push(x);
        }
        assert_eq!(w.count(), d.len() as u64);
        assert!(close(w.mean(), mean(&d).unwrap(), 1e-12));
        assert!(close(
            w.population_variance(),
            population_variance(&d).unwrap(),
            1e-12
        ));
        assert!(close(w.sample_variance(), sample_variance(&d).unwrap(), 1e-12));
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        let mut w = Welford::new();
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let d1 = [1.0, 2.0, 3.0];
        let d2 = [10.0, 20.0, 30.0, 40.0];
        let mut wa = Welford::new();
        for &x in &d1 {
            wa.push(x);
        }
        let mut wb = Welford::new();
        for &x in &d2 {
            wb.push(x);
        }
        wa.merge(&wb);
        let all: Vec<f64> = d1.iter().chain(&d2).copied().collect();
        assert!(close(wa.mean(), mean(&all).unwrap(), 1e-12));
        assert!(close(
            wa.population_variance(),
            population_variance(&all).unwrap(),
            1e-12
        ));
        // Merging an empty accumulator is a no-op in both directions.
        let snapshot = wa;
        wa.merge(&Welford::new());
        assert_eq!(wa, snapshot);
        let mut we = Welford::new();
        we.merge(&snapshot);
        assert_eq!(we, snapshot);
    }

    #[test]
    fn welford_numerical_stability_large_offset() {
        // Classic catastrophic-cancellation scenario for naive two-pass sums.
        let offset = 1e9;
        let mut w = Welford::new();
        for x in [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0] {
            w.push(x);
        }
        assert!(close(w.mean(), offset + 10.0, 1e-3));
        assert!(close(w.population_variance(), 22.5, 1e-3));
    }
}
