//! Special functions: error function family.
//!
//! The statistical analysis of §2.3 integrates Gaussian densities (the
//! "median cuts" Φ and Φ̄); those integrals reduce to the error function,
//! which the standard library does not provide.

/// Error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Uses the Abramowitz & Stegun 7.1.26-style rational approximation refined
/// with one series/continued-fraction split, giving ~1e-15 relative accuracy,
/// far below anything the statistics layer can resolve.
///
/// ```
/// # use cqm_math::special::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-12);
/// ```
// lint: allow(ASSERT_DENSITY) -- erf is total on R; NaN is handled explicitly on the first line
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    let val = if ax < 1.5 {
        erf_series(ax)
    } else {
        1.0 - erfc_cf(ax)
    };
    if x < 0.0 {
        -val
    } else {
        val
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, accurate in the far
/// tail where `1 − erf(x)` would cancel catastrophically.
// lint: allow(ASSERT_DENSITY) -- erfc is total on R; NaN is handled explicitly on the first line
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 1.5 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series for erf, fast-converging for |x| < 0.5.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^(2n+1) / (n! (2n+1))
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..64 {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
    }
    two_over_sqrt_pi * sum
}

/// Continued-fraction evaluation of erfc for x >= 1.5 (Lentz's method on the
/// Laplace continued fraction), stable deep into the tail.
fn erfc_cf(x: f64) -> f64 {
    if x > 27.0 {
        // exp(-x^2) underflows to 0 well before this; avoid needless work.
        return 0.0;
    }
    // erfc(x) = exp(-x^2)/(x*sqrt(pi)) * 1/(1 + 1/(2x^2)/(1 + 2/(2x^2)/(1 + ...)))
    let x2 = x * x;
    let tiny = 1e-300;
    let mut f = x;
    let mut c = x;
    let mut d = 0.0;
    // CF: x + 0.5/(x + 1.0/(x + 1.5/(x + ...)))  for  integral form
    for k in 1..200 {
        let a = k as f64 / 2.0;
        // b = x for all levels
        d = x + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = x + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x2).exp() / (f * std::f64::consts::PI.sqrt())
}

/// Inverse error function on (−1, 1): `erfinv(erf(x)) = x`.
///
/// Winitzki initial guess polished with two Newton steps; relative accuracy
/// ~1e-12 over the usable domain.
///
/// # Panics
///
/// Panics if `|y| >= 1`.
pub fn erfinv(y: f64) -> f64 {
    assert!(y > -1.0 && y < 1.0, "erfinv domain is (-1, 1), got {y}");
    // lint: allow(NAN_UNSAFE_CMP) -- exact-zero shortcut: erfinv(0) = 0 identically; NaN is excluded by the assert above
    if y == 0.0 {
        return 0.0;
    }
    // Winitzki approximation.
    let a = 0.147;
    let ln1my2 = (1.0 - y * y).ln();
    let term1 = 2.0 / (std::f64::consts::PI * a) + ln1my2 / 2.0;
    let mut x = (y.signum()) * ((term1 * term1 - ln1my2 / a).sqrt() - term1).sqrt();
    // Newton polish: f(x) = erf(x) - y, f'(x) = 2/sqrt(pi) exp(-x^2)
    let c = 2.0 / std::f64::consts::PI.sqrt();
    for _ in 0..3 {
        let err = erf(x) - y;
        let deriv = c * (-x * x).exp();
        // lint: allow(NAN_UNSAFE_CMP) -- a fully underflowed Newton derivative ends polishing; division would blow up
        if deriv == 0.0 {
            break;
        }
        x -= err / deriv;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.1, 0.1124629160182849),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (1.5, 0.9661051464753107),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-12, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-12, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_complementarity() {
        for &x in &[-3.0, -1.0, -0.2, 0.0, 0.3, 0.7, 1.0, 2.5, 5.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) = 1.5374597944280349e-12 — naive 1-erf would lose it all.
        assert!((erfc(5.0) - 1.537_459_794_428_035e-12).abs() / 1.54e-12 < 1e-9);
        // erfc(10) = 2.0884875837625447e-45
        assert!((erfc(10.0) - 2.0884875837625447e-45).abs() / 2.09e-45 < 1e-8);
    }

    #[test]
    fn erf_is_odd_monotone_bounded() {
        let mut prev = -1.0;
        let mut x = -4.0;
        while x <= 4.0 {
            let v = erf(x);
            assert!((-1.0..=1.0).contains(&v));
            assert!(v >= prev);
            assert!((erf(-x) + v).abs() < 1e-13);
            prev = v;
            x += 0.05;
        }
    }

    #[test]
    fn erf_saturates() {
        assert!((erf(30.0) - 1.0).abs() < 1e-15);
        assert_eq!(erfc(30.0), 0.0);
        assert!((erfc(-30.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn erfinv_round_trip() {
        for &x in &[-2.0, -1.0, -0.3, 0.0, 0.1, 0.8, 1.7, 2.4] {
            let y = erf(x);
            assert!((erfinv(y) - x).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "erfinv domain")]
    fn erfinv_domain_checked() {
        let _ = erfinv(1.0);
    }
}
