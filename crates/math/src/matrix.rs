//! Dense row-major matrix of `f64`.
//!
//! Sized for the problems in this workspace: design matrices with a few
//! thousand rows and tens of columns. Simplicity and numerical transparency
//! beat blocked kernels at this scale.

use crate::{MathError, Result};

/// Dense row-major matrix.
///
/// ```
/// use cqm_math::matrix::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix of shape `rows x cols`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows * cols`
    /// and [`MathError::EmptyInput`] if either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(MathError::EmptyInput("matrix dimensions"));
        }
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                context: "from_vec buffer length",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy one column into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch {
                context: "matmul inner dimension",
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // lint: allow(NAN_UNSAFE_CMP) -- exact-zero skip in the sparse-aware inner loop; any other value multiplies through
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                context: "matvec",
                expected: self.cols,
                actual: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, x)| a * x).sum())
            .collect())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MathError::DimensionMismatch {
                context: "matrix add shape",
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        if cfg!(feature = "strict-math") {
            debug_assert!(k.is_finite(), "Matrix::scale: non-finite factor {k}");
        }
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| k * x).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry; 0 for the (impossible) empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Append a row to the bottom of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                context: "push_row width",
                expected: self.cols,
                actual: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(MathError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Matrix::from_vec(0, 2, vec![]),
            Err(MathError::EmptyInput(_))
        ));
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn push_row_grows() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        a.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert!(a.push_row(&[1.0]).is_err());
    }

    #[test]
    fn display_renders_all_entries() {
        let s = Matrix::identity(2).to_string();
        assert!(s.contains("1.0000"));
        assert!(s.contains("0.0000"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(1, 1);
        let _ = a[(1, 0)];
    }
}
