//! Householder QR decomposition.
//!
//! Alternative least-squares backend to [`crate::svd`]; used by the ABL-LSQ
//! ablation to quantify what the paper's SVD choice buys over QR and normal
//! equations on the ANFIS design matrices.

// lint: allow(PANIC_IN_LIB, file) -- dense linear-algebra kernel: dimensions are checked once at entry

use crate::matrix::Matrix;
use crate::{MathError, Result};

/// QR factorisation `A = Q R` of a tall matrix (`rows >= cols`), stored in
/// compact Householder form.
///
/// ```
/// use cqm_math::matrix::Matrix;
/// use cqm_math::qr::Qr;
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let x = Qr::new(&a).unwrap().solve(&[1.0, 2.0, 3.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12); // intercept
/// assert!((x[1] - 1.0).abs() < 1e-12); // slope
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors: R in the upper triangle, Householder vectors below.
    factors: Matrix,
    /// Householder scalar coefficients.
    tau: Vec<f64>,
}

impl Qr {
    /// Factorise `a`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `a` has fewer rows than
    /// columns.
    pub fn new(a: &Matrix) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(MathError::DimensionMismatch {
                context: "qr requires rows >= cols",
                expected: n,
                actual: m,
            });
        }
        let mut f = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm_sq = 0.0;
            for i in k..m {
                norm_sq += f[(i, k)] * f[(i, k)];
            }
            let norm = norm_sq.sqrt();
            // lint: allow(NAN_UNSAFE_CMP) -- an exactly-zero column norm is a degenerate column; tau = 0 marks the reflection skipped
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if f[(k, k)] >= 0.0 { -norm } else { norm };
            let fkk = f[(k, k)] - alpha;
            // v = (x - alpha e1) normalised so v[0] = 1.
            for i in (k + 1)..m {
                f[(i, k)] /= fkk;
            }
            tau[k] = -fkk / alpha;
            f[(k, k)] = alpha;
            // Apply H = I - tau v v^T to the trailing columns.
            for j in (k + 1)..n {
                let mut dot = f[(k, j)];
                for i in (k + 1)..m {
                    dot += f[(i, k)] * f[(i, j)];
                }
                let t = tau[k] * dot;
                f[(k, j)] -= t;
                for i in (k + 1)..m {
                    let vik = f[(i, k)];
                    f[(i, j)] -= t * vik;
                }
            }
        }
        Ok(Qr { factors: f, tau })
    }

    /// Least-squares solve of `A x ≈ b` (`x = R⁻¹ Qᵀ b`).
    ///
    /// # Errors
    ///
    /// * [`MathError::DimensionMismatch`] if `b.len() != rows`.
    /// * [`MathError::Singular`] if `R` has a (near-)zero diagonal entry,
    ///   i.e. `A` is numerically rank-deficient. Use the SVD backend for
    ///   rank-deficient systems.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.factors.rows();
        let n = self.factors.cols();
        if b.len() != m {
            return Err(MathError::DimensionMismatch {
                context: "qr solve rhs",
                expected: m,
                actual: b.len(),
            });
        }
        // y = Qᵀ b by applying the Householder reflections in order.
        let mut y = b.to_vec();
        for k in 0..n {
            // lint: allow(NAN_UNSAFE_CMP) -- tau == 0.0 is the exact skip marker written by the factorization for degenerate columns
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.factors[(i, k)] * y[i];
            }
            let t = self.tau[k] * dot;
            y[k] -= t;
            for i in (k + 1)..m {
                y[i] -= t * self.factors[(i, k)];
            }
        }
        // Back substitution with R.
        let mut x = vec![0.0; n];
        let scale = self.factors.max_abs().max(1.0);
        for k in (0..n).rev() {
            let mut acc = y[k];
            for j in (k + 1)..n {
                acc -= self.factors[(k, j)] * x[j];
            }
            let rkk = self.factors[(k, k)];
            if rkk.abs() < 1e-13 * scale {
                return Err(MathError::Singular("zero diagonal in R"));
            }
            x[k] = acc / rkk;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.factors.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.factors[(i, j)];
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn square_solve() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let x = Qr::new(&a).unwrap().solve(&[9.0, 13.0]).unwrap();
        assert_close(x[0], 1.4, 1e-12);
        assert_close(x[1], 3.4, 1e-12);
    }

    #[test]
    fn overdetermined_regression_matches_svd() {
        let a = Matrix::from_rows(&[
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
            &[3.0, 1.0],
            &[4.0, 1.0],
        ]);
        // Noisy y around 3x - 2.
        let y = [-2.1, 1.2, 3.9, 7.1, 9.9];
        let qx = Qr::new(&a).unwrap().solve(&y).unwrap();
        let sx = crate::svd::Svd::new(&a).unwrap().solve(&y).unwrap();
        assert_close(qx[0], sx[0], 1e-10);
        assert_close(qx[1], sx[1], 1e-10);
    }

    #[test]
    fn r_is_upper_triangular_with_correct_gram() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let r = Qr::new(&a).unwrap().r();
        assert_eq!(r[(1, 0)], 0.0);
        // RᵀR must equal AᵀA.
        let rtr = r.transpose().matmul(&r).unwrap();
        let ata = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_close(rtr[(i, j)], ata[(i, j)], 1e-10);
            }
        }
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 2.0, 3.0]),
            Err(MathError::Singular(_))
        ));
    }

    #[test]
    fn shape_validation() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        let qr = Qr::new(&Matrix::identity(2)).unwrap();
        assert!(qr.solve(&[1.0]).is_err());
    }

    #[test]
    fn zero_column_handled() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]);
        let qr = Qr::new(&a).unwrap();
        // R(0,0) is zero -> singular on solve, not a panic.
        assert!(qr.solve(&[1.0, 2.0, 3.0]).is_err());
    }
}
