//! Scalar root finding and 1-D minimisation.
//!
//! Used by the threshold layer as a fallback when the closed-form Gaussian
//! intersection is ill-conditioned, and by ablation code that locates error
//! crossovers along parameter sweeps.

use crate::{MathError, Result};

/// Find a root of `f` in `[lo, hi]` by bisection. The endpoints must bracket
/// a sign change.
///
/// # Errors
///
/// * [`MathError::InvalidParameter`] if `lo >= hi` or the interval does not
///   bracket a sign change.
/// * [`MathError::NoConvergence`] if the tolerance is not reached within the
///   iteration budget (practically impossible for `tol >= 1e-15` on a unit
///   interval).
pub fn bisect<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    if !(lo < hi) {
        return Err(MathError::InvalidParameter {
            name: "interval",
            value: hi - lo,
        });
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    // lint: allow(NAN_UNSAFE_CMP) -- exact root at the bracket edge short-circuits; NaN falls through to the sign test
    if fa == 0.0 {
        return Ok(a);
    }
    // lint: allow(NAN_UNSAFE_CMP) -- exact root at the bracket edge short-circuits; NaN falls through to the sign test
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(MathError::InvalidParameter {
            name: "bracket (no sign change)",
            value: fa * fb,
        });
    }
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        // lint: allow(NAN_UNSAFE_CMP) -- exact root hit ends bisection early; the tolerance test is the real stop
        if fm == 0.0 || (b - a) / 2.0 < tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(MathError::NoConvergence {
        method: "bisection",
        iterations: 200,
    })
}

/// Minimise a unimodal `f` on `[lo, hi]` by golden-section search; returns
/// the abscissa of the minimum.
///
/// # Errors
///
/// Returns [`MathError::InvalidParameter`] if `lo >= hi`.
pub fn golden_section_min<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    if !(lo < hi) {
        return Err(MathError::InvalidParameter {
            name: "interval",
            value: hi - lo,
        });
    }
    let invphi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - invphi * (b - a);
    let mut d = a + invphi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - invphi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + invphi * (b - a);
            fd = f(d);
        }
    }
    Ok(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_err());
        assert!(bisect(|x| x, 1.0, 0.0, 1e-12).is_err());
    }

    #[test]
    fn golden_section_finds_parabola_min() {
        let m = golden_section_min(|x| (x - 0.81) * (x - 0.81), 0.0, 1.0, 1e-10).unwrap();
        assert!((m - 0.81).abs() < 1e-8);
    }

    #[test]
    fn golden_section_boundary_minimum() {
        let m = golden_section_min(|x| x, 0.0, 1.0, 1e-10).unwrap();
        assert!(m < 1e-8);
    }

    #[test]
    fn golden_section_rejects_empty_interval() {
        assert!(golden_section_min(|x| x, 1.0, 1.0, 1e-10).is_err());
    }
}
