//! Free functions over `&[f64]` vectors.
//!
//! The workspace keeps vectors as plain slices/`Vec<f64>` rather than a
//! newtype: the data flows through many crates (cues, FIS inputs, cluster
//! centers) and a bare slice keeps those APIs interoperable. The functions
//! here centralise the small amount of vector algebra everyone needs.

use crate::{MathError, Result};

/// Dot product of two equal-length vectors.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
///
/// ```
/// # use cqm_math::vector::dot;
/// assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            context: "dot product",
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    if cfg!(feature = "strict-math") {
        debug_assert!(a.iter().all(|x| x.is_finite()), "norm: non-finite input component");
    }
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
pub fn dist_sq(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            context: "distance",
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum())
}

/// Euclidean distance between two points.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
// lint: allow(ASSERT_DENSITY) -- thin wrapper; dist_sq validates the shapes via Result
pub fn dist(a: &[f64], b: &[f64]) -> Result<f64> {
    dist_sq(a, b).map(f64::sqrt)
}

/// Element-wise sum `a + b`.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            context: "vector add",
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x + y).collect())
}

/// Element-wise difference `a - b`.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            context: "vector sub",
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x - y).collect())
}

/// Scalar multiple `k * a`.
pub fn scale(a: &[f64], k: f64) -> Vec<f64> {
    if cfg!(feature = "strict-math") {
        debug_assert!(k.is_finite(), "scale: non-finite factor {k}");
    }
    a.iter().map(|x| k * x).collect()
}

/// In-place `a += k * b` (axpy).
///
/// # Panics
///
/// Panics if the lengths differ; this is a hot inner-loop primitive and the
/// callers guarantee matching shapes.
pub fn axpy(a: &mut [f64], k: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += k * y;
    }
}

/// Index and value of the maximum element. Returns `None` for an empty slice
/// or a slice whose every element is NaN.
// lint: allow(ASSERT_DENSITY) -- NaN-tolerant by contract: NaN elements are skipped, all-NaN yields None
pub fn argmax(a: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Index and value of the minimum element. Returns `None` for an empty slice
/// or a slice whose every element is NaN.
// lint: allow(ASSERT_DENSITY) -- NaN-tolerant by contract: NaN elements are skipped, all-NaN yields None
pub fn argmin(a: &[f64]) -> Option<(usize, f64)> {
    argmax(&scale(a, -1.0)).map(|(i, v)| (i, -v))
}

/// Linearly spaced grid of `n` points covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace needs at least one point");
    if n == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
        assert_eq!(dot(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn dot_mismatch_errors() {
        assert!(matches!(
            dot(&[1.0], &[1.0, 2.0]),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn norm_and_distance() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 5.0);
        assert_eq!(dist_sq(&[1.0], &[4.0]).unwrap(), 9.0);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, -2.0], -2.0), vec![-2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[1.0, 3.0]);
        assert_eq!(a, vec![3.0, 7.0]);
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[1.0, f64::NAN, 3.0, 2.0]), Some((2, 3.0)));
        assert_eq!(argmax(&[f64::NAN]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_first_wins_on_tie() {
        assert_eq!(argmax(&[5.0, 5.0, 1.0]), Some((0, 5.0)));
    }

    #[test]
    fn argmin_basic() {
        assert_eq!(argmin(&[2.0, -1.0, 4.0]), Some((1, -1.0)));
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_zero_panics() {
        let _ = linspace(0.0, 1.0, 0);
    }
}
