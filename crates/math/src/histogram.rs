//! Fixed-bin histogram over a closed interval.
//!
//! Used by the experiment harness to print the empirical distribution of
//! quality values next to the fitted Gaussian densities (Fig. 6), and by
//! the sensing crate's diagnostics.

use crate::{MathError, Result};

/// Histogram with `bins` equal-width bins covering `[lo, hi]`.
///
/// Values outside the range are counted in saturating edge bins so that no
/// observation is silently dropped.
///
/// ```
/// use cqm_math::histogram::Histogram;
/// let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
/// for x in [0.1, 0.3, 0.35, 0.9] { h.add(x); }
/// assert_eq!(h.counts(), &[1, 2, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo < hi) {
            return Err(MathError::InvalidParameter {
                name: "histogram range",
                value: hi - lo,
            });
        }
        if bins == 0 {
            return Err(MathError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Record one observation. NaN observations are ignored.
    // lint: allow(ASSERT_DENSITY) -- NaN observations are explicitly dropped on the first line; every other f64 lands in a clamped bin
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let n = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        // lint: allow(PANIC_IN_LIB) -- idx is clamped into 0..n on the previous line
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Record many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for x in it {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded observations (excluding NaN).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center abscissa of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Empirical density value of bin `i` (count / (total * width)), so that
    /// the histogram integrates to 1 and is comparable to a pdf.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn density(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        if self.total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        // lint: allow(PANIC_IN_LIB) -- i is bound-checked by the assert at function entry
        self.counts[i] as f64 / (self.total as f64 * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validated() {
        assert!(Histogram::new(0.0, 1.0, 10).is_ok());
        assert!(Histogram::new(1.0, 0.0, 10).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn binning_boundaries() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(0.0); // first bin
        h.add(0.49);
        h.add(0.5); // second bin
        h.add(1.0); // hi edge clamps into last bin
        assert_eq!(h.counts(), &[2, 2]);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        let h = h.as_mut().unwrap();
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts(), &[1, 0, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn nan_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn centers_and_density_integrate_to_one() {
        let mut h = Histogram::new(0.0, 2.0, 4).unwrap();
        h.extend([0.1, 0.6, 1.1, 1.6, 1.7]);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-15);
        assert!((h.bin_center(3) - 1.75).abs() < 1e-15);
        let w = 0.5;
        let integral: f64 = (0..4).map(|i| h.density(i) * w).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_density_is_zero() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert_eq!(h.density(0), 0.0);
    }
}
