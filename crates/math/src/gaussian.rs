//! Univariate Gaussian distribution with the exact operations §2.3 needs:
//! density φ, lower/upper "median cuts" Φ(s)/Φ̄(s), MLE fitting and the
//! intersection of two densities (the paper's optimal threshold).

use crate::special::erf;
use crate::{MathError, Result};

/// A univariate Gaussian `N(mu, sigma²)`.
///
/// ```
/// use cqm_math::gaussian::Gaussian;
/// let g = Gaussian::new(0.0, 1.0).unwrap();
/// assert!((g.cdf(0.0) - 0.5).abs() < 1e-14);
/// assert!((g.pdf(0.0) - 0.3989422804014327).abs() < 1e-14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mu: f64,
    sigma: f64,
}

impl Gaussian {
    /// Create `N(mu, sigma²)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if `sigma` is not strictly
    /// positive and finite, or `mu` is not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(MathError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(MathError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(Gaussian { mu, sigma })
    }

    /// Mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Density `φ(x) = 1/(σ√2π) e^(−(x−µ)²/2σ²)`.
    pub fn pdf(&self, x: f64) -> f64 {
        if cfg!(feature = "strict-math") {
            debug_assert!(self.sigma > 0.0, "Gaussian sigma must stay positive, got {}", self.sigma);
        }
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Lower median cut `Φ(s) = ∫_{−∞}^{s} φ(x) dx` (§2.33).
    pub fn cdf(&self, s: f64) -> f64 {
        if cfg!(feature = "strict-math") {
            debug_assert!(self.sigma > 0.0, "Gaussian sigma must stay positive, got {}", self.sigma);
        }
        0.5 * (1.0 + erf((s - self.mu) / (self.sigma * std::f64::consts::SQRT_2)))
    }

    /// Upper median cut `Φ̄(s) = ∫_{s}^{∞} φ(x) dx` (§2.33).
    pub fn tail(&self, s: f64) -> f64 {
        if cfg!(feature = "strict-math") {
            debug_assert!(self.sigma > 0.0, "Gaussian sigma must stay positive, got {}", self.sigma);
        }
        0.5 * crate::special::erfc((s - self.mu) / (self.sigma * std::f64::consts::SQRT_2))
    }

    /// Quantile function (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in the open interval (0, 1).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
        self.mu + self.sigma * std::f64::consts::SQRT_2 * crate::special::erfinv(2.0 * p - 1.0)
    }

    /// Maximum-likelihood fit of a Gaussian to the data (§2.31): `µ̂` is the
    /// sample mean, `σ̂²` the *biased* (1/n) variance — that is the MLE the
    /// paper relies on, as opposed to the 1/(n−1) sample variance.
    ///
    /// # Errors
    ///
    /// * [`MathError::EmptyInput`] for fewer than 2 points.
    /// * [`MathError::InvalidParameter`] if the data is degenerate (all
    ///   values identical), since `σ = 0` does not define a density.
    pub fn mle(data: &[f64]) -> Result<Self> {
        if data.len() < 2 {
            return Err(MathError::EmptyInput("gaussian mle needs >= 2 points"));
        }
        let n = data.len() as f64;
        let mu = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / n;
        Gaussian::new(mu, var.sqrt())
    }

    /// Like [`Gaussian::mle`] but degenerate data is given the floor standard
    /// deviation `sigma_floor` instead of failing. The CQM statistical layer
    /// uses this: a perfectly separating quality measure produces degenerate
    /// groups, which must still yield a usable threshold.
    ///
    /// # Errors
    ///
    /// * [`MathError::EmptyInput`] for fewer than 1 point.
    /// * [`MathError::InvalidParameter`] if `sigma_floor` is not positive.
    pub fn mle_with_floor(data: &[f64], sigma_floor: f64) -> Result<Self> {
        if data.is_empty() {
            return Err(MathError::EmptyInput("gaussian mle needs >= 1 point"));
        }
        if !(sigma_floor.is_finite() && sigma_floor > 0.0) {
            return Err(MathError::InvalidParameter {
                name: "sigma_floor",
                value: sigma_floor,
            });
        }
        let n = data.len() as f64;
        let mu = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / n;
        Gaussian::new(mu, var.sqrt().max(sigma_floor))
    }

    /// Intersection point(s) of two Gaussian densities: solutions of
    /// `φ₁(x) = φ₂(x)`, a quadratic in `x`. Returns 1 or 2 real roots
    /// (equal-σ densities with different means intersect exactly once).
    ///
    /// This is the paper's "optimal threshold" construction (§2.32): the
    /// threshold `s` is the intersection lying between the two means.
    pub fn intersections(&self, other: &Gaussian) -> Vec<f64> {
        let (m1, s1) = (self.mu, self.sigma);
        let (m2, s2) = (other.mu, other.sigma);
        if (s1 - s2).abs() < 1e-15 * s1.max(s2) {
            // Equal variances: single midpoint intersection (unless the
            // densities are identical, in which case there is no isolated
            // crossing point).
            if (m1 - m2).abs() < 1e-15 {
                return Vec::new();
            }
            return vec![(m1 + m2) / 2.0];
        }
        // log φ1 = log φ2  =>  a x² + b x + c = 0
        let a = 1.0 / (2.0 * s2 * s2) - 1.0 / (2.0 * s1 * s1);
        let b = m1 / (s1 * s1) - m2 / (s2 * s2);
        let c = m2 * m2 / (2.0 * s2 * s2) - m1 * m1 / (2.0 * s1 * s1) + (s2 / s1).ln();
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return Vec::new();
        }
        let sq = disc.sqrt();
        let mut roots = vec![(-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a)];
        roots.sort_by(|x, y| x.total_cmp(y));
        roots.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
        roots
    }
}

impl std::fmt::Display for Gaussian {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N(mu={:.4}, sigma={:.4})", self.mu, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn construction_validates() {
        assert!(Gaussian::new(0.0, 1.0).is_ok());
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn standard_normal_reference_points() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        assert!(close(g.pdf(0.0), 0.3989422804014327, 1e-15));
        assert!(close(g.pdf(1.0), 0.24197072451914337, 1e-15));
        assert!(close(g.cdf(1.96), 0.9750021048517795, 1e-10));
        assert!(close(g.tail(1.96), 0.0249978951482205, 1e-10));
    }

    #[test]
    fn cdf_tail_sum_to_one() {
        let g = Gaussian::new(0.7, 0.2).unwrap();
        for &x in &[0.0, 0.3, 0.7, 0.81, 1.2, 5.0] {
            assert!(close(g.cdf(x) + g.tail(x), 1.0, 1e-13), "x={x}");
        }
    }

    #[test]
    fn scaling_and_shifting() {
        let g = Gaussian::new(3.0, 2.0).unwrap();
        let std = Gaussian::new(0.0, 1.0).unwrap();
        assert!(close(g.cdf(5.0), std.cdf(1.0), 1e-14));
        assert!(close(g.pdf(3.0), std.pdf(0.0) / 2.0, 1e-14));
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gaussian::new(-1.0, 0.5).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8112, 0.99] {
            assert!(close(g.cdf(g.quantile(p)), p, 1e-9), "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile needs p in (0,1)")]
    fn quantile_domain() {
        let _ = Gaussian::new(0.0, 1.0).unwrap().quantile(1.0);
    }

    #[test]
    fn mle_recovers_parameters() {
        // Symmetric data around 2 with known 1/n variance.
        let data = [1.0, 2.0, 3.0];
        let g = Gaussian::mle(&data).unwrap();
        assert!(close(g.mu(), 2.0, 1e-15));
        assert!(close(g.sigma(), (2.0f64 / 3.0).sqrt(), 1e-15));
    }

    #[test]
    fn mle_uses_biased_variance() {
        let data = [0.0, 1.0];
        let g = Gaussian::mle(&data).unwrap();
        // MLE sigma = 0.5, sample sigma would be 1/sqrt(2).
        assert!(close(g.sigma(), 0.5, 1e-15));
    }

    #[test]
    fn mle_rejects_degenerate() {
        assert!(Gaussian::mle(&[1.0]).is_err());
        assert!(Gaussian::mle(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn mle_with_floor_handles_degenerate() {
        let g = Gaussian::mle_with_floor(&[1.0, 1.0], 0.05).unwrap();
        assert!(close(g.mu(), 1.0, 1e-15));
        assert!(close(g.sigma(), 0.05, 1e-15));
        // Floor does not override real spread.
        let g = Gaussian::mle_with_floor(&[0.0, 2.0], 0.05).unwrap();
        assert!(close(g.sigma(), 1.0, 1e-15));
        assert!(Gaussian::mle_with_floor(&[], 0.05).is_err());
        assert!(Gaussian::mle_with_floor(&[1.0], 0.0).is_err());
    }

    #[test]
    fn equal_sigma_intersection_is_midpoint() {
        let a = Gaussian::new(0.0, 1.0).unwrap();
        let b = Gaussian::new(4.0, 1.0).unwrap();
        let roots = a.intersections(&b);
        assert_eq!(roots.len(), 1);
        assert!(close(roots[0], 2.0, 1e-12));
    }

    #[test]
    fn unequal_sigma_intersections_are_density_crossings() {
        let a = Gaussian::new(0.3, 0.15).unwrap();
        let b = Gaussian::new(0.9, 0.07).unwrap();
        let roots = a.intersections(&b);
        assert!(!roots.is_empty());
        for r in &roots {
            assert!(close(a.pdf(*r), b.pdf(*r), 1e-9), "r={r}");
        }
        // At least one crossing lies between the means.
        assert!(roots.iter().any(|r| (0.3..=0.9).contains(r)));
    }

    #[test]
    fn identical_densities_have_no_isolated_intersection() {
        let a = Gaussian::new(0.5, 0.1).unwrap();
        assert!(a.intersections(&a).is_empty());
    }

    #[test]
    fn intersection_symmetric_in_arguments() {
        let a = Gaussian::new(0.2, 0.2).unwrap();
        let b = Gaussian::new(0.85, 0.05).unwrap();
        let r1 = a.intersections(&b);
        let r2 = b.intersections(&a);
        assert_eq!(r1.len(), r2.len());
        for (x, y) in r1.iter().zip(&r2) {
            assert!(close(*x, *y, 1e-9));
        }
    }

    #[test]
    fn display_format() {
        let g = Gaussian::new(0.81, 0.05).unwrap();
        assert_eq!(g.to_string(), "N(mu=0.8100, sigma=0.0500)");
    }
}
