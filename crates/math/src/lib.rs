//! # cqm-math — numerical substrate for the CQM reproduction
//!
//! Dense linear algebra and statistics primitives used by every other crate in
//! the workspace. The paper's automated FIS construction needs:
//!
//! * a **least-squares solver** for the TSK consequent coefficients — the
//!   paper uses singular value decomposition (§2.2.2); we provide a one-sided
//!   Jacobi [`svd::Svd`], a Householder [`qr::Qr`] and normal equations, all
//!   behind [`linsolve::lstsq`] so the choice can be ablated;
//! * **Gaussian machinery** for the membership functions and the statistical
//!   analysis (§2.3): [`special::erf`], [`gaussian::Gaussian`] with pdf/cdf
//!   and tail integrals;
//! * **descriptive statistics** for cue extraction and evaluation
//!   ([`stats`]), including numerically stable streaming moments;
//! * small **root finding** helpers for density intersections ([`roots`]).
//!
//! Everything is implemented from scratch over `f64`; no external linear
//! algebra dependency is used.
//!
//! ## Example
//!
//! ```
//! use cqm_math::matrix::Matrix;
//! use cqm_math::linsolve::{lstsq, LstsqMethod};
//!
//! // Fit y = 2x + 1 through three points.
//! let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
//! let y = [3.0, 5.0, 7.0];
//! let coef = lstsq(&a, &y, LstsqMethod::Svd).unwrap();
//! assert!((coef[0] - 2.0).abs() < 1e-10);
//! assert!((coef[1] - 1.0).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]

// Numerical kernels intentionally use negated comparisons (`!(x > 0.0)`)
// as NaN-rejecting guards, and index-based loops where several parallel
// buffers are updated per iteration; rewriting those per clippy's style
// suggestions would change NaN semantics or obscure the algorithms.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod fastexp;
pub mod gaussian;
pub mod histogram;
pub mod lanes;
pub mod linsolve;
pub mod matrix;
pub mod qr;
pub mod roots;
pub mod special;
pub mod stats;
pub mod svd;
pub mod vector;

pub use gaussian::Gaussian;
pub use matrix::Matrix;

/// Default absolute tolerance used by iterative kernels in this crate.
pub const EPS: f64 = 1e-12;

/// Errors produced by the numerical kernels in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// Operand dimensions do not agree (e.g. matrix product shapes).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// The input was empty where at least one element is required.
    EmptyInput(&'static str),
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the method that failed.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The problem is singular or numerically rank-deficient beyond repair.
    Singular(&'static str),
    /// A parameter was out of its valid domain (e.g. `sigma <= 0`).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            MathError::EmptyInput(what) => write!(f, "empty input: {what}"),
            MathError::NoConvergence { method, iterations } => {
                write!(f, "{method} did not converge after {iterations} iterations")
            }
            MathError::Singular(what) => write!(f, "singular system: {what}"),
            MathError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for MathError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MathError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = MathError::DimensionMismatch {
            context: "matmul",
            expected: 3,
            actual: 4,
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains('3'));
        let e = MathError::NoConvergence {
            method: "jacobi-svd",
            iterations: 60,
        };
        assert!(e.to_string().contains("jacobi-svd"));
        let e = MathError::InvalidParameter {
            name: "sigma",
            value: -1.0,
        };
        assert!(e.to_string().contains("sigma"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
