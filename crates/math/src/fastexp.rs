//! Vetted exponential entry points for hot-path code (DESIGN.md section 9).
//!
//! Hot-path files (tagged `// analyze: hot-path`) are forbidden by the
//! `APPROX_MATH` analyze pass from calling `.exp()` / `.powf()` directly;
//! they route through this module instead so every transcendental in a hot
//! loop carries an explicit precision contract:
//!
//! * [`exp_exact`] — exactly `f64::exp`. Zero approximation; the vetted
//!   entry point for paths that must stay bit-identical to the scalar
//!   reference implementation.
//! * [`exp_bounded`] — range-reduced polynomial `exp` with a documented,
//!   test-proven maximum error of [`EXP_BOUNDED_MAX_ULP`] ULP against
//!   `f64::exp` over the fast range. Outside the fast range (overflow,
//!   denormal results, NaN, ±inf) it falls back to `f64::exp`, so edge
//!   cases are always handled by the reference implementation.
//! * [`exp4_bounded`] — four-lane variant of `exp_bounded` whose per-lane
//!   operation sequence is identical to the scalar function, so a value's
//!   result never depends on its position within a batch. The straight-line
//!   body (no lane-dependent branches in the fast path) is what lets the
//!   optimizer keep the whole block in vector registers.
//!
//! The kernel argument domain is `-0.5 * z * z` for standardized distances
//! `z`, i.e. always `<= 0`; the fast range is still symmetric so the bound
//! is proven for generic arguments (see `tests/fastexp_ulp.rs`).

/// Maximum observed-and-asserted ULP error of [`exp_bounded`] against
/// `f64::exp` over the fast range. The ULP sweep in `tests/fastexp_ulp.rs`
/// fails if the implementation ever exceeds this bound.
pub const EXP_BOUNDED_MAX_ULP: u64 = 2;

/// Arguments at or below this take the `f64::exp` fallback: `exp(-708)` is
/// within a factor ~7 of `f64::MIN_POSITIVE`, so staying strictly above
/// keeps every fast-path result (and every intermediate `2^k` scale)
/// normal — the polynomial path never has to reason about denormals.
const FAST_LO: f64 = -708.0;
/// Arguments at or above this take the fallback: `exp(709.8)` overflows.
const FAST_HI: f64 = 709.0;

/// `1.5 * 2^52`. Adding then subtracting this magic constant rounds a
/// `f64` with magnitude below `2^51` to the nearest integer using a single
/// add/sub pair — unlike `f64::round`, the trick stays in the FPU pipeline
/// and vectorizes. (Ties go to even rather than away from zero; for range
/// reduction either neighbour is a valid `k`.)
const SHIFT: f64 = 6_755_399_441_055_744.0;
/// Bit pattern of [`SHIFT`]; subtracting it from `(x + SHIFT).to_bits()`
/// recovers `round(x)` as an integer without a float→int conversion, which
/// keeps the `2^k` reconstruction vectorizable.
const SHIFT_BITS: i64 = 0x4338_0000_0000_0000;

const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// `ln(2)` split Cody–Waite style: `LN2_HI` carries the high bits exactly
/// representable such that `k * LN2_HI` is exact for `|k| < 2^16`, and
/// `LN2_LO` carries the remainder, so `x - k*LN2_HI - k*LN2_LO` loses
/// almost no precision even though `k * ln2` is close to `x`.
const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;

// Taylor coefficients 1/n! for the degree-13 polynomial. With the reduced
// argument bounded by |r| <= ln(2)/2 ≈ 0.3466, the truncation error of the
// degree-13 Taylor series is below 0.05 ULP; the measured end-to-end error
// (rounding included) stays within EXP_BOUNDED_MAX_ULP.
const C13: f64 = 1.0 / 6_227_020_800.0;
const C12: f64 = 1.0 / 479_001_600.0;
const C11: f64 = 1.0 / 39_916_800.0;
const C10: f64 = 1.0 / 3_628_800.0;
const C9: f64 = 1.0 / 362_880.0;
const C8: f64 = 1.0 / 40_320.0;
const C7: f64 = 1.0 / 5_040.0;
const C6: f64 = 1.0 / 720.0;
const C5: f64 = 1.0 / 120.0;
const C4: f64 = 1.0 / 24.0;
const C3: f64 = 1.0 / 6.0;
const C2: f64 = 1.0 / 2.0;

/// Exactly `f64::exp`. Exists so hot-path files have a vetted, greppable
/// entry point: the `APPROX_MATH` analyze pass flags raw `.exp()` calls in
/// `// analyze: hot-path` files, and this is the sanctioned exact spelling.
#[inline(always)]
// lint: allow(ASSERT_DENSITY) -- total on R like f64::exp itself; this is the greppable exact spelling, not a new domain
pub fn exp_exact(x: f64) -> f64 {
    x.exp()
}

/// Whether `x` is inside the polynomial fast range. Everything else —
/// NaN, ±inf, overflow territory, and arguments whose result would be
/// denormal — is delegated to `f64::exp`.
#[inline(always)]
fn in_fast_range(x: f64) -> bool {
    x > FAST_LO && x < FAST_HI
}

/// Core polynomial evaluation. Callers must guarantee `in_fast_range(x)`.
///
/// The body is branch-free straight-line arithmetic: range-reduce
/// `x = k*ln2 + r` with `|r| <= ln(2)/2`, evaluate `e^r` by a Horner
/// degree-13 Taylor polynomial, and scale by `2^k` via direct exponent-bit
/// construction. `k` is recovered from the rounding trick's bit pattern so
/// no float→int conversion instruction is needed.
#[inline(always)]
fn exp_core(x: f64) -> f64 {
    let kf = x * LOG2_E + SHIFT;
    let k = kf - SHIFT;
    let ki = (kf.to_bits() as i64).wrapping_sub(SHIFT_BITS);
    let r = (x - k * LN2_HI) - k * LN2_LO;
    let mut p = C13;
    p = p * r + C12;
    p = p * r + C11;
    p = p * r + C10;
    p = p * r + C9;
    p = p * r + C8;
    p = p * r + C7;
    p = p * r + C6;
    p = p * r + C5;
    p = p * r + C4;
    p = p * r + C3;
    p = p * r + C2;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // In the fast range k ∈ [-1022, 1023], so the biased exponent is a
    // positive 11-bit value and the shift cannot overflow.
    let two_k = f64::from_bits(((ki + 1023) << 52) as u64);
    p * two_k
}

/// Fast `exp` with a bounded, test-proven error of at most
/// [`EXP_BOUNDED_MAX_ULP`] ULP vs `f64::exp` in the fast range, falling
/// back to `f64::exp` itself for NaN/±inf/overflow/denormal-result
/// arguments. `exp_bounded(0.0)` is exactly `1.0`.
#[inline]
// lint: allow(ASSERT_DENSITY) -- total over all f64 by contract: NaN/±inf/out-of-range arguments route to the std fallback
pub fn exp_bounded(x: f64) -> f64 {
    if !in_fast_range(x) {
        // NaN fails both comparisons and lands here too.
        return x.exp();
    }
    exp_core(x)
}

/// Four-lane [`exp_bounded`]. Per-lane results are bit-identical to the
/// scalar function: the fast path applies `exp_core` to each lane with the
/// same operation sequence, and any out-of-range lane demotes the whole
/// block to four scalar `exp_bounded` calls (which agree with `exp_core`
/// on the in-range lanes anyway).
#[inline]
pub fn exp4_bounded(x: [f64; 4]) -> [f64; 4] {
    let mut out = [0.0_f64; 4];
    if x.iter().all(|v| in_fast_range(*v)) {
        for (o, v) in out.iter_mut().zip(&x) {
            *o = exp_core(*v);
        }
    } else {
        for (o, v) in out.iter_mut().zip(&x) {
            *o = exp_bounded(*v);
        }
    }
    out
}

/// Distance between two finite floats in units in the last place, measured
/// on the monotone ordered-integer number line (negative floats are
/// mirrored below zero, so the metric is continuous across ±0).
///
/// Two NaNs are at distance 0; a NaN against a non-NaN is `u64::MAX`.
/// Comparisons are done entirely in integer space — no float `==`.
// lint: allow(ASSERT_DENSITY) -- total by design: NaN operands get explicit distances on the first lines
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => return 0,
        (true, false) | (false, true) => return u64::MAX,
        (false, false) => {}
    }
    fn ordered(x: f64) -> i64 {
        let bits = x.to_bits();
        if bits >> 63 == 0 {
            bits as i64
        } else {
            -((bits & 0x7fff_ffff_ffff_ffff) as i64)
        }
    }
    ordered(a).abs_diff(ordered(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_exact_is_std_exp() {
        for x in [-5.0, -0.5, 0.0, 1.0, 3.25] {
            assert_eq!(exp_exact(x).to_bits(), x.exp().to_bits());
        }
    }

    #[test]
    fn exp_bounded_of_zero_is_one() {
        assert_eq!(exp_bounded(0.0).to_bits(), 1.0_f64.to_bits());
        assert_eq!(exp_bounded(-0.0).to_bits(), 1.0_f64.to_bits());
    }

    #[test]
    fn exp_bounded_within_documented_ulp_on_spot_checks() {
        let mut worst = 0_u64;
        let mut x = -700.0;
        while x < 700.0 {
            let d = ulp_diff(exp_bounded(x), x.exp());
            worst = worst.max(d);
            x += 0.37;
        }
        assert!(
            worst <= EXP_BOUNDED_MAX_ULP,
            "worst ULP {worst} exceeds documented bound {EXP_BOUNDED_MAX_ULP}"
        );
    }

    #[test]
    fn fallback_handles_specials() {
        assert!(exp_bounded(f64::NAN).is_nan());
        assert_eq!(exp_bounded(f64::INFINITY).to_bits(), f64::INFINITY.to_bits());
        assert_eq!(exp_bounded(f64::NEG_INFINITY).to_bits(), 0.0_f64.to_bits());
        // Overflow and denormal-result arguments match std exactly.
        for x in [710.0, 800.0, -708.0, -710.0, -745.0, -800.0] {
            assert_eq!(exp_bounded(x).to_bits(), x.exp().to_bits(), "x={x}");
        }
    }

    #[test]
    fn exp4_matches_scalar_bitwise() {
        let blocks = [
            [-0.125, -3.5, -80.0, -0.0078125],
            [0.0, 1.0, -1.0, 0.5],
            // Mixed in/out of fast range: the whole block demotes, and the
            // in-range lanes still agree with the scalar fast path.
            [-900.0, -0.25, f64::NAN, 2.0],
        ];
        for block in blocks {
            let lanes = exp4_bounded(block);
            for (l, x) in lanes.iter().zip(&block) {
                let s = exp_bounded(*x);
                if s.is_nan() {
                    assert!(l.is_nan());
                } else {
                    assert_eq!(l.to_bits(), s.to_bits(), "x={x}");
                }
            }
        }
    }

    #[test]
    fn ulp_diff_basics() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(1.0, f64::from_bits(1.0_f64.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
        assert_eq!(ulp_diff(f64::NAN, f64::NAN), 0);
        assert_eq!(ulp_diff(f64::NAN, 1.0), u64::MAX);
        // Crossing zero counts both sides.
        let tiny = f64::from_bits(1);
        assert_eq!(ulp_diff(tiny, -tiny), 2);
    }
}
