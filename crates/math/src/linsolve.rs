//! Least-squares front end over the SVD, QR and normal-equation backends.
//!
//! The paper fits TSK consequents by solving one large over-determined linear
//! system with SVD (§2.2.2). We expose the method as an enum so that the
//! ABL-LSQ ablation can swap backends without touching the training code.

// lint: allow(PANIC_IN_LIB, file) -- elimination kernel: square-shape checks at entry bound all indices

use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::svd::Svd;
use crate::{MathError, Result};

/// Backend used to solve `A x ≈ b` in the least-squares sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LstsqMethod {
    /// Singular value decomposition (the paper's choice): handles
    /// rank-deficient systems by truncating small singular values.
    #[default]
    Svd,
    /// Householder QR: faster, but fails on rank-deficient systems.
    Qr,
    /// Normal equations `AᵀA x = Aᵀb` with a tiny ridge term: fastest and
    /// least accurate (squares the condition number).
    NormalEquations,
}

impl std::fmt::Display for LstsqMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LstsqMethod::Svd => f.write_str("svd"),
            LstsqMethod::Qr => f.write_str("qr"),
            LstsqMethod::NormalEquations => f.write_str("normal-equations"),
        }
    }
}

/// Solve `A x ≈ b` in the least-squares sense with the given backend.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] if `b.len() != a.rows()` or `a` is
///   wider than tall.
/// * [`MathError::Singular`] from the QR / normal-equation backends on
///   rank-deficient input (the SVD backend instead returns the minimum-norm
///   solution).
pub fn lstsq(a: &Matrix, b: &[f64], method: LstsqMethod) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(MathError::DimensionMismatch {
            context: "lstsq rhs",
            expected: a.rows(),
            actual: b.len(),
        });
    }
    match method {
        LstsqMethod::Svd => Svd::new(a)?.solve(b),
        LstsqMethod::Qr => Qr::new(a)?.solve(b),
        LstsqMethod::NormalEquations => normal_equations(a, b),
    }
}

/// Residual 2-norm `||A x - b||`.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] on shape mismatch.
pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> Result<f64> {
    let ax = a.matvec(x)?;
    if ax.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            context: "residual rhs",
            expected: ax.len(),
            actual: b.len(),
        });
    }
    Ok(ax
        .iter()
        .zip(b)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        .sqrt())
}

fn normal_equations(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let at = a.transpose();
    let mut ata = at.matmul(a)?;
    let atb = at.matvec(b)?;
    // Tiny ridge keeps the Cholesky-style elimination alive on borderline
    // conditioning; genuinely singular systems still error out below.
    let ridge = 1e-12 * ata.max_abs().max(1.0);
    for i in 0..ata.rows() {
        ata[(i, i)] += ridge;
    }
    gauss_solve(ata, atb)
}

/// Gaussian elimination with partial pivoting on a square system.
fn gauss_solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = a.rows();
    debug_assert_eq!(a.cols(), n);
    debug_assert_eq!(b.len(), n);
    let scale = a.max_abs().max(1.0);
    for k in 0..n {
        // Partial pivot.
        let mut piv = k;
        for i in (k + 1)..n {
            if a[(i, k)].abs() > a[(piv, k)].abs() {
                piv = i;
            }
        }
        if a[(piv, k)].abs() < 1e-13 * scale {
            return Err(MathError::Singular("gaussian elimination pivot"));
        }
        if piv != k {
            for j in 0..n {
                let tmp = a[(k, j)];
                a[(k, j)] = a[(piv, j)];
                a[(piv, j)] = tmp;
            }
            b.swap(k, piv);
        }
        for i in (k + 1)..n {
            let f = a[(i, k)] / a[(k, k)];
            // lint: allow(NAN_UNSAFE_CMP) -- an exactly-zero multiplier makes this elimination row a no-op; skip preserves bits
            if f == 0.0 {
                continue;
            }
            for j in k..n {
                let akj = a[(k, j)];
                a[(i, j)] -= f * akj;
            }
            b[i] -= f * b[k];
        }
    }
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let mut acc = b[k];
        for j in (k + 1)..n {
            acc -= a[(k, j)] * x[j];
        }
        x[k] = acc / a[(k, k)];
    }
    Ok(x)
}

/// Solve the square linear system `A x = b` by Gaussian elimination with
/// partial pivoting.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] if `A` is not square or `b` has the
///   wrong length.
/// * [`MathError::Singular`] if a pivot vanishes.
pub fn solve_square(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != a.cols() {
        return Err(MathError::DimensionMismatch {
            context: "solve_square shape",
            expected: a.rows(),
            actual: a.cols(),
        });
    }
    if b.len() != a.rows() {
        return Err(MathError::DimensionMismatch {
            context: "solve_square rhs",
            expected: a.rows(),
            actual: b.len(),
        });
    }
    gauss_solve(a.clone(), b.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn regression_fixture() -> (Matrix, Vec<f64>) {
        // y = 1.5x0 - 0.5x1 + 2 with exact targets.
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                let x0 = i as f64;
                let x1 = (i as f64 * 0.7).sin();
                vec![x0, x1, 1.0]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 1.5 * r[0] - 0.5 * r[1] + 2.0).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn all_backends_agree_on_well_posed_system() {
        let (a, y) = regression_fixture();
        for m in [
            LstsqMethod::Svd,
            LstsqMethod::Qr,
            LstsqMethod::NormalEquations,
        ] {
            let x = lstsq(&a, &y, m).unwrap();
            assert_close(x[0], 1.5, 1e-6);
            assert_close(x[1], -0.5, 1e-6);
            assert_close(x[2], 2.0, 1e-6);
        }
    }

    #[test]
    fn svd_survives_rank_deficiency_qr_does_not() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = [1.0, 2.0, 3.0];
        assert!(lstsq(&a, &b, LstsqMethod::Svd).is_ok());
        assert!(lstsq(&a, &b, LstsqMethod::Qr).is_err());
    }

    #[test]
    fn residual_zero_for_consistent_system() {
        let (a, y) = regression_fixture();
        let x = lstsq(&a, &y, LstsqMethod::Svd).unwrap();
        assert!(residual_norm(&a, &x, &y).unwrap() < 1e-8);
    }

    #[test]
    fn residual_is_minimal() {
        // Inconsistent system: residual of LS solution must not exceed the
        // residual of nearby perturbed solutions.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = [1.0, 1.0, 0.0];
        let x = lstsq(&a, &b, LstsqMethod::Svd).unwrap();
        let r0 = residual_norm(&a, &x, &b).unwrap();
        for d in [[0.01, 0.0], [0.0, 0.01], [-0.02, 0.015]] {
            let xp = [x[0] + d[0], x[1] + d[1]];
            assert!(residual_norm(&a, &xp, &b).unwrap() >= r0 - 1e-12);
        }
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(2);
        assert!(lstsq(&a, &[1.0], LstsqMethod::Svd).is_err());
    }

    #[test]
    fn solve_square_pivoting() {
        // Requires a row swap (zero leading pivot).
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve_square(&a, &[3.0, 5.0]).unwrap();
        assert_close(x[0], 5.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn solve_square_singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_square(&a, &[1.0, 2.0]),
            Err(MathError::Singular(_))
        ));
    }

    #[test]
    fn solve_square_shape_checks() {
        let a = Matrix::zeros(2, 3);
        assert!(solve_square(&a, &[1.0, 2.0]).is_err());
        let a = Matrix::identity(2);
        assert!(solve_square(&a, &[1.0]).is_err());
    }

    #[test]
    fn method_display() {
        assert_eq!(LstsqMethod::Svd.to_string(), "svd");
        assert_eq!(LstsqMethod::default(), LstsqMethod::Svd);
    }
}
