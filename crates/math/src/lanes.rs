//! Hand-unrolled four-wide `f64` lanes (DESIGN.md section 9).
//!
//! Stable, std-only stand-in for `std::simd`: a [`F64x4`] is a plain
//! `[f64; 4]` whose arithmetic is written as fixed-length per-lane loops.
//! The loops have no early exits, no lane-dependent branches, and no
//! bounds checks the optimizer can't eliminate, so release builds keep a
//! whole `F64x4` expression chain in vector registers. Callers that cannot
//! fill a full block fall back to the scalar path — lane code never pads.
//!
//! Per-lane operations are exactly the scalar IEEE-754 operations in the
//! same order, which is what lets the blocked kernel in `cqm-fuzzy` prove
//! bit-identity against its scalar reference row by row.

use crate::fastexp;

/// Lane width. Four f64s fill one 32-byte vector register (AVX2) or two
/// 16-byte ones (SSE2/NEON) — wide enough to amortize, narrow enough that
/// remainder handling stays cheap.
pub const LANES: usize = 4;

/// Four `f64` lanes with element-wise arithmetic.
#[derive(Debug, Clone, Copy, Default)]
pub struct F64x4(pub [f64; LANES]);

impl F64x4 {
    /// All lanes zero — the additive identity.
    pub const ZERO: F64x4 = F64x4([0.0; LANES]);
    /// All lanes one — the multiplicative / t-norm fold identity.
    pub const ONE: F64x4 = F64x4([1.0; LANES]);

    /// Broadcast one value to every lane.
    #[inline(always)]
    // lint: allow(ASSERT_DENSITY) -- total broadcast: every f64 (NaN included) is a valid lane value
    pub fn splat(v: f64) -> F64x4 {
        F64x4([v; LANES])
    }

    /// Load the first [`LANES`] values of `s`; missing tail lanes are zero.
    /// Callers in the blocked kernel always pass full-width slices.
    #[inline(always)]
    // lint: allow(ASSERT_DENSITY) -- total by contract: short slices zero-fill the tail lanes, any f64 is a valid lane
    pub fn from_slice(s: &[f64]) -> F64x4 {
        let mut out = [0.0_f64; LANES];
        for (o, v) in out.iter_mut().zip(s) {
            *o = *v;
        }
        F64x4(out)
    }

    /// The lanes as a plain array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; LANES] {
        self.0
    }

    /// Per-lane [`fastexp::exp_bounded`], via the four-lane kernel whose
    /// per-lane operation sequence is identical to the scalar function.
    #[inline(always)]
    pub fn exp_bounded(self) -> F64x4 {
        F64x4(fastexp::exp4_bounded(self.0))
    }

    /// Per-lane `f64::exp` (exact; used by the bit-identical blocked path).
    #[inline(always)]
    pub fn exp_exact(self) -> F64x4 {
        let mut out = [0.0_f64; LANES];
        for (o, v) in out.iter_mut().zip(&self.0) {
            *o = fastexp::exp_exact(*v);
        }
        F64x4(out)
    }

    /// Per-lane `f64::min` against a broadcast scalar. Used to clamp
    /// approximated memberships back into the t-norm domain `[0, 1]`.
    #[inline(always)]
    // lint: allow(ASSERT_DENSITY) -- per-lane f64::min is total; NaN lanes follow IEEE min semantics
    pub fn min_scalar(self, bound: f64) -> F64x4 {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.min(bound);
        }
        F64x4(out)
    }
}

macro_rules! lane_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $method(self, rhs: F64x4) -> F64x4 {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(&rhs.0) {
                    *o = *o $op *r;
                }
                F64x4(out)
            }
        }
    };
}

lane_binop!(Add, add, +);
lane_binop!(Sub, sub, -);
lane_binop!(Mul, mul, *);
lane_binop!(Div, div, /);

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: F64x4) -> [u64; LANES] {
        let a = v.to_array();
        [a[0].to_bits(), a[1].to_bits(), a[2].to_bits(), a[3].to_bits()]
    }

    #[test]
    fn ops_match_scalar_bitwise() {
        let a = F64x4([1.5, -2.25, 0.1, 1.0e18]);
        let b = F64x4([3.0, 0.7, -0.1, 3.125]);
        let sum = a + b;
        let dif = a - b;
        let mul = a * b;
        let div = a / b;
        for i in 0..LANES {
            let (x, y) = (a.to_array()[i], b.to_array()[i]);
            assert_eq!(sum.to_array()[i].to_bits(), (x + y).to_bits());
            assert_eq!(dif.to_array()[i].to_bits(), (x - y).to_bits());
            assert_eq!(mul.to_array()[i].to_bits(), (x * y).to_bits());
            assert_eq!(div.to_array()[i].to_bits(), (x / y).to_bits());
        }
    }

    #[test]
    fn splat_and_slice_round_trip() {
        assert_eq!(bits(F64x4::splat(2.5)), [2.5_f64.to_bits(); LANES]);
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(F64x4::from_slice(&s).to_array(), [1.0, 2.0, 3.0, 4.0]);
        // Short slices zero-fill the tail.
        assert_eq!(F64x4::from_slice(&s[..2]).to_array(), [1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn exp_lanes_match_scalar_entry_points() {
        let v = F64x4([-0.5, -8.0, 0.0, -0.03125]);
        let fast = v.exp_bounded().to_array();
        let exact = v.exp_exact().to_array();
        for (i, x) in v.to_array().iter().enumerate() {
            assert_eq!(fast[i].to_bits(), fastexp::exp_bounded(*x).to_bits());
            assert_eq!(exact[i].to_bits(), x.exp().to_bits());
        }
    }

    #[test]
    fn min_scalar_clamps() {
        let v = F64x4([0.5, 1.0 + 1.0e-9, -3.0, 2.0]);
        assert_eq!(v.min_scalar(1.0).to_array(), [0.5, 1.0, -3.0, 1.0]);
    }
}
