//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The paper solves the over-determined consequent least-squares system with
//! SVD (§2.2.2). One-sided Jacobi (Hestenes) is compact, numerically robust
//! and more than fast enough for the design matrices arising here (thousands
//! of rows, tens of columns): it iteratively orthogonalises the columns of
//! `A`, yielding `A = U Σ Vᵀ` with `U` column-orthonormal (thin SVD).

// lint: allow(PANIC_IN_LIB, file) -- dense linear-algebra kernel: dimensions are checked once at entry

use crate::matrix::Matrix;
use crate::{MathError, Result};

/// Thin singular value decomposition `A = U Σ Vᵀ`.
///
/// `U` is `m x n` with orthonormal columns, `V` is `n x n` orthogonal and
/// `sigma` holds the `n` singular values in non-increasing order.
///
/// ```
/// use cqm_math::matrix::Matrix;
/// use cqm_math::svd::Svd;
///
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
/// let svd = Svd::new(&a).unwrap();
/// assert!((svd.sigma[0] - 3.0).abs() < 1e-12);
/// assert!((svd.sigma[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m x n`, orthonormal columns.
    pub u: Matrix,
    /// Singular values, length `n`, non-increasing.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n x n`, orthogonal.
    pub v: Matrix,
}

/// Sweep budget: each sweep visits all column pairs once.
const MAX_SWEEPS: usize = 60;

impl Svd {
    /// Compute the thin SVD of `a` (requires `rows >= cols`; transpose the
    /// input yourself for wide matrices — callers in this workspace always
    /// have tall design matrices).
    ///
    /// # Errors
    ///
    /// * [`MathError::DimensionMismatch`] if `a` is wider than tall.
    /// * [`MathError::NoConvergence`] if Jacobi sweeps fail to orthogonalise
    ///   the columns within the sweep budget (does not occur for finite
    ///   inputs in practice).
    pub fn new(a: &Matrix) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(MathError::DimensionMismatch {
                context: "svd requires rows >= cols",
                expected: n,
                actual: m,
            });
        }
        // Work on columns of a copy of A; accumulate rotations into V.
        let mut u = a.clone();
        let mut v = Matrix::identity(n);

        let tol = 1e-13;
        // Columns whose squared norm has collapsed to rounding noise relative
        // to the whole matrix are numerically zero; rotating them against
        // each other cycles forever on rank-deficient inputs.
        let scale2: f64 = a.as_slice().iter().map(|x| x * x).sum();
        let dead = 1e-26 * scale2;
        let mut converged = false;
        for _ in 0..MAX_SWEEPS {
            let mut rotations = 0usize;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries over columns p and q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        app += up * up;
                        aqq += uq * uq;
                        apq += up * uq;
                    }
                    if app <= dead
                        || aqq <= dead
                        || apq.abs() <= tol * (app * aqq).sqrt().max(f64::MIN_POSITIVE)
                    {
                        continue;
                    }
                    rotations += 1;
                    // Jacobi rotation that annihilates the (p,q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        u[(i, p)] = c * up - s * uq;
                        u[(i, q)] = s * up + c * uq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if rotations == 0 {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(MathError::NoConvergence {
                method: "jacobi-svd",
                iterations: MAX_SWEEPS,
            });
        }

        // Column norms are the singular values; normalise U's columns.
        let mut order: Vec<usize> = (0..n).collect();
        let mut sigma = vec![0.0; n];
        for (j, s) in sigma.iter_mut().enumerate() {
            *s = (0..m).map(|i| u[(i, j)] * u[(i, j)]).sum::<f64>().sqrt();
        }
        order.sort_by(|&i, &j| sigma[j].total_cmp(&sigma[i]));

        let mut u_sorted = Matrix::zeros(m, n);
        let mut v_sorted = Matrix::zeros(n, n);
        let mut sigma_sorted = vec![0.0; n];
        for (new_j, &old_j) in order.iter().enumerate() {
            let s = sigma[old_j];
            sigma_sorted[new_j] = s;
            // Zero columns (rank deficiency) keep a zero U column; V is still
            // orthogonal because rotations preserved it.
            let inv = if s > 0.0 { 1.0 / s } else { 0.0 };
            for i in 0..m {
                u_sorted[(i, new_j)] = u[(i, old_j)] * inv;
            }
            for i in 0..n {
                v_sorted[(i, new_j)] = v[(i, old_j)];
            }
        }

        Ok(Svd {
            u: u_sorted,
            sigma: sigma_sorted,
            v: v_sorted,
        })
    }

    /// Effective numerical rank: singular values above the Jacobi noise
    /// floor `max(m, n) * sigma_max * 1e-13`.
    pub fn rank(&self) -> usize {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        let tol = self.u.rows().max(self.v.rows()) as f64 * smax * 1e-13;
        self.sigma.iter().filter(|&&s| s > tol).count()
    }

    /// Condition number `sigma_max / sigma_min` (infinite if rank-deficient).
    pub fn condition_number(&self) -> f64 {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        let smin = self.sigma.last().copied().unwrap_or(0.0);
        // lint: allow(NAN_UNSAFE_CMP) -- an exactly-zero singular value is rank deficiency; the condition number is infinite by definition
        if smin == 0.0 {
            f64::INFINITY
        } else {
            smax / smin
        }
    }

    /// Minimum-norm least-squares solution of `A x ≈ b` via the
    /// pseudo-inverse: `x = V Σ⁺ Uᵀ b`. Small singular values (below the
    /// rank tolerance) are truncated, which is what makes the SVD route
    /// robust for the nearly collinear rule-activation columns ANFIS
    /// produces.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.u.rows();
        let n = self.v.rows();
        if b.len() != m {
            return Err(MathError::DimensionMismatch {
                context: "svd solve rhs",
                expected: m,
                actual: b.len(),
            });
        }
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        let tol = m.max(n) as f64 * smax * 1e-13;
        // y = Σ⁺ Uᵀ b
        let mut y = vec![0.0; n];
        for j in 0..n {
            if self.sigma[j] <= tol {
                continue;
            }
            let utb: f64 = (0..m).map(|i| self.u[(i, j)] * b[i]).sum();
            y[j] = utb / self.sigma[j];
        }
        // x = V y
        Ok((0..n)
            .map(|i| (0..n).map(|j| self.v[(i, j)] * y[j]).sum())
            .collect())
    }

    /// Reconstruct `U Σ Vᵀ` (for testing / diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += self.u[(i, k)] * self.sigma[k] * self.v[(j, k)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -2.0], &[0.0, 0.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_close(svd.sigma[0], 3.0, 1e-12);
        assert_close(svd.sigma[1], 2.0, 1e-12);
        let r = svd.reconstruct();
        for i in 0..3 {
            for j in 0..2 {
                assert_close(r[(i, j)], a[(i, j)], 1e-10);
            }
        }
    }

    #[test]
    fn singular_values_ordered_descending() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!(svd.sigma[0] >= svd.sigma[1]);
        assert!(svd.sigma[1] >= svd.sigma[2]);
    }

    #[test]
    fn u_columns_orthonormal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]);
        let svd = Svd::new(&a).unwrap();
        for p in 0..2 {
            for q in 0..2 {
                let g: f64 = (0..4).map(|i| svd.u[(i, p)] * svd.u[(i, q)]).sum();
                assert_close(g, if p == q { 1.0 } else { 0.0 }, 1e-10);
            }
        }
    }

    #[test]
    fn v_orthogonal() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0], &[0.0, 1.0]]);
        let svd = Svd::new(&a).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_close(vtv[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-10);
            }
        }
    }

    #[test]
    fn rank_detects_deficiency() {
        // Second column is twice the first: rank 1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(), 1);
        assert!(svd.condition_number().is_infinite() || svd.condition_number() > 1e12);
    }

    #[test]
    fn full_rank_condition() {
        let a = Matrix::identity(3);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(), 3);
        assert_close(svd.condition_number(), 1.0, 1e-12);
    }

    #[test]
    fn solve_exact_system() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let svd = Svd::new(&a).unwrap();
        let x = svd.solve(&[2.0, 8.0]).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn solve_overdetermined_regression() {
        // y = 2x + 1 with exact data.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let y = [1.0, 3.0, 5.0, 7.0];
        let svd = Svd::new(&a).unwrap();
        let x = svd.solve(&y).unwrap();
        assert_close(x[0], 2.0, 1e-10);
        assert_close(x[1], 1.0, 1e-10);
    }

    #[test]
    fn solve_rank_deficient_gives_min_norm() {
        // Columns identical: any (x0, x1) with x0 + x1 = 1 fits A x = b where
        // b = column. Minimum-norm solution is (0.5, 0.5).
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let svd = Svd::new(&a).unwrap();
        let x = svd.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_close(x[0], 0.5, 1e-10);
        assert_close(x[1], 0.5, 1e-10);
    }

    #[test]
    fn solve_rhs_length_checked() {
        let a = Matrix::identity(2);
        let svd = Svd::new(&a).unwrap();
        assert!(svd.solve(&[1.0]).is_err());
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Svd::new(&a),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_reconstruction_accuracy() {
        // Deterministic pseudo-random fill (LCG) — avoids dev-dependency use
        // inside the unit test while still covering a "generic" matrix.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let m = 12;
        let n = 5;
        let mut a = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                a[(i, j)] = next();
            }
        }
        let svd = Svd::new(&a).unwrap();
        let r = svd.reconstruct();
        for i in 0..m {
            for j in 0..n {
                assert_close(r[(i, j)], a[(i, j)], 1e-9);
            }
        }
    }
}
