//! ULP contract for `cqm_math::fastexp` (DESIGN.md section 9).
//!
//! Proves, by dense sweep, that `exp_bounded` stays within its documented
//! `EXP_BOUNDED_MAX_ULP` bound against `f64::exp` over the Gaussian
//! membership argument domain (`-0.5 * z * z`), over the wider fast range,
//! and that every edge case (NaN, ±inf, overflow, denormal results)
//! engages the scalar fallback bit-exactly.

use cqm_math::fastexp::{exp4_bounded, exp_bounded, ulp_diff, EXP_BOUNDED_MAX_ULP};

/// Deterministic LCG so the random sweeps are replayable.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }
    /// Uniform in [lo, hi).
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

fn assert_within_bound(x: f64) -> u64 {
    let got = exp_bounded(x);
    let want = x.exp();
    let d = ulp_diff(got, want);
    assert!(
        d <= EXP_BOUNDED_MAX_ULP,
        "exp_bounded({x:e}) = {got:e} vs std {want:e}: {d} ULP > bound {EXP_BOUNDED_MAX_ULP}"
    );
    d
}

/// The membership argument domain: `-0.5 * z * z` for standardized
/// distances `z` an appliance kernel actually sees. A dense grid of
/// `z` in [0, 37] covers arguments from 0 down to ~-684.5, past which a
/// Gaussian firing strength underflows to zero anyway.
#[test]
fn membership_domain_dense_sweep_holds_bound() {
    let mut worst = 0_u64;
    let mut n = 0_u64;
    let mut z = 0.0_f64;
    while z <= 37.0 {
        worst = worst.max(assert_within_bound(-0.5 * z * z));
        z += 1.0 / 1024.0;
        n += 1;
    }
    assert!(n > 37_000, "sweep unexpectedly small: {n} points");
    // The bound is tight for this domain, not just an upper bound: the
    // sweep must actually observe a nonzero error somewhere, otherwise
    // the documented bound has gone stale and should be lowered.
    assert!(worst >= 1, "documented ULP bound is stale: sweep saw {worst}");
}

/// Random sweep across the entire fast range, both signs.
#[test]
fn fast_range_random_sweep_holds_bound() {
    let mut rng = Lcg(0x9e3779b97f4a7c15);
    for _ in 0..200_000 {
        let x = rng.uniform(-707.9, 708.9);
        assert_within_bound(x);
    }
}

/// Dense neighbourhood sweeps around the algebraically delicate points:
/// zero (result exactly 1), the k-rounding tie points at multiples of
/// ln(2)/2, and the fast-range borders.
#[test]
fn boundary_neighbourhoods_hold_bound() {
    let ln2 = std::f64::consts::LN_2;
    let centers = [
        0.0,
        ln2 / 2.0,
        -ln2 / 2.0,
        ln2,
        -ln2,
        10.5 * ln2,
        -10.5 * ln2,
        -707.99,
        708.99,
    ];
    for c in centers {
        let mut x = c;
        // Walk 64 ULPs to each side of the center.
        for _ in 0..64 {
            x = next_down(x);
        }
        for _ in 0..128 {
            if x > -708.0 && x < 709.0 {
                assert_within_bound(x);
            }
            x = next_up(x);
        }
    }
}

fn next_up(x: f64) -> f64 {
    f64::from_bits(if x >= 0.0 { x.to_bits() + 1 } else { x.to_bits() - 1 })
}

fn next_down(x: f64) -> f64 {
    if x.to_bits() == 0 {
        return -f64::from_bits(1);
    }
    f64::from_bits(if x > 0.0 { x.to_bits() - 1 } else { x.to_bits() + 1 })
}

/// Outside the fast range the result must be *bit-identical* to std —
/// the fallback hands the argument straight to `f64::exp`.
#[test]
fn fallback_region_is_bit_exact_with_std() {
    // Overflow side.
    for x in [709.0, 709.7827, 710.0, 1.0e4, f64::MAX] {
        assert_eq!(exp_bounded(x).to_bits(), x.exp().to_bits(), "x={x}");
    }
    // Denormal-result / underflow side: exp(x) for x in [-745.2, -708]
    // produces denormals, then exact zero.
    let mut rng = Lcg(42);
    for _ in 0..20_000 {
        let x = rng.uniform(-746.0, -708.0);
        let got = exp_bounded(x);
        assert_eq!(got.to_bits(), x.exp().to_bits(), "x={x}");
    }
    assert_eq!(exp_bounded(-746.0).to_bits(), (-746.0_f64).exp().to_bits());
    assert_eq!(exp_bounded(-1.0e6).to_bits(), 0.0_f64.to_bits());
    // Specials.
    assert!(exp_bounded(f64::NAN).is_nan());
    assert_eq!(exp_bounded(f64::INFINITY).to_bits(), f64::INFINITY.to_bits());
    assert_eq!(exp_bounded(f64::NEG_INFINITY).to_bits(), 0.0_f64.to_bits());
}

/// A denormal *argument* is deep inside the fast range and must still be
/// within bound (the answer is within an ULP of 1.0).
#[test]
fn denormal_arguments_hold_bound() {
    for x in [f64::from_bits(1), -f64::from_bits(1), f64::MIN_POSITIVE, -f64::MIN_POSITIVE] {
        assert_within_bound(x);
    }
}

/// Lane results never depend on batch position: for random blocks mixing
/// in-range and out-of-range lanes, exp4 agrees bitwise with four
/// independent scalar calls.
#[test]
fn lanes_agree_with_scalar_for_mixed_blocks() {
    let mut rng = Lcg(7);
    for _ in 0..50_000 {
        let mut block = [0.0_f64; 4];
        for lane in block.iter_mut() {
            // ~1/8 of lanes land outside the fast range.
            let wide = rng.next_u64() % 8 == 0;
            *lane = if wide {
                rng.uniform(-900.0, 900.0)
            } else {
                rng.uniform(-700.0, 700.0)
            };
        }
        let lanes = exp4_bounded(block);
        for (l, x) in lanes.iter().zip(&block) {
            assert_eq!(l.to_bits(), exp_bounded(*x).to_bits(), "x={x}");
        }
    }
}
