//! Property-based tests for the numerical kernels.

use cqm_math::gaussian::Gaussian;
use cqm_math::linsolve::{lstsq, residual_norm, LstsqMethod};
use cqm_math::matrix::Matrix;
use cqm_math::special::{erf, erfc};
use cqm_math::stats::{self, Welford};
use cqm_math::svd::Svd;
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |x| {
        let span = range.end - range.start;
        range.start + (x.abs() % span)
    })
}

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..8, 1usize..5).prop_flat_map(|(m, n)| {
        let m = m.max(n);
        prop::collection::vec(finite_f64(-10.0..10.0), m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data).unwrap())
    })
}

proptest! {
    #[test]
    fn svd_reconstructs_input(a in small_matrix()) {
        let svd = Svd::new(&a).unwrap();
        let r = svd.reconstruct();
        let scale = a.max_abs().max(1.0);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                prop_assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-8 * scale);
            }
        }
    }

    #[test]
    fn svd_singular_values_nonnegative_sorted(a in small_matrix()) {
        let svd = Svd::new(&a).unwrap();
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for &s in &svd.sigma {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn svd_v_is_orthogonal(a in small_matrix()) {
        let svd = Svd::new(&a).unwrap();
        let n = a.cols();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((vtv[(i, j)] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns(a in small_matrix(),
                                            seed in 0u64..1000) {
        // Build an arbitrary rhs from the seed.
        let b: Vec<f64> = (0..a.rows())
            .map(|i| ((seed as f64 + 1.0) * (i as f64 + 0.5)).sin() * 3.0)
            .collect();
        // Orthogonality to this tolerance is only meaningful away from
        // numerical rank deficiency; near-singular systems are covered by
        // the dedicated truncation tests.
        let svd = Svd::new(&a).unwrap();
        prop_assume!(svd.condition_number() < 1e8);
        let x = lstsq(&a, &b, LstsqMethod::Svd).unwrap();
        // Residual r = Ax - b must satisfy A^T r ~ 0 on the column space.
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(&b).map(|(p, t)| p - t).collect();
        let atr = a.transpose().matvec(&r).unwrap();
        let scale = a.max_abs().max(1.0) * (1.0 + cqm_math::vector::norm(&b));
        for v in atr {
            prop_assert!(v.abs() < 1e-7 * scale);
        }
    }

    #[test]
    fn lstsq_solution_beats_perturbations(a in small_matrix(), seed in 0u64..1000) {
        let b: Vec<f64> = (0..a.rows())
            .map(|i| ((seed as f64) * 0.37 + i as f64).cos() * 2.0)
            .collect();
        let x = lstsq(&a, &b, LstsqMethod::Svd).unwrap();
        let r0 = residual_norm(&a, &x, &b).unwrap();
        let mut xp = x.clone();
        xp[0] += 0.05;
        prop_assert!(residual_norm(&a, &xp, &b).unwrap() + 1e-9 >= r0);
    }

    #[test]
    fn erf_odd_and_bounded(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_cdf_monotone(mu in -5.0f64..5.0, sigma in 0.01f64..3.0,
                             a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let g = Gaussian::new(mu, sigma).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(g.cdf(lo) <= g.cdf(hi) + 1e-14);
        prop_assert!(g.cdf(lo) >= 0.0 && g.cdf(hi) <= 1.0);
    }

    #[test]
    fn gaussian_intersections_are_crossings(m1 in -2.0f64..2.0, s1 in 0.05f64..1.0,
                                            m2 in -2.0f64..2.0, s2 in 0.05f64..1.0) {
        let a = Gaussian::new(m1, s1).unwrap();
        let b = Gaussian::new(m2, s2).unwrap();
        for r in a.intersections(&b) {
            prop_assert!((a.pdf(r) - b.pdf(r)).abs() < 1e-7 * a.pdf(r).max(b.pdf(r)).max(1e-12));
        }
    }

    #[test]
    fn welford_matches_batch_statistics(data in prop::collection::vec(-100.0f64..100.0, 2..64)) {
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let m = stats::mean(&data).unwrap();
        let v = stats::population_variance(&data).unwrap();
        prop_assert!((w.mean() - m).abs() < 1e-9 * m.abs().max(1.0));
        prop_assert!((w.population_variance() - v).abs() < 1e-9 * v.max(1.0));
    }

    #[test]
    fn welford_merge_associative(d1 in prop::collection::vec(-50.0f64..50.0, 1..32),
                                 d2 in prop::collection::vec(-50.0f64..50.0, 1..32)) {
        let mut wa = Welford::new();
        for &x in &d1 { wa.push(x); }
        let mut wb = Welford::new();
        for &x in &d2 { wb.push(x); }
        let mut merged = wa;
        merged.merge(&wb);
        let mut seq = Welford::new();
        for &x in d1.iter().chain(&d2) { seq.push(x); }
        prop_assert!((merged.mean() - seq.mean()).abs() < 1e-9 * seq.mean().abs().max(1.0));
        prop_assert!((merged.population_variance() - seq.population_variance()).abs()
                     < 1e-9 * seq.population_variance().max(1.0));
    }

    #[test]
    fn mle_gaussian_integrates_to_one_over_wide_range(
        data in prop::collection::vec(-5.0f64..5.0, 3..40)
    ) {
        if let Ok(g) = Gaussian::mle(&data) {
            // integral of pdf over [-60, 60] via cdf difference
            let mass = g.cdf(60.0) - g.cdf(-60.0);
            prop_assert!((mass - 1.0).abs() < 1e-9);
        }
    }
}
