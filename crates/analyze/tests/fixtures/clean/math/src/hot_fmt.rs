// analyze: hot-path
//! Fixture: formatting without per-iteration allocation — one reused
//! String written into with `write!` instead of `format!` per row.

use std::fmt::Write as _;

pub fn render_rows(rows: &[f64]) -> String {
    debug_assert!(rows.iter().all(|r| r.is_finite()), "rows must be finite");
    let mut out = String::new();
    for r in rows {
        let _ = write!(out, "{r:.3} ");
    }
    out
}
