//! Known-clean fixture: NaN-stable ordering, guarded numeric API, and a
//! suppression that documents its reason.
//! Not compiled — scanned by the integration tests only.

// lint: allow(ASSERT_DENSITY) -- total_cmp gives NaN a total order; there is no domain to guard
pub fn sort_scores(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

pub fn mean(xs: &[f64]) -> f64 {
    debug_assert!(!xs.is_empty(), "mean of an empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

pub fn last_resort(values: &[usize]) -> usize {
    // lint: allow(PANIC_IN_LIB) -- fixture demonstrating a justified, documented suppression
    *values.first().unwrap()
}
