// analyze: hot-path
//! Fixture: a hot-path-tagged file whose exponentials all go through the
//! vetted `cqm_math::fastexp` funnel, so the precision contract stays in
//! one module.

use cqm_math::fastexp::{exp_bounded, exp_exact};

pub fn memberships(xs: &[f64], mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0, "gaussian width must be positive");
    let mut acc = 0.0;
    for &x in xs {
        let z = (x - mu) / sigma;
        acc += exp_exact(-0.5 * z * z);
    }
    acc
}

pub fn memberships_bounded(xs: &[f64], mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0, "gaussian width must be positive");
    let mut acc = 0.0;
    for &x in xs {
        let z = (x - mu) / sigma;
        acc += exp_bounded(-0.5 * z * z);
    }
    acc
}
