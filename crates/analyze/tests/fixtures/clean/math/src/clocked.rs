//! Fixture: time arrives as data — the caller samples the clock at the
//! service edge and the computation stays a pure function of its inputs.

pub fn decayed_quality(q: f64, age_s: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "quality in [0, 1]");
    debug_assert!(age_s >= 0.0, "cue age is non-negative");
    q * (-age_s).exp()
}
