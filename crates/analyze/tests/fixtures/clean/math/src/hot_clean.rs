// analyze: hot-path
//! Fixture: a hot-path-tagged file that keeps its loops allocation-free —
//! buffers are hoisted, and the one bounded allocation carries a pragma.

pub fn potentials(points: &[Vec<f64>], scratch: &mut Vec<f64>) -> f64 {
    debug_assert!(!points.is_empty(), "potentials of an empty point set");
    // Allocation happens once, outside the loop.
    scratch.clear();
    scratch.extend(points.iter().map(|p| p.iter().sum::<f64>()));
    let mut acc = 0.0;
    for s in scratch.iter() {
        acc += s * s;
    }
    acc
}

pub fn accepted_rows(points: &[Vec<f64>], accept: f64) -> Vec<Vec<f64>> {
    debug_assert!(accept.is_finite(), "acceptance threshold must be finite");
    let mut rows = Vec::new();
    for p in points {
        let score: f64 = p.iter().sum();
        if score > accept {
            // lint: allow(HOT_LOOP_ALLOC) -- bounded by accepted rows, not by the scan itself
            rows.push(p.clone());
        }
    }
    rows
}
