//! Known-clean fixture: the quality value is built inside a normalizer
//! function, the one place EPSILON_DOMAIN allows it.
//! Not compiled — scanned by the integration tests only.

pub fn normalize(x: f64) -> Quality {
    debug_assert!(!x.is_nan(), "normalizer input must not be NaN");
    if (0.0..=1.0).contains(&x) {
        Quality::Value(x)
    } else {
        Quality::Epsilon
    }
}
