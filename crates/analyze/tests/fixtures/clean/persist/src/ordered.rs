//! Fixture: deterministic checkpoint bytes — iterate an ordered map, and
//! keep hash containers for point lookups only.

use std::collections::{BTreeMap, HashMap};

pub fn dump(table: &BTreeMap<String, u64>, out: &mut Vec<u8>) {
    for (k, v) in table {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

pub fn lookup(index: &HashMap<String, u64>, key: &str) -> Option<u64> {
    index.get(key).copied()
}
