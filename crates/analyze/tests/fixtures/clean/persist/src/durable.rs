//! Fixture: persistence code that checks every I/O result.

use std::fs::File;
use std::io::{Result, Write};

pub fn careful_close(file: &File) -> Result<()> {
    file.sync_all()
}

pub fn careful_flush(w: &mut impl Write) -> Result<()> {
    w.flush()
}

pub struct Guard {
    file: File,
}

impl Drop for Guard {
    fn drop(&mut self) {
        // lint: allow(IO_SWALLOWED) -- Drop cannot propagate errors; callers use careful_close
        let _ = self.file.sync_all();
    }
}
