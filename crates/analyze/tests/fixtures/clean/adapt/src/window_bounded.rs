//! CLEAN: streaming stores whose growth is bounded — eviction in the same
//! function, eviction in a sibling method of the same `impl`, and a
//! pragma-suppressed copy that is capped by its input.

// analyze: streaming

use std::collections::VecDeque;

/// A bounded FIFO: every push past the capacity evicts oldest-first.
pub struct Window {
    samples: VecDeque<f64>,
    capacity: usize,
}

impl Window {
    /// Push one sample, evicting in the same function.
    pub fn push(&mut self, x: f64) {
        while self.samples.len() >= self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(x);
    }

    /// Growth here is bounded by the eviction `trim` performs on the same
    /// store — the ancestor chain reaches the shared `impl` block.
    pub fn push_unchecked(&mut self, x: f64) {
        self.samples.push_back(x);
    }

    /// Cap the store from the other side.
    pub fn trim(&mut self, keep: usize) {
        self.samples.truncate(keep);
    }
}

/// Copy out every other sample: output length is capped by the input
/// window, so the growth is bounded another way.
pub fn decimate(window: &Window) -> Vec<f64> {
    let mut out = Vec::new();
    for (i, &x) in window.samples.iter().enumerate() {
        if i % 2 == 0 {
            // lint: allow(UNBOUNDED_WINDOW) -- bounded by the window's own capacity
            out.push(x);
        }
    }
    out
}
