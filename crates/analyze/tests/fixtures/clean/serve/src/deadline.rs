//! Fixture: every blocking socket operation carries an explicit budget.

use std::io::Result;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

pub fn dial(addr: &SocketAddr, budget: Duration) -> Result<TcpStream> {
    TcpStream::connect_timeout(addr, budget)
}

pub fn bound(stream: &TcpStream, budget: Duration) -> Result<()> {
    stream.set_read_timeout(Some(budget))?;
    stream.set_write_timeout(Some(budget))
}
