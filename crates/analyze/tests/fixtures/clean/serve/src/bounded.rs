//! Fixture: every service-path buffer has a fixed capacity and a reason
//! for it.

use std::sync::mpsc;

/// One slot: a session has at most one job in flight.
pub fn reply_channel() -> (mpsc::SyncSender<u8>, mpsc::Receiver<u8>) {
    mpsc::sync_channel(1)
}
