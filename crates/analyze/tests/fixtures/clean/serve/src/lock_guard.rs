//! Fixture: the same work as the bad twin, but every guard is released —
//! scoped to an inner block or explicitly dropped — before anything
//! blocks.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{mpsc, Mutex, PoisonError};

pub fn flush_stats(stats: &Mutex<Vec<u8>>, sock: &mut TcpStream) -> std::io::Result<()> {
    let snapshot = {
        let guard = stats.lock().unwrap_or_else(PoisonError::into_inner);
        guard.to_vec()
    };
    sock.write_all(&snapshot)?;
    sock.flush()?;
    Ok(())
}

pub fn drain_one(state: &Mutex<u64>, rx: &mpsc::Receiver<u64>) -> u64 {
    let mut total = state.lock().unwrap_or_else(PoisonError::into_inner);
    *total += 1;
    drop(total);
    rx.recv().unwrap_or(0)
}
