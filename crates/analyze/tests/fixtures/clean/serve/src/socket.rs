//! Fixture: service code that checks every socket I/O result.

use std::io::{Result, Write};
use std::net::TcpStream;

pub fn careful_reply(stream: &mut TcpStream, frame: &[u8]) -> Result<()> {
    stream.write_all(frame)?;
    stream.flush()
}

pub fn goodbye_on_teardown(stream: &mut TcpStream, frame: &[u8]) {
    // lint: allow(IO_SWALLOWED) -- best-effort goodbye: the transport may already be gone
    let _ = stream.write_all(frame);
}
