// analyze: hot-path
//! Fixture: formatting and boxing allocations inside the loops of a
//! hot-path-tagged file — one heap allocation per iteration, three ways.

pub fn render_rows(rows: &[f64]) -> Vec<String> {
    debug_assert!(rows.iter().all(|r| r.is_finite()), "rows must be finite");
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(format!("{r:.3}"));
    }
    out
}

pub fn label_rows(rows: &[u64]) -> Vec<String> {
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(r.to_string());
    }
    out
}

pub fn boxed_rows(rows: &[u64]) -> Vec<Box<u64>> {
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(Box::new(*r));
    }
    out
}
