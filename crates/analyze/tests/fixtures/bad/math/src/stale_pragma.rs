//! Fixture: a suppression that outlived its hazard. The bare index this
//! pragma once excused was rewritten to `.first()`, so the pragma cancels
//! nothing — and is itself the finding.

pub fn first_or_zero(qs: &[f64]) -> f64 {
    debug_assert!(qs.iter().all(|q| q.is_finite()), "qualities must be finite");
    // lint: allow(PANIC_IN_LIB) -- caller guarantees non-empty input
    qs.first().copied().unwrap_or(0.0)
}
