// analyze: hot-path
//! Fixture: allocations inside the loops of a hot-path-tagged file.

pub fn potentials(points: &[Vec<f64>]) -> Vec<f64> {
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        // Per-iteration clone of the row — exactly what the pass exists for.
        let local = p.clone();
        let doubled: Vec<f64> = local.iter().map(|x| x * 2.0).collect();
        out.push(doubled.iter().sum());
    }
    out
}

pub fn widths(n: usize) -> f64 {
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let scratch = vec![0.0f64; 8];
        acc += scratch.len() as f64;
        i += 1;
    }
    acc
}
