//! Known-bad fixture: suppressions that do not carry their weight (PRAGMA).
//! Not compiled — scanned by the integration tests only.

// lint: allow(PANIC_IN_LIB)
pub fn quiet(values: &[usize]) -> usize {
    values.len()
}

// lint: allow(NO_SUCH_LINT) -- misspelled id should be a deny finding
pub fn other(values: &[usize]) -> usize {
    values.len()
}
