//! Known-bad fixture: numeric public API without a domain guard
//! (ASSERT_DENSITY). Not compiled — scanned by the integration tests only.

pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}
