// analyze: hot-path
//! Fixture: raw transcendental calls in a hot-path-tagged file — both
//! should route through the vetted `cqm_math` entry points.

pub fn memberships(xs: &[f64], mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0, "gaussian width must be positive");
    let mut acc = 0.0;
    for &x in xs {
        let z = (x - mu) / sigma;
        // Bypasses cqm_math::fastexp — exactly what the pass exists for.
        acc += (-0.5 * z * z).exp();
    }
    acc
}

pub fn scaled_width(sigma: f64, gamma: f64) -> f64 {
    debug_assert!(sigma > 0.0, "gaussian width must be positive");
    sigma.powf(gamma)
}
