//! Known-bad fixture: NaN-unsafe comparisons (NAN_UNSAFE_CMP).
//! Not compiled — scanned by the integration tests only.

pub fn sort_scores(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn is_converged(err: f64) -> bool {
    err == 0.0
}
