//! Known-bad fixture: panic paths in library code (PANIC_IN_LIB).
//! Not compiled — scanned by the integration tests only.

pub fn pick(values: &[usize], idx: usize) -> usize {
    values[idx]
}

pub fn must_first(values: &[usize]) -> usize {
    *values.first().unwrap()
}

pub fn giveup() {
    unimplemented!()
}
