//! Fixture: wall-clock reads inside the quality computation — two
//! identical inputs stop producing identical outputs.

use std::time::Instant;

pub fn decayed_quality(q: f64, born: Instant) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "quality in [0, 1]");
    let age = born.elapsed().as_secs_f64();
    q * (-age).exp()
}

pub fn age_seconds(born: Instant) -> f64 {
    let now = Instant::now();
    now.duration_since(born).as_secs_f64()
}
