//! Fixture: persistence code that swallows I/O errors.

use std::fs::File;
use std::io::Write;

pub fn careless_close(file: &File) {
    let _ = file.sync_all();
}

pub fn careless_flush(w: &mut impl Write) {
    w.flush().ok();
}
