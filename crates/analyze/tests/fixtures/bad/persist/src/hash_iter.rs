//! Fixture: checkpoint bytes produced by iterating a hash container — the
//! emitted order changes from process to process.

use std::collections::HashMap;

pub fn dump(table: &HashMap<String, u64>, out: &mut Vec<u8>) {
    for (k, v) in table {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

pub fn key_digest(table: &HashMap<String, u64>) -> u64 {
    let mut acc = 0u64;
    for k in table.keys() {
        acc = acc.wrapping_add(k.len() as u64);
    }
    acc
}
