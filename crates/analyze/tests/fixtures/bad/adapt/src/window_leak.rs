//! BAD: streaming accumulators that grow forever — the slow leak
//! UNBOUNDED_WINDOW exists to catch. No eviction or cap call anywhere on
//! the ancestor chain of either growth site.

// analyze: streaming

use std::collections::VecDeque;

/// Rolling log of quality margins with no capacity bound.
pub struct MarginLog {
    margins: Vec<f64>,
}

impl MarginLog {
    /// Record one margin observation. Grows without bound.
    pub fn observe(&mut self, margin: f64) {
        self.margins.push(margin);
    }

    /// Observations recorded so far.
    pub fn len(&self) -> usize {
        self.margins.len()
    }
}

/// Append to a queue that nothing ever drains.
pub fn enqueue(backlog: &mut VecDeque<f64>, x: f64) {
    backlog.push_back(x);
}
