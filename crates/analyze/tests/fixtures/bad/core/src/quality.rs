//! Known-bad fixture: a quality value fabricated outside the normalizer
//! (EPSILON_DOMAIN). Not compiled — scanned by the integration tests only.

pub fn fabricate() -> Quality {
    Quality::Value(0.7)
}
