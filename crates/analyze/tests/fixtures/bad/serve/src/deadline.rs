//! Fixture: deadline-free socket I/O in a service path — the bare connect
//! and both timeout-clearing calls.

use std::io::Result;
use std::net::TcpStream;

pub fn dial(addr: &str) -> Result<TcpStream> {
    TcpStream::connect(addr)
}

pub fn wait_forever(stream: &TcpStream) -> Result<()> {
    stream.set_read_timeout(None)?;
    stream.set_write_timeout(None)
}
