//! Fixture: service code that swallows I/O errors on a socket path.

use std::io::Write;
use std::net::TcpStream;

pub fn careless_reply(stream: &mut TcpStream, frame: &[u8]) {
    let _ = stream.write_all(frame);
}

pub fn careless_drain(stream: &mut TcpStream) {
    stream.flush().ok();
}
