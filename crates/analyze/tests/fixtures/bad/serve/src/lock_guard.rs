//! Fixture: mutex guards held across blocking calls — the session thread
//! stalls every other thread contending for the lock while it waits on
//! the network or a channel.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{mpsc, Mutex, PoisonError};

pub fn flush_stats(stats: &Mutex<Vec<u8>>, sock: &mut TcpStream) -> std::io::Result<()> {
    let snapshot = stats.lock().unwrap_or_else(PoisonError::into_inner);
    sock.write_all(&snapshot)?;
    sock.flush()?;
    Ok(())
}

pub fn drain_one(state: &Mutex<u64>, rx: &mpsc::Receiver<u64>) -> u64 {
    let total = state.lock().unwrap_or_else(PoisonError::into_inner);
    match rx.recv() {
        Ok(v) => *total + v,
        Err(_) => *total,
    }
}
