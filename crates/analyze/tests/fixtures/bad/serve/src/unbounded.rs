//! Fixture: elastic buffers hiding inside the bounded-queue service path —
//! both the plain call and the turbofish form.

use std::sync::mpsc;

pub fn reply_channel() -> (mpsc::Sender<u8>, mpsc::Receiver<u8>) {
    mpsc::channel()
}

pub fn typed_channel() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel::<u64>()
}
