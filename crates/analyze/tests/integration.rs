//! Integration tests: run the real pass set over the fixtures corpus and
//! over the workspace's own sources.
//!
//! The fixture trees under `tests/fixtures/{bad,clean}` mirror the path
//! shapes the path-filtered passes care about (`math/src`, `core/src`), so
//! the default passes apply to them exactly as they do to the real crates.

use std::path::PathBuf;

use cqm_analyze::passes::default_passes;
use cqm_analyze::{run, Report};

fn fixture(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

fn analyze(rel: &str) -> Report {
    run(&[fixture(rel)], &default_passes()).expect("fixture tree readable")
}

fn count(report: &Report, lint: &str) -> usize {
    report.findings.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn nan_cmp_fixture_is_flagged() {
    let r = analyze("bad/math/src/nan_cmp.rs");
    // One for the partial_cmp().unwrap() comparator, one for the exact `==`.
    assert_eq!(count(&r, "NAN_UNSAFE_CMP"), 2, "{:#?}", r.findings);
    assert!(r.failed(true));
}

#[test]
fn panic_fixture_is_flagged() {
    let r = analyze("bad/math/src/panics.rs");
    // Bare index, .unwrap(), and unimplemented! — one finding each.
    assert_eq!(count(&r, "PANIC_IN_LIB"), 3, "{:#?}", r.findings);
    assert!(r.failed(false), "unwrap/unimplemented are deny-level");
}

#[test]
fn unguarded_numeric_api_is_flagged() {
    let r = analyze("bad/math/src/unguarded.rs");
    assert_eq!(count(&r, "ASSERT_DENSITY"), 1, "{:#?}", r.findings);
    assert!(!r.failed(false), "ASSERT_DENSITY is warn-level");
    assert!(r.failed(true), "--deny-all must fail on it");
}

#[test]
fn quality_outside_normalizer_is_flagged() {
    let r = analyze("bad/core/src/quality.rs");
    assert_eq!(count(&r, "EPSILON_DOMAIN"), 1, "{:#?}", r.findings);
    assert!(r.failed(false), "EPSILON_DOMAIN is deny-level");
}

#[test]
fn reasonless_and_misspelled_pragmas_are_flagged() {
    let r = analyze("bad/math/src/bad_pragma.rs");
    assert_eq!(count(&r, "PRAGMA"), 2, "{:#?}", r.findings);
    assert!(r.failed(false), "pragma integrity findings are deny-level");
}

#[test]
fn swallowed_io_in_persistence_is_flagged() {
    let r = analyze("bad/persist/src/swallow.rs");
    // One `let _ = sync_all()` and one trailing `.ok()` on flush.
    assert_eq!(count(&r, "IO_SWALLOWED"), 2, "{:#?}", r.findings);
    assert!(r.failed(false), "IO_SWALLOWED is deny-level");
}

#[test]
fn swallowed_io_on_socket_paths_is_flagged() {
    let r = analyze("bad/serve/src/socket.rs");
    // One `let _ = write_all()` and one trailing `.ok()` on flush.
    assert_eq!(count(&r, "IO_SWALLOWED"), 2, "{:#?}", r.findings);
    assert!(r.failed(false), "IO_SWALLOWED is deny-level");
}

#[test]
fn checked_socket_io_with_reasoned_goodbye_passes() {
    let r = analyze("clean/serve/src/socket.rs");
    assert!(
        !r.failed(true),
        "checked socket I/O must not be flagged:\n{}",
        render(&r)
    );
}

#[test]
fn hot_loop_allocations_are_flagged() {
    let r = analyze("bad/math/src/hot_alloc.rs");
    // `.clone()` and `.collect()` in the `for` body, `vec![` in the `while`.
    assert_eq!(count(&r, "HOT_LOOP_ALLOC"), 3, "{:#?}", r.findings);
    assert!(!r.failed(false), "HOT_LOOP_ALLOC is warn-level");
    assert!(r.failed(true), "--deny-all must fail on it");
}

#[test]
fn hot_clean_fixture_passes() {
    let r = analyze("clean/math/src/hot_clean.rs");
    assert!(
        !r.failed(true),
        "hoisted/suppressed allocations must not be flagged:\n{}",
        render(&r)
    );
}

#[test]
fn guard_across_blocking_call_is_flagged() {
    let r = analyze("bad/serve/src/lock_guard.rs");
    // `snapshot` live across write_all, `total` live across recv.
    assert_eq!(count(&r, "LOCK_ACROSS_BLOCKING"), 2, "{:#?}", r.findings);
    assert!(r.failed(false), "LOCK_ACROSS_BLOCKING is deny-level");
}

#[test]
fn scoped_or_dropped_guards_pass() {
    let r = analyze("clean/serve/src/lock_guard.rs");
    assert!(
        !r.failed(true),
        "released guards must not be flagged:\n{}",
        render(&r)
    );
}

#[test]
fn unbounded_channel_in_service_path_is_flagged() {
    let r = analyze("bad/serve/src/unbounded.rs");
    // The plain call and the turbofish form.
    assert_eq!(count(&r, "UNBOUNDED_CHANNEL"), 2, "{:#?}", r.findings);
    assert!(r.failed(false), "UNBOUNDED_CHANNEL is deny-level");
}

#[test]
fn hash_iteration_in_checkpoint_path_is_flagged() {
    let r = analyze("bad/persist/src/hash_iter.rs");
    // `for … in table` and `table.keys()`.
    assert_eq!(count(&r, "HASH_ITER_NONDET"), 2, "{:#?}", r.findings);
    assert!(r.failed(false), "HASH_ITER_NONDET is deny-level");
}

#[test]
fn wall_clock_in_compute_path_is_flagged() {
    let r = analyze("bad/math/src/clocked.rs");
    // `.elapsed()` in decayed_quality, `Instant::now` in age_seconds.
    assert_eq!(count(&r, "TIME_IN_LOGIC"), 2, "{:#?}", r.findings);
    assert!(!r.failed(false), "TIME_IN_LOGIC is warn-level");
    assert!(r.failed(true), "--deny-all must fail on it");
}

#[test]
fn stale_suppression_is_flagged() {
    let r = analyze("bad/math/src/stale_pragma.rs");
    assert_eq!(count(&r, "STALE_SUPPRESS"), 1, "{:#?}", r.findings);
    assert!(r.failed(false), "STALE_SUPPRESS is deny-level");
}

#[test]
fn hot_loop_format_allocations_are_flagged() {
    let r = analyze("bad/math/src/hot_fmt.rs");
    // `format!`, `.to_string()` and `Box::new` — one finding each.
    assert_eq!(count(&r, "HOT_LOOP_ALLOC"), 3, "{:#?}", r.findings);
    assert!(!r.failed(false), "HOT_LOOP_ALLOC is warn-level");
}

#[test]
fn raw_transcendentals_in_hot_path_are_flagged() {
    let r = analyze("bad/math/src/hot_approx.rs");
    // One `.exp()` in the loop, one `.powf()` — one finding each.
    assert_eq!(count(&r, "APPROX_MATH"), 2, "{:#?}", r.findings);
    assert!(!r.failed(false), "APPROX_MATH is warn-level");
    assert!(r.failed(true), "--deny-all must fail on it");
}

#[test]
fn funneled_transcendentals_pass_deny_all() {
    let r = analyze("clean/math/src/hot_approx.rs");
    assert!(
        !r.failed(true),
        "vetted cqm_math entry points must not be flagged:\n{}",
        render(&r)
    );
}

#[test]
fn deadline_free_socket_io_is_flagged() {
    let r = analyze("bad/serve/src/deadline.rs");
    // The bare connect plus both timeout-clearing calls.
    assert_eq!(count(&r, "NO_DEADLINE_IO"), 3, "{:#?}", r.findings);
    assert!(r.failed(false), "NO_DEADLINE_IO is deny-level");
}

#[test]
fn budgeted_socket_io_passes() {
    let r = analyze("clean/serve/src/deadline.rs");
    assert!(
        !r.failed(true),
        "budgeted socket I/O must not be flagged:\n{}",
        render(&r)
    );
}

#[test]
fn unbounded_streaming_growth_is_flagged() {
    let r = analyze("bad/adapt/src/window_leak.rs");
    // The impl-local `push` and the free-function `push_back`.
    assert_eq!(count(&r, "UNBOUNDED_WINDOW"), 2, "{:#?}", r.findings);
    assert!(!r.failed(false), "UNBOUNDED_WINDOW is warn-level");
    assert!(r.failed(true), "--deny-all must fail on it");
}

#[test]
fn bounded_streaming_stores_pass_deny_all() {
    let r = analyze("clean/adapt/src/window_bounded.rs");
    assert!(
        !r.failed(true),
        "bounded/suppressed streaming growth must not be flagged:\n{}",
        render(&r)
    );
}

#[test]
fn bad_tree_fails_even_without_deny_all() {
    let r = analyze("bad");
    assert_eq!(r.files_scanned, 17);
    assert!(r.failed(false));
}

#[test]
fn clean_fixtures_pass_deny_all() {
    let r = analyze("clean");
    assert_eq!(r.files_scanned, 13);
    assert!(
        !r.failed(true),
        "clean fixtures produced findings:\n{}",
        render(&r)
    );
    // The clean tree carries live pragmas (e.g. the bounded allocation in
    // hot_clean.rs); they must fire — i.e. suppress something — or the
    // STALE_SUPPRESS check would have failed the tree above.
    assert!(r.suppressed >= 1, "expected live pragmas to fire");
}

/// The self-check the whole exercise exists for: the workspace's own
/// sources stay clean under `--deny-all`, pragma reasons included.
#[test]
fn workspace_sources_are_clean_under_deny_all() {
    let crates_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../crates");
    let mut roots = Vec::new();
    for entry in std::fs::read_dir(&crates_dir).expect("crates dir readable") {
        let src = entry.expect("dir entry").path().join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    assert!(roots.len() >= 5, "expected a workspace, got {roots:?}");
    let r = run(&roots, &default_passes()).expect("workspace readable");
    assert!(
        !r.failed(true),
        "workspace sources have findings:\n{}",
        render(&r)
    );
}

fn render(r: &Report) -> String {
    r.findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}
