//! Property test: the scanner's block tree against a structural oracle.
//!
//! A deterministic LCG drives a generator that emits nested Rust-ish
//! source — fns, loops, closures, inner scopes — salted with every
//! construct that has historically confused brace pairing: braces inside
//! string literals, char literals, raw strings, line comments, and
//! multi-byte UTF-8 text. The generator records, per emitted line, how
//! many blocks enclose that line's first non-whitespace character; the
//! test then checks that the scanned tree agrees and that the tree's
//! structural invariants hold:
//!
//! * every line maps to exactly one innermost block (the set of blocks
//!   containing its anchor is a single parent chain);
//! * block spans nest strictly — any two blocks are disjoint or one
//!   contains the other;
//! * `open_line..=close_line` brackets every line the span covers.

use std::path::Path;

use cqm_analyze::scanner::SourceFile;

/// Deterministic 64-bit LCG (MMIX constants); no external crates, no
/// process-dependent state — every run generates the same corpus.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The generated file plus the oracle: `depth[i]` is the number of blocks
/// that must enclose line `i + 1`'s first non-whitespace character.
#[derive(Default)]
struct Generated {
    src: String,
    depth: Vec<usize>,
}

impl Generated {
    fn push_line(&mut self, indent: usize, text: &str, depth: usize) {
        for _ in 0..indent {
            self.src.push_str("    ");
        }
        self.src.push_str(text);
        self.src.push('\n');
        self.depth.push(depth);
    }
}

/// Statement lines whose literals and comments contain stray braces; none
/// of them may open or close a block.
const TRAP_LINES: [&str; 7] = [
    r#"let s = "brace } inside { string";"#,
    "// comment with } stray { braces",
    r"let c = '{';",
    r"let d = '}';",
    r##"let raw = r#"raw } brace { text"#;"##,
    r#"let café = "多字节 } テキスト { text";"#,
    "let n = 1 + 2; // trailing } comment {",
];

/// Emit one block (header, body, close) at `depth`, recursing while the
/// LCG allows. `depth` counts the blocks enclosing the *header* line.
fn gen_block(lcg: &mut Lcg, out: &mut Generated, depth: usize, budget: &mut u32) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    let header = match lcg.pick(5) {
        0 => format!("fn f{}() {{", lcg.pick(1000)),
        1 => "for x in 0..4 {".to_string(),
        2 => "while x < 3 {".to_string(),
        3 => "let cl = |y: u64| {".to_string(),
        _ => "{".to_string(),
    };
    let closer = if header.contains('|') { "};" } else { "}" };
    // A bare `{` header's first non-whitespace char is the opening brace
    // itself, which the (inclusive) span contains; keyword headers anchor
    // before the brace, outside the new block.
    let header_depth = if header == "{" { depth + 1 } else { depth };
    out.push_line(depth, &header, header_depth);
    let inner = depth + 1;
    let stmts = 1 + lcg.pick(3);
    for _ in 0..stmts {
        let trap = TRAP_LINES[lcg.pick(TRAP_LINES.len() as u64) as usize];
        out.push_line(inner, trap, inner);
        if lcg.pick(3) == 0 {
            gen_block(lcg, out, inner, budget);
        }
    }
    // The closing line's anchor is the `}` itself, which the span contains.
    out.push_line(depth, closer, inner);
}

fn generate(seed: u64) -> Generated {
    let mut lcg = Lcg(seed);
    let mut out = Generated::default();
    out.push_line(0, "// generated corpus — top level", 0);
    let mut budget = 40;
    while budget > 0 {
        gen_block(&mut lcg, &mut out, 0, &mut budget);
        out.push_line(0, TRAP_LINES[lcg.pick(7) as usize], 0);
    }
    out
}

#[test]
fn every_line_maps_to_its_oracle_depth() {
    for seed in [1u64, 7, 42, 1234, 99991] {
        let gen = generate(seed);
        let file = SourceFile::scan(Path::new("crates/math/src/generated.rs"), &gen.src);
        let tree = file.block_tree();
        for (i, &want) in gen.depth.iter().enumerate() {
            let line = i + 1;
            // Chain length from the innermost block to the root must equal
            // the oracle depth exactly.
            let mut got = 0;
            let mut cur = file.enclosing_block(line);
            while let Some(bi) = cur {
                got += 1;
                cur = tree.blocks[bi].parent;
            }
            assert_eq!(
                got, want,
                "seed {seed} line {line} ({:?}): depth {got} != {want}",
                file.code(line)
            );
        }
    }
}

#[test]
fn containing_blocks_form_a_single_parent_chain() {
    for seed in [3u64, 2026] {
        let gen = generate(seed);
        let file = SourceFile::scan(Path::new("crates/math/src/generated.rs"), &gen.src);
        let tree = file.block_tree();
        for line in 1..=gen.depth.len() {
            let code = file.code(line);
            let lead = code.len() - code.trim_start().len();
            let anchor = file.offset_of_line(line) + lead;
            // All blocks containing the anchor…
            let containing: Vec<usize> = (0..tree.blocks.len())
                .filter(|&bi| tree.blocks[bi].contains(anchor))
                .collect();
            // …must be exactly the innermost block's ancestor chain: one
            // innermost block per line, everything else its ancestors.
            let mut chain = Vec::new();
            let mut cur = tree.enclosing_at(anchor);
            while let Some(bi) = cur {
                chain.push(bi);
                cur = tree.blocks[bi].parent;
            }
            chain.sort_unstable();
            assert_eq!(
                containing, chain,
                "seed {seed} line {line}: containing set is not one chain"
            );
        }
    }
}

#[test]
fn block_spans_nest_strictly() {
    let gen = generate(8675309);
    let file = SourceFile::scan(Path::new("crates/math/src/generated.rs"), &gen.src);
    let blocks = &file.block_tree().blocks;
    for (i, a) in blocks.iter().enumerate() {
        assert!(a.start < a.end, "block {i} has an empty or inverted span");
        assert!(
            a.open_line <= a.close_line,
            "block {i} closes before it opens"
        );
        for b in blocks.iter().skip(i + 1) {
            let disjoint = a.end < b.start || b.end < a.start;
            let a_in_b = b.start <= a.start && a.end <= b.end;
            let b_in_a = a.start <= b.start && b.end <= a.end;
            assert!(
                disjoint || a_in_b || b_in_a,
                "blocks {}..{} and {}..{} overlap without nesting",
                a.start,
                a.end,
                b.start,
                b.end
            );
        }
    }
}
