//! CLI driver: `cqm-analyze [--deny-all] [--list] [--format FMT] [--root DIR] [PATH...]`
//!
//! With no `PATH` arguments the tool walks `crates/*/src` under the root
//! (default: the current directory, or the nearest ancestor containing
//! `Cargo.toml` with a `crates/` sibling). Findings print one per line as
//! `file:line: [LINT_ID] message`; `--format=json` instead emits one JSON
//! document on stdout (schema `cqm-analyze/report/v1`: `files_scanned`,
//! `deny`, `warn`, `suppressed`, and a `findings` array of
//! `{file, line, lint, level, message}`), keeping the human summary on
//! stderr so the artifact stays machine-parseable.
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cqm_analyze::passes::{default_passes, Level};

fn usage() -> &'static str {
    "usage: cqm-analyze [--deny-all] [--list] [--format FMT] [--root DIR] [PATH...]\n\
     \n\
     --deny-all     treat warn-level findings as errors (CI mode)\n\
     --list         list the lint passes and exit\n\
     --format FMT   output format: text (default) or json\n\
     --root DIR     workspace root to scan when no PATHs are given\n\
     PATH...        files or directories to scan instead of crates/*/src"
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut list = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--list" => list = true,
            "--format" | "--format=text" | "--format=json" => {
                let fmt = match arg.strip_prefix("--format=") {
                    Some(inline) => inline.to_string(),
                    None => match argv.next() {
                        Some(next) => next,
                        None => {
                            eprintln!("error: --format needs `text` or `json`\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                };
                match fmt.as_str() {
                    "text" => json = false,
                    "json" => json = true,
                    other => {
                        eprintln!("error: unknown format `{other}`\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => match argv.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let passes = default_passes();
    if list {
        for p in &passes {
            println!("{:20} {}", p.id(), p.description());
        }
        // Driver-owned integrity checks: not passes, cannot be suppressed.
        println!(
            "{:20} {}",
            "PRAGMA", "malformed or unknown-id suppression pragmas (driver check)"
        );
        println!(
            "{:20} {}",
            "STALE_SUPPRESS", "well-formed pragmas whose lint no longer fires (driver check)"
        );
        return ExitCode::SUCCESS;
    }

    if paths.is_empty() {
        let root = root.unwrap_or_else(|| PathBuf::from("."));
        let crates_dir = root.join("crates");
        match std::fs::read_dir(&crates_dir) {
            Ok(entries) => {
                for entry in entries.flatten() {
                    let src = entry.path().join("src");
                    if src.is_dir() {
                        paths.push(src);
                    }
                }
                paths.sort();
            }
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", crates_dir.display());
                return ExitCode::from(2);
            }
        }
        if paths.is_empty() {
            eprintln!("error: no crates/*/src directories under {}", root.display());
            return ExitCode::from(2);
        }
    }

    let report = match cqm_analyze::run(&paths, &passes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            let tag = match f.level {
                Level::Deny => "",
                Level::Warn => if deny_all { "" } else { " (warn)" },
            };
            println!("{f}{tag}");
        }
    }

    let failed = report.failed(deny_all);
    eprintln!(
        "cqm-analyze: {} file(s), {} deny, {} warn, {} suppressed -> {}",
        report.files_scanned,
        report.deny_count(),
        report.warn_count(),
        report.suppressed,
        if failed { "FAIL" } else { "ok" }
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
