//! Line/token scanner: the string-level "lexer" the lint passes run on.
//!
//! Rust source is reduced to a *code view* in which comments and the
//! contents of string/char literals are blanked out (replaced by spaces, so
//! byte columns still line up with the original text). Passes match
//! patterns against the code view and therefore never fire on text inside
//! comments, doc comments, or string literals.
//!
//! The scanner also extracts:
//! * suppression pragmas — `// lint: allow(LINT_ID) -- reason` (see
//!   [`Pragma`]); the reason text is mandatory;
//! * test regions — bodies of `#[cfg(test)]` modules and `#[test]`
//!   functions, so passes can skip test code;
//! * per-line brace depth, which passes use to recover function spans.

use std::fmt;
use std::path::{Path, PathBuf};

/// Scope of a suppression pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// Applies to one source line (the pragma's own line, or the next code
    /// line when the pragma stands alone).
    Line,
    /// Applies to the whole file.
    File,
}

/// A parsed `// lint: allow(...) -- reason` suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Lint ids being allowed (uppercase, e.g. `PANIC_IN_LIB`).
    pub lint_ids: Vec<String>,
    /// Line or file scope.
    pub scope: PragmaScope,
    /// Mandatory justification text after `--`.
    pub reason: String,
    /// 1-based line the pragma was written on.
    pub line: usize,
    /// 1-based line the pragma suppresses (for line scope).
    pub target_line: usize,
}

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code view: original text with comments and literal contents blanked.
    pub code: String,
    /// Whether the line lies inside a `#[cfg(test)]` module or `#[test]` fn.
    pub in_test: bool,
    /// Brace depth at the *start* of the line.
    pub depth_at_start: i32,
}

/// A fully scanned file, ready for lint passes.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path as given to [`SourceFile::scan`].
    pub path: PathBuf,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// All pragmas found in the file (both scopes).
    pub pragmas: Vec<Pragma>,
    /// Pragmas that failed to parse (missing reason, bad syntax): reported
    /// as findings by the driver so suppressions can never be silent.
    pub malformed_pragmas: Vec<(usize, String)>,
    /// File tags from `// analyze: <tag>` marker comments (e.g. `hot-path`),
    /// used by passes that only apply to opted-in files.
    pub tags: Vec<String>,
}

impl SourceFile {
    /// Scan `text` as the contents of `path`.
    pub fn scan(path: &Path, text: &str) -> SourceFile {
        Scanner::new(text).run(path)
    }

    /// Whether the file carries a `// analyze: <tag>` marker.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// Whether `lint_id` is suppressed on 1-based `line`.
    pub fn is_allowed(&self, lint_id: &str, line: usize) -> bool {
        self.pragmas.iter().any(|p| {
            p.lint_ids.iter().any(|id| id == lint_id)
                && match p.scope {
                    PragmaScope::File => true,
                    PragmaScope::Line => p.target_line == line,
                }
        })
    }

    /// The code view of 1-based `line` (empty string when out of range).
    pub fn code(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.code.as_str())
            .unwrap_or("")
    }

    /// Whole-file code view joined with `\n` — for matching multi-line
    /// patterns. Byte offsets map back to lines via [`SourceFile::line_of`].
    pub fn joined_code(&self) -> String {
        let mut s = String::new();
        for l in &self.lines {
            s.push_str(&l.code);
            s.push('\n');
        }
        s
    }

    /// Map a byte offset in [`SourceFile::joined_code`] to a 1-based line.
    pub fn line_of(&self, joined_offset: usize) -> usize {
        let mut offset = joined_offset;
        for (i, l) in self.lines.iter().enumerate() {
            if offset <= l.code.len() {
                return i + 1;
            }
            offset -= l.code.len() + 1;
        }
        self.lines.len().max(1)
    }
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} lines)", self.path.display(), self.lines.len())
    }
}

struct Scanner<'a> {
    chars: Vec<char>,
    text: &'a str,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner {
            chars: text.chars().collect(),
            text,
        }
    }

    fn run(self, path: &Path) -> SourceFile {
        // Pass 1: build the code view character by character.
        let mut code_lines: Vec<String> = Vec::new();
        let mut current = String::new();
        let mut comment_lines: Vec<String> = Vec::new();
        let mut current_comment = String::new();

        let mut mode = Mode::Code;
        let n = self.chars.len();
        let mut i = 0;
        while i < n {
            // lint: allow(PANIC_IN_LIB) -- i < n is the loop guard one line up
            let c = self.chars[i];
            let next = self.chars.get(i + 1).copied();
            if c == '\n' {
                if mode == Mode::LineComment {
                    mode = Mode::Code;
                }
                code_lines.push(std::mem::take(&mut current));
                comment_lines.push(std::mem::take(&mut current_comment));
                i += 1;
                continue;
            }
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        current_comment.push_str("//");
                        current.push(' ');
                        current.push(' ');
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        current.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Str;
                        current.push('"');
                        i += 1;
                    }
                    'r' | 'b' => match self.raw_string_hashes(i) {
                        Some((prefix_len, hashes)) => {
                            mode = Mode::RawStr(hashes);
                            for _ in 0..prefix_len {
                                current.push(' ');
                            }
                            current.push('"');
                            i += prefix_len + 1;
                        }
                        None => {
                            current.push(c);
                            i += 1;
                        }
                    },
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                        if self.is_char_literal(i) {
                            mode = Mode::Char;
                            current.push('\'');
                        } else {
                            current.push('\'');
                        }
                        i += 1;
                    }
                    c => {
                        current.push(c);
                        i += 1;
                    }
                },
                Mode::LineComment => {
                    current_comment.push(c);
                    current.push(' ');
                    i += 1;
                }
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::BlockComment(depth - 1);
                        }
                        current.push_str("  ");
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        current.push_str("  ");
                        i += 2;
                    } else {
                        current.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        if next == Some('\n') {
                            // Line-continuation escape: keep the newline so
                            // line numbering stays aligned.
                            current.push(' ');
                            i += 1;
                        } else {
                            current.push_str("  ");
                            i += 2;
                        }
                    } else if c == '"' {
                        mode = Mode::Code;
                        current.push('"');
                        i += 1;
                    } else {
                        current.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' && self.followed_by_hashes(i + 1, hashes) {
                        mode = Mode::Code;
                        current.push('"');
                        for _ in 0..hashes {
                            current.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        current.push(' ');
                        i += 1;
                    }
                }
                Mode::Char => {
                    if c == '\\' {
                        current.push_str("  ");
                        i += 2;
                    } else if c == '\'' {
                        mode = Mode::Code;
                        current.push('\'');
                        i += 1;
                    } else {
                        current.push(' ');
                        i += 1;
                    }
                }
            }
        }
        if !current.is_empty() || !current_comment.is_empty() || self.text.ends_with('\n') {
            code_lines.push(current);
            comment_lines.push(current_comment);
        }
        // A trailing newline creates a phantom empty last line; drop it so
        // line counts match editors.
        if self.text.ends_with('\n') {
            if let Some(last) = code_lines.last() {
                if last.trim().is_empty() {
                    code_lines.pop();
                    comment_lines.pop();
                }
            }
        }

        // Pass 2: brace depth + test regions.
        let mut lines = Vec::with_capacity(code_lines.len());
        let mut depth: i32 = 0;
        let mut pending_test = false;
        let mut test_region_depth: Option<i32> = None;
        for code in &code_lines {
            let depth_at_start = depth;
            let in_test = test_region_depth.is_some();
            let trimmed = code.trim();
            if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[test]") {
                pending_test = true;
            }
            // A one-line test fn (`#[test]` above `fn t() { ... }`) opens and
            // closes its region within this line; remember that it was ever
            // active so the line still counts as test code.
            let mut entered_test = false;
            for ch in code.chars() {
                match ch {
                    '{' => {
                        if pending_test {
                            // Inside an already-open region the attribute is
                            // satisfied by the region itself; either way the
                            // pending flag must not leak past this brace.
                            if test_region_depth.is_none() {
                                test_region_depth = Some(depth);
                                entered_test = true;
                            }
                            pending_test = false;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if let Some(d) = test_region_depth {
                            if depth <= d {
                                test_region_depth = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
            lines.push(Line {
                code: code.clone(),
                in_test: in_test || test_region_depth.is_some() || entered_test,
                depth_at_start,
            });
        }

        // Pass 3: pragmas and file tags out of the comment view.
        let mut pragmas = Vec::new();
        let mut malformed = Vec::new();
        let mut tags = Vec::new();
        for (idx, comment) in comment_lines.iter().enumerate() {
            let lineno = idx + 1;
            if let Some(tag) = tag_text(comment) {
                if !tag.is_empty() && !tags.iter().any(|t: &String| t == tag) {
                    tags.push(tag.to_string());
                }
                continue;
            }
            let Some(rest) = pragma_text(comment) else {
                continue;
            };
            match parse_pragma(rest) {
                Ok((ids, scope, reason)) => {
                    // A pragma alone on its line targets the next line;
                    // trailing a code line, it targets that line.
                    // lint: allow(PANIC_IN_LIB) -- code/comment views are built in lockstep, same length
                    let own_line_has_code = !code_lines[idx].trim().is_empty();
                    let target_line = if own_line_has_code { lineno } else { lineno + 1 };
                    pragmas.push(Pragma {
                        lint_ids: ids,
                        scope,
                        reason,
                        line: lineno,
                        target_line,
                    });
                }
                Err(why) => malformed.push((lineno, why)),
            }
        }

        SourceFile {
            path: path.to_path_buf(),
            lines,
            pragmas,
            malformed_pragmas: malformed,
            tags,
        }
    }

    /// If position `i` starts a raw (byte) string: (prefix length before the
    /// opening quote, number of hashes).
    fn raw_string_hashes(&self, i: usize) -> Option<(usize, u32)> {
        let mut j = i;
        if self.chars.get(j) == Some(&'b') {
            j += 1;
        }
        if self.chars.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
        let mut hashes = 0u32;
        while self.chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if self.chars.get(j) == Some(&'"') {
            Some((j - i, hashes))
        } else {
            None
        }
    }

    fn followed_by_hashes(&self, i: usize, hashes: u32) -> bool {
        (0..hashes as usize).all(|k| self.chars.get(i + k) == Some(&'#'))
    }

    /// Distinguish `'a` (lifetime) from `'x'` / `'\n'` (char literal) at the
    /// `'` in position `i`.
    fn is_char_literal(&self, i: usize) -> bool {
        match self.chars.get(i + 1) {
            Some('\\') => true,
            Some(_) => self.chars.get(i + 2) == Some(&'\''),
            None => false,
        }
    }
}

/// Extract pragma text from one line of the comment view: the comment must
/// *begin* with `lint:` (after the `//`), so prose that merely quotes the
/// pragma syntax — like this doc comment — is not itself a pragma.
fn pragma_text(comment_line: &str) -> Option<&str> {
    let t = comment_line.trim_start().strip_prefix("//")?;
    let t = t.trim_start_matches('/');
    let t = t.strip_prefix('!').unwrap_or(t);
    Some(t.trim_start().strip_prefix("lint:")?.trim())
}

/// Extract a file tag from one line of the comment view: the comment must
/// *begin* with `analyze:` (after the `//`) — e.g. `// analyze: hot-path`.
fn tag_text(comment_line: &str) -> Option<&str> {
    let t = comment_line.trim_start().strip_prefix("//")?;
    let t = t.trim_start_matches('/');
    let t = t.strip_prefix('!').unwrap_or(t);
    Some(t.trim_start().strip_prefix("analyze:")?.trim())
}

/// Parse the text after `lint:` — `allow(ID[, ID...][, file]) -- reason`.
fn parse_pragma(rest: &str) -> Result<(Vec<String>, PragmaScope, String), String> {
    let rest = rest.trim();
    let Some(args_start) = rest.strip_prefix("allow") else {
        return Err(format!("expected `allow(...)` after `lint:`, got `{rest}`"));
    };
    let args_start = args_start.trim_start();
    let Some(inner_and_tail) = args_start.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = inner_and_tail.find(')') else {
        return Err("unclosed `allow(` pragma".to_string());
    };
    let inner = &inner_and_tail[..close];
    let tail = inner_and_tail[close + 1..].trim();

    let mut ids = Vec::new();
    let mut scope = PragmaScope::Line;
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if part == "file" {
            scope = PragmaScope::File;
        } else if part.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
            ids.push(part.to_string());
        } else {
            return Err(format!("bad lint id `{part}` in pragma"));
        }
    }
    if ids.is_empty() {
        return Err("pragma allows no lint ids".to_string());
    }
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("pragma is missing the mandatory `-- reason` text".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("pragma reason must not be empty".to_string());
    }
    Ok((ids, scope, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan(Path::new("test.rs"), text)
    }

    #[test]
    fn strips_comments_and_strings() {
        let f = scan("let x = \"a.unwrap()\"; // trailing unwrap()\nlet y = 1;\n");
        assert!(!f.code(1).contains("unwrap"));
        assert!(f.code(1).contains("let x ="));
        assert_eq!(f.code(2).trim(), "let y = 1;");
    }

    #[test]
    fn strips_block_comments_nested() {
        let f = scan("a /* x /* y */ z */ b\nc\n");
        assert_eq!(f.code(1).replace(' ', ""), "ab");
        assert_eq!(f.code(2).trim(), "c");
    }

    #[test]
    fn multiline_block_comment() {
        let f = scan("fn f() {}\n/* comment with unwrap()\nstill comment */\nfn g() {}\n");
        assert!(!f.joined_code().contains("unwrap"));
        assert!(f.code(4).contains("fn g"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = scan("let s = r#\"panic!(\"inner\")\"#;\nlet c = '\\'';\nlet l: &'static str = \"x\";\n");
        assert!(!f.joined_code().contains("panic!"));
        assert!(f.code(3).contains("&'static str"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let f = scan("fn f<'a>(x: &'a [f64]) -> &'a f64 { &x[0] }\n");
        assert!(f.code(1).contains("&x[0]"));
    }

    #[test]
    fn test_region_detection() {
        let src = "\
pub fn real() {}
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() { real(); }
}
pub fn after() {}
";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside test mod");
        assert!(f.lines[5].in_test, "inside test fn");
        assert!(!f.lines[7].in_test, "after test mod");
    }

    #[test]
    fn pragma_line_and_file_scope() {
        let src = "\
// lint: allow(PANIC_IN_LIB, file) -- kernel indexing is bounds-checked at entry
fn f() {
    x.unwrap(); // lint: allow(PANIC_IN_LIB) -- invariant: x was just inserted
    // lint: allow(NAN_UNSAFE_CMP) -- sorted input is finite by construction
    y.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
";
        let f = scan(src);
        assert_eq!(f.pragmas.len(), 3);
        assert!(f.is_allowed("PANIC_IN_LIB", 3));
        assert!(f.is_allowed("PANIC_IN_LIB", 999), "file scope covers all");
        assert!(f.is_allowed("NAN_UNSAFE_CMP", 5), "standalone targets next line");
        assert!(!f.is_allowed("NAN_UNSAFE_CMP", 3));
        assert!(f.malformed_pragmas.is_empty());
    }

    #[test]
    fn pragma_without_reason_is_malformed() {
        let f = scan("x.unwrap(); // lint: allow(PANIC_IN_LIB)\n");
        assert!(f.pragmas.is_empty());
        assert_eq!(f.malformed_pragmas.len(), 1);
        let f = scan("x.unwrap(); // lint: allow(PANIC_IN_LIB) --   \n");
        assert_eq!(f.malformed_pragmas.len(), 1);
    }

    #[test]
    fn file_tags_are_collected() {
        let f = scan("// analyze: hot-path\n// analyze: hot-path\nfn f() {}\n");
        assert_eq!(f.tags, vec!["hot-path".to_string()], "deduplicated");
        assert!(f.has_tag("hot-path"));
        assert!(!f.has_tag("cold-path"));
        assert!(f.malformed_pragmas.is_empty(), "tags are not pragmas");

        let f = scan("// prose mentioning analyze: hot-path mid-comment\nfn f() {}\n");
        assert!(f.tags.is_empty(), "tag must begin the comment");
    }

    #[test]
    fn joined_code_line_mapping() {
        let f = scan("aaa\nbbb\nccc\n");
        let joined = f.joined_code();
        let off = joined.find("ccc").unwrap();
        assert_eq!(f.line_of(off), 3);
    }

    #[test]
    fn depth_tracking() {
        let f = scan("fn f() {\n    if x {\n        y();\n    }\n}\n");
        assert_eq!(f.lines[0].depth_at_start, 0);
        assert_eq!(f.lines[2].depth_at_start, 2);
        assert_eq!(f.lines[4].depth_at_start, 1);
    }
}
