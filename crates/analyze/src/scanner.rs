//! Line/token scanner: the string-level "lexer" the lint passes run on.
//!
//! Rust source is reduced to a *code view* in which comments and the
//! contents of string/char literals are blanked out (replaced by spaces, so
//! byte columns still line up with the original text). Passes match
//! patterns against the code view and therefore never fire on text inside
//! comments, doc comments, or string literals.
//!
//! The scanner also extracts:
//! * suppression pragmas — `// lint: allow(LINT_ID) -- reason` (see
//!   [`Pragma`]); the reason text is mandatory;
//! * test regions — bodies of `#[cfg(test)]` modules and `#[test]`
//!   functions, so passes can skip test code;
//! * per-line brace depth, which passes use to recover function spans;
//! * the **block tree** ([`BlockTree`]): every `{…}` span in the code view,
//!   paired and nested, classified as `fn`/`impl`/closure/loop/… so passes
//!   can reason about *what happens while a binding is live* instead of
//!   matching single lines.

use std::fmt;
use std::path::{Path, PathBuf};

/// Scope of a suppression pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// Applies to one source line (the pragma's own line, or the next code
    /// line when the pragma stands alone).
    Line,
    /// Applies to the whole file.
    File,
}

/// A parsed `// lint: allow(...) -- reason` suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Lint ids being allowed (uppercase, e.g. `PANIC_IN_LIB`).
    pub lint_ids: Vec<String>,
    /// Line or file scope.
    pub scope: PragmaScope,
    /// Mandatory justification text after `--`.
    pub reason: String,
    /// 1-based line the pragma was written on.
    pub line: usize,
    /// 1-based line the pragma suppresses (for line scope).
    pub target_line: usize,
}

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code view: original text with comments and literal contents blanked.
    pub code: String,
    /// Whether the line lies inside a `#[cfg(test)]` module or `#[test]` fn.
    pub in_test: bool,
    /// Brace depth at the *start* of the line.
    pub depth_at_start: i32,
}

/// What kind of construct a `{…}` block belongs to, judged from its header
/// (the code between the previous statement boundary and the opening brace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `fn name(...) {` — free function or method body.
    Fn,
    /// `impl Type {` / `impl Trait for Type {`.
    Impl,
    /// `trait Name {`.
    Trait,
    /// `mod name {`.
    Mod,
    /// `for … in … {`, `while … {`, `loop {` body.
    Loop,
    /// `match … {` arms.
    Match,
    /// Closure body: header ends in `|` or `| -> Type`.
    Closure,
    /// Anything else: `if`/`else`, bare scopes, struct literals, arms.
    Plain,
}

/// One brace-delimited span in the code view.
///
/// Offsets index into [`SourceFile::joined_code`]; `start` is the byte of
/// the opening `{`, `end` the byte of the closing `}` (or the end of the
/// file when the brace is unclosed). A block *contains* an offset `o` when
/// `start < o < end` — the braces themselves belong to the block, the
/// header does not.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the parent block in [`BlockTree::blocks`], `None` at top level.
    pub parent: Option<usize>,
    /// Construct kind, judged from the header text.
    pub kind: BlockKind,
    /// Byte offset of the opening `{` in the joined code view.
    pub start: usize,
    /// Byte offset of the closing `}` (or file end when unclosed).
    pub end: usize,
    /// 1-based line of the opening brace.
    pub open_line: usize,
    /// 1-based line of the closing brace.
    pub close_line: usize,
    /// Byte range of the header text in the joined view: from the previous
    /// `;`/`{`/`}` boundary up to (not including) the opening brace.
    pub header: (usize, usize),
}

impl Block {
    /// Whether this block's span contains the joined-view byte `offset`.
    /// The braces themselves count as inside; the header does not.
    pub fn contains(&self, offset: usize) -> bool {
        self.start <= offset && offset <= self.end
    }

    /// The interior span (between, not including, the braces).
    pub fn body(&self) -> (usize, usize) {
        (self.start + 1, self.end)
    }
}

/// All brace-paired blocks of a file, in opening order.
#[derive(Debug, Clone, Default)]
pub struct BlockTree {
    /// Blocks ordered by `start`; children always follow their parent.
    pub blocks: Vec<Block>,
}

impl BlockTree {
    /// Innermost block whose span contains joined-view byte `offset`
    /// (braces inclusive), as an index into [`BlockTree::blocks`].
    pub fn enclosing_at(&self, offset: usize) -> Option<usize> {
        // Blocks nest strictly, so among all containing blocks the one that
        // opened last is the innermost.
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.contains(offset) && best.map(|(_, s)| s < b.start).unwrap_or(true) {
                best = Some((i, b.start));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Walk `start` and its ancestors until a block of `kind` is found.
    pub fn ancestor_of_kind(&self, start: usize, kind: BlockKind) -> Option<usize> {
        let mut cur = Some(start);
        while let Some(i) = cur {
            let b = self.blocks.get(i)?;
            if b.kind == kind {
                return Some(i);
            }
            cur = b.parent;
        }
        None
    }
}

/// Build the block tree from the joined code view.
///
/// Headers run from the previous statement boundary (`;`, `{`, `}`) to the
/// opening brace; classification looks for construct keywords at word
/// boundaries inside that header. Known limit, shared with the flat model
/// this replaces: a closure literal with braces *inside a loop header*
/// (`for x in ys.map(|y| { … }) {`) cuts the header at the closure's `}`,
/// so the outer loop is classified from the truncated text.
fn build_block_tree(joined: &str) -> BlockTree {
    let bytes = joined.as_bytes();
    let mut blocks: Vec<Block> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut boundary = 0usize; // just past the last `;`, `{` or `}`
    let mut line = 1usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\n' => line += 1,
            b';' => boundary = i + 1,
            b'{' => {
                let header = (boundary, i);
                let kind = classify_header(&joined[header.0..header.1]);
                blocks.push(Block {
                    parent: stack.last().copied(),
                    kind,
                    start: i,
                    end: joined.len(),
                    open_line: line,
                    close_line: 0,
                    header,
                });
                stack.push(blocks.len() - 1);
                boundary = i + 1;
            }
            b'}' => {
                if let Some(blk) = stack.pop().and_then(|idx| blocks.get_mut(idx)) {
                    blk.end = i;
                    blk.close_line = line;
                }
                boundary = i + 1;
            }
            _ => {}
        }
    }
    // Unclosed blocks (truncated input) end at EOF. The joined view always
    // ends in `\n`, so the line counter sits one past the last real line.
    let eof_line = if joined.ends_with('\n') {
        (line - 1).max(1)
    } else {
        line
    };
    for idx in stack {
        if let Some(blk) = blocks.get_mut(idx) {
            blk.close_line = eof_line;
        }
    }
    BlockTree { blocks }
}

/// Classify a block header. Priority order matters: a method inside an
/// `impl` block has `fn` in its own header, and a closure argument at the
/// end of a header outranks the call it is passed to.
fn classify_header(header: &str) -> BlockKind {
    let t = header.trim_end();
    // `|args| {` or `|args| -> T {`: closure body.
    if t.ends_with('|') {
        return BlockKind::Closure;
    }
    if let Some(arrow) = t.rfind("->") {
        if t[..arrow].trim_end().ends_with('|') {
            return BlockKind::Closure;
        }
    }
    if has_keyword(header, "fn") {
        return BlockKind::Fn;
    }
    if has_keyword(header, "impl") {
        return BlockKind::Impl;
    }
    if has_keyword(header, "trait") {
        return BlockKind::Trait;
    }
    if has_keyword(header, "mod") {
        return BlockKind::Mod;
    }
    if has_keyword(header, "while") || (has_keyword(header, "for") && header.contains(" in ")) {
        return BlockKind::Loop;
    }
    if has_keyword(header, "loop") && {
        let after = &header[header.rfind("loop").map(|p| p + 4).unwrap_or(0)..];
        after.trim().is_empty()
    } {
        return BlockKind::Loop;
    }
    if has_keyword(header, "match") {
        return BlockKind::Match;
    }
    BlockKind::Plain
}

/// Whether `word` occurs in `text` delimited by non-identifier characters.
fn has_keyword(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = text[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0
            || !text[..pos]
                .chars()
                .next_back()
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false);
        let after = pos + word.len();
        let after_ok = !text[after..]
            .chars()
            .next()
            .map(|c| c.is_alphanumeric() || c == '_')
            .unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        from = after;
    }
    false
}

/// A fully scanned file, ready for lint passes.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path as given to [`SourceFile::scan`].
    pub path: PathBuf,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// All pragmas found in the file (both scopes).
    pub pragmas: Vec<Pragma>,
    /// Pragmas that failed to parse (missing reason, bad syntax): reported
    /// as findings by the driver so suppressions can never be silent.
    pub malformed_pragmas: Vec<(usize, String)>,
    /// File tags from `// analyze: <tag>` marker comments (e.g. `hot-path`),
    /// used by passes that only apply to opted-in files.
    pub tags: Vec<String>,
    /// Whole-file code view, lines joined with `\n` (precomputed).
    joined: String,
    /// Byte offset in `joined` where each line starts; index 0 = line 1.
    line_starts: Vec<usize>,
    /// Brace-paired block spans over `joined`.
    tree: BlockTree,
}

impl SourceFile {
    /// Scan `text` as the contents of `path`.
    pub fn scan(path: &Path, text: &str) -> SourceFile {
        Scanner::new(text).run(path)
    }

    /// Whether the file carries a `// analyze: <tag>` marker.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// Whether `lint_id` is suppressed on 1-based `line`.
    pub fn is_allowed(&self, lint_id: &str, line: usize) -> bool {
        self.suppression(lint_id, line).is_some()
    }

    /// Index into [`SourceFile::pragmas`] of the pragma suppressing
    /// `lint_id` on 1-based `line`, if any. The driver uses the index to
    /// track which pragmas actually fired (see `STALE_SUPPRESS`).
    pub fn suppression(&self, lint_id: &str, line: usize) -> Option<usize> {
        self.pragmas.iter().position(|p| {
            p.lint_ids.iter().any(|id| id == lint_id)
                && match p.scope {
                    PragmaScope::File => true,
                    PragmaScope::Line => p.target_line == line,
                }
        })
    }

    /// The code view of 1-based `line` (empty string when out of range).
    pub fn code(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.code.as_str())
            .unwrap_or("")
    }

    /// Whole-file code view joined with `\n` — for matching multi-line
    /// patterns. Byte offsets map back to lines via [`SourceFile::line_of`].
    pub fn joined_code(&self) -> &str {
        &self.joined
    }

    /// Map a byte offset in [`SourceFile::joined_code`] to a 1-based line.
    pub fn line_of(&self, joined_offset: usize) -> usize {
        match self.line_starts.binary_search(&joined_offset) {
            Ok(i) => i + 1,
            Err(i) => i.max(1),
        }
    }

    /// Byte offset in [`SourceFile::joined_code`] where 1-based `line`
    /// starts (file end when out of range).
    pub fn offset_of_line(&self, line: usize) -> usize {
        self.line_starts
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(self.joined.len())
    }

    /// The brace-paired block spans of this file.
    pub fn block_tree(&self) -> &BlockTree {
        &self.tree
    }

    /// Innermost block containing the first code character of 1-based
    /// `line` (index into [`BlockTree::blocks`]). Lines that only *open* a
    /// block (header + `{`) belong to the enclosing block, not the one they
    /// open, because the query is anchored at the line's first character.
    pub fn enclosing_block(&self, line: usize) -> Option<usize> {
        let start = self.offset_of_line(line);
        let code = self.code(line);
        let lead = code.len() - code.trim_start().len();
        self.tree.enclosing_at(start + lead)
    }

    /// Whether the joined-view byte `span` contains a call of `pat` — the
    /// pattern followed by `(`, at an identifier boundary on the left.
    /// `pat` may itself end in `(` or a full call shape like `.recv()`.
    pub fn span_contains_call(&self, span: (usize, usize), pat: &str) -> bool {
        let (lo, hi) = (span.0.min(self.joined.len()), span.1.min(self.joined.len()));
        if lo >= hi {
            return false;
        }
        let hay = &self.joined[lo..hi];
        let mut from = 0;
        while let Some(rel) = hay[from..].find(pat) {
            let pos = from + rel;
            // A leading `.` is its own boundary (method-call pattern).
            let boundary = pat.starts_with('.') || pos == 0 || {
                let prev = hay.as_bytes()[pos - 1] as char;
                !(prev.is_alphanumeric() || prev == '_')
            };
            let called = pat.ends_with('(')
                || pat.ends_with(')')
                || hay[pos + pat.len()..].starts_with('(');
            if boundary && called {
                return true;
            }
            from = pos + pat.len();
        }
        false
    }
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} lines)", self.path.display(), self.lines.len())
    }
}

struct Scanner<'a> {
    chars: Vec<char>,
    text: &'a str,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner {
            chars: text.chars().collect(),
            text,
        }
    }

    fn run(self, path: &Path) -> SourceFile {
        // Pass 1: build the code view character by character.
        let mut code_lines: Vec<String> = Vec::new();
        let mut current = String::new();
        let mut comment_lines: Vec<String> = Vec::new();
        let mut current_comment = String::new();

        let mut mode = Mode::Code;
        let n = self.chars.len();
        let mut i = 0;
        while i < n {
            // lint: allow(PANIC_IN_LIB) -- i < n is the loop guard one line up
            let c = self.chars[i];
            let next = self.chars.get(i + 1).copied();
            if c == '\n' {
                if mode == Mode::LineComment {
                    mode = Mode::Code;
                }
                code_lines.push(std::mem::take(&mut current));
                comment_lines.push(std::mem::take(&mut current_comment));
                i += 1;
                continue;
            }
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        current_comment.push_str("//");
                        current.push(' ');
                        current.push(' ');
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        current.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Str;
                        current.push('"');
                        i += 1;
                    }
                    'r' | 'b' => match self.raw_string_hashes(i) {
                        Some((prefix_len, hashes)) => {
                            mode = Mode::RawStr(hashes);
                            for _ in 0..prefix_len {
                                current.push(' ');
                            }
                            current.push('"');
                            i += prefix_len + 1;
                        }
                        None => {
                            current.push(c);
                            i += 1;
                        }
                    },
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                        if self.is_char_literal(i) {
                            mode = Mode::Char;
                            current.push('\'');
                        } else {
                            current.push('\'');
                        }
                        i += 1;
                    }
                    c => {
                        current.push(c);
                        i += 1;
                    }
                },
                Mode::LineComment => {
                    current_comment.push(c);
                    current.push(' ');
                    i += 1;
                }
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::BlockComment(depth - 1);
                        }
                        current.push_str("  ");
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        current.push_str("  ");
                        i += 2;
                    } else {
                        current.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        if next == Some('\n') {
                            // Line-continuation escape: keep the newline so
                            // line numbering stays aligned.
                            current.push(' ');
                            i += 1;
                        } else {
                            current.push_str("  ");
                            i += 2;
                        }
                    } else if c == '"' {
                        mode = Mode::Code;
                        current.push('"');
                        i += 1;
                    } else {
                        current.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' && self.followed_by_hashes(i + 1, hashes) {
                        mode = Mode::Code;
                        current.push('"');
                        for _ in 0..hashes {
                            current.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        current.push(' ');
                        i += 1;
                    }
                }
                Mode::Char => {
                    if c == '\\' {
                        current.push_str("  ");
                        i += 2;
                    } else if c == '\'' {
                        mode = Mode::Code;
                        current.push('\'');
                        i += 1;
                    } else {
                        current.push(' ');
                        i += 1;
                    }
                }
            }
        }
        if !current.is_empty() || !current_comment.is_empty() || self.text.ends_with('\n') {
            code_lines.push(current);
            comment_lines.push(current_comment);
        }
        // A trailing newline creates a phantom empty last line; drop it so
        // line counts match editors.
        if self.text.ends_with('\n') {
            if let Some(last) = code_lines.last() {
                if last.trim().is_empty() {
                    code_lines.pop();
                    comment_lines.pop();
                }
            }
        }

        // Pass 2: brace depth + test regions.
        let mut lines = Vec::with_capacity(code_lines.len());
        let mut depth: i32 = 0;
        let mut pending_test = false;
        let mut test_region_depth: Option<i32> = None;
        for code in &code_lines {
            let depth_at_start = depth;
            let in_test = test_region_depth.is_some();
            let trimmed = code.trim();
            if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[test]") {
                pending_test = true;
            }
            // A one-line test fn (`#[test]` above `fn t() { ... }`) opens and
            // closes its region within this line; remember that it was ever
            // active so the line still counts as test code.
            let mut entered_test = false;
            for ch in code.chars() {
                match ch {
                    '{' => {
                        if pending_test {
                            // Inside an already-open region the attribute is
                            // satisfied by the region itself; either way the
                            // pending flag must not leak past this brace.
                            if test_region_depth.is_none() {
                                test_region_depth = Some(depth);
                                entered_test = true;
                            }
                            pending_test = false;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if let Some(d) = test_region_depth {
                            if depth <= d {
                                test_region_depth = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
            lines.push(Line {
                code: code.clone(),
                in_test: in_test || test_region_depth.is_some() || entered_test,
                depth_at_start,
            });
        }

        // Pass 3: pragmas and file tags out of the comment view.
        let mut pragmas = Vec::new();
        let mut malformed = Vec::new();
        let mut tags = Vec::new();
        for (idx, comment) in comment_lines.iter().enumerate() {
            let lineno = idx + 1;
            if let Some(tag) = tag_text(comment) {
                if !tag.is_empty() && !tags.iter().any(|t: &String| t == tag) {
                    tags.push(tag.to_string());
                }
                continue;
            }
            let Some(rest) = pragma_text(comment) else {
                continue;
            };
            match parse_pragma(rest) {
                Ok((ids, scope, reason)) => {
                    // A pragma alone on its line targets the next line;
                    // trailing a code line, it targets that line.
                    // lint: allow(PANIC_IN_LIB) -- code/comment views are built in lockstep, same length
                    let own_line_has_code = !code_lines[idx].trim().is_empty();
                    let target_line = if own_line_has_code { lineno } else { lineno + 1 };
                    pragmas.push(Pragma {
                        lint_ids: ids,
                        scope,
                        reason,
                        line: lineno,
                        target_line,
                    });
                }
                Err(why) => malformed.push((lineno, why)),
            }
        }

        // Pass 4: precompute the joined code view, line offsets, block tree.
        let mut joined = String::new();
        let mut line_starts = Vec::with_capacity(lines.len());
        for l in &lines {
            line_starts.push(joined.len());
            joined.push_str(&l.code);
            joined.push('\n');
        }
        let tree = build_block_tree(&joined);

        SourceFile {
            path: path.to_path_buf(),
            lines,
            pragmas,
            malformed_pragmas: malformed,
            tags,
            joined,
            line_starts,
            tree,
        }
    }

    /// If position `i` starts a raw (byte) string: (prefix length before the
    /// opening quote, number of hashes).
    fn raw_string_hashes(&self, i: usize) -> Option<(usize, u32)> {
        let mut j = i;
        if self.chars.get(j) == Some(&'b') {
            j += 1;
        }
        if self.chars.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
        let mut hashes = 0u32;
        while self.chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if self.chars.get(j) == Some(&'"') {
            Some((j - i, hashes))
        } else {
            None
        }
    }

    fn followed_by_hashes(&self, i: usize, hashes: u32) -> bool {
        (0..hashes as usize).all(|k| self.chars.get(i + k) == Some(&'#'))
    }

    /// Distinguish `'a` (lifetime) from `'x'` / `'\n'` (char literal) at the
    /// `'` in position `i`.
    fn is_char_literal(&self, i: usize) -> bool {
        match self.chars.get(i + 1) {
            Some('\\') => true,
            Some(_) => self.chars.get(i + 2) == Some(&'\''),
            None => false,
        }
    }
}

/// Extract pragma text from one line of the comment view: the comment must
/// *begin* with `lint:` (after the `//`), so prose that merely quotes the
/// pragma syntax — like this doc comment — is not itself a pragma.
fn pragma_text(comment_line: &str) -> Option<&str> {
    let t = comment_line.trim_start().strip_prefix("//")?;
    let t = t.trim_start_matches('/');
    let t = t.strip_prefix('!').unwrap_or(t);
    Some(t.trim_start().strip_prefix("lint:")?.trim())
}

/// Extract a file tag from one line of the comment view: the comment must
/// *begin* with `analyze:` (after the `//`) — e.g. `// analyze: hot-path`.
fn tag_text(comment_line: &str) -> Option<&str> {
    let t = comment_line.trim_start().strip_prefix("//")?;
    let t = t.trim_start_matches('/');
    let t = t.strip_prefix('!').unwrap_or(t);
    Some(t.trim_start().strip_prefix("analyze:")?.trim())
}

/// Parse the text after `lint:` — `allow(ID[, ID...][, file]) -- reason`.
fn parse_pragma(rest: &str) -> Result<(Vec<String>, PragmaScope, String), String> {
    let rest = rest.trim();
    let Some(args_start) = rest.strip_prefix("allow") else {
        return Err(format!("expected `allow(...)` after `lint:`, got `{rest}`"));
    };
    let args_start = args_start.trim_start();
    let Some(inner_and_tail) = args_start.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = inner_and_tail.find(')') else {
        return Err("unclosed `allow(` pragma".to_string());
    };
    let inner = &inner_and_tail[..close];
    let tail = inner_and_tail[close + 1..].trim();

    let mut ids = Vec::new();
    let mut scope = PragmaScope::Line;
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if part == "file" {
            scope = PragmaScope::File;
        } else if part.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
            ids.push(part.to_string());
        } else {
            return Err(format!("bad lint id `{part}` in pragma"));
        }
    }
    if ids.is_empty() {
        return Err("pragma allows no lint ids".to_string());
    }
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("pragma is missing the mandatory `-- reason` text".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("pragma reason must not be empty".to_string());
    }
    Ok((ids, scope, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan(Path::new("test.rs"), text)
    }

    #[test]
    fn strips_comments_and_strings() {
        let f = scan("let x = \"a.unwrap()\"; // trailing unwrap()\nlet y = 1;\n");
        assert!(!f.code(1).contains("unwrap"));
        assert!(f.code(1).contains("let x ="));
        assert_eq!(f.code(2).trim(), "let y = 1;");
    }

    #[test]
    fn strips_block_comments_nested() {
        let f = scan("a /* x /* y */ z */ b\nc\n");
        assert_eq!(f.code(1).replace(' ', ""), "ab");
        assert_eq!(f.code(2).trim(), "c");
    }

    #[test]
    fn multiline_block_comment() {
        let f = scan("fn f() {}\n/* comment with unwrap()\nstill comment */\nfn g() {}\n");
        assert!(!f.joined_code().contains("unwrap"));
        assert!(f.code(4).contains("fn g"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = scan("let s = r#\"panic!(\"inner\")\"#;\nlet c = '\\'';\nlet l: &'static str = \"x\";\n");
        assert!(!f.joined_code().contains("panic!"));
        assert!(f.code(3).contains("&'static str"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let f = scan("fn f<'a>(x: &'a [f64]) -> &'a f64 { &x[0] }\n");
        assert!(f.code(1).contains("&x[0]"));
    }

    #[test]
    fn test_region_detection() {
        let src = "\
pub fn real() {}
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() { real(); }
}
pub fn after() {}
";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside test mod");
        assert!(f.lines[5].in_test, "inside test fn");
        assert!(!f.lines[7].in_test, "after test mod");
    }

    #[test]
    fn pragma_line_and_file_scope() {
        let src = "\
// lint: allow(PANIC_IN_LIB, file) -- kernel indexing is bounds-checked at entry
fn f() {
    x.unwrap(); // lint: allow(PANIC_IN_LIB) -- invariant: x was just inserted
    // lint: allow(NAN_UNSAFE_CMP) -- sorted input is finite by construction
    y.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
";
        let f = scan(src);
        assert_eq!(f.pragmas.len(), 3);
        assert!(f.is_allowed("PANIC_IN_LIB", 3));
        assert!(f.is_allowed("PANIC_IN_LIB", 999), "file scope covers all");
        assert!(f.is_allowed("NAN_UNSAFE_CMP", 5), "standalone targets next line");
        assert!(!f.is_allowed("NAN_UNSAFE_CMP", 3));
        assert!(f.malformed_pragmas.is_empty());
    }

    #[test]
    fn pragma_without_reason_is_malformed() {
        let f = scan("x.unwrap(); // lint: allow(PANIC_IN_LIB)\n");
        assert!(f.pragmas.is_empty());
        assert_eq!(f.malformed_pragmas.len(), 1);
        let f = scan("x.unwrap(); // lint: allow(PANIC_IN_LIB) --   \n");
        assert_eq!(f.malformed_pragmas.len(), 1);
    }

    #[test]
    fn file_tags_are_collected() {
        let f = scan("// analyze: hot-path\n// analyze: hot-path\nfn f() {}\n");
        assert_eq!(f.tags, vec!["hot-path".to_string()], "deduplicated");
        assert!(f.has_tag("hot-path"));
        assert!(!f.has_tag("cold-path"));
        assert!(f.malformed_pragmas.is_empty(), "tags are not pragmas");

        let f = scan("// prose mentioning analyze: hot-path mid-comment\nfn f() {}\n");
        assert!(f.tags.is_empty(), "tag must begin the comment");
    }

    #[test]
    fn joined_code_line_mapping() {
        let f = scan("aaa\nbbb\nccc\n");
        let joined = f.joined_code();
        let off = joined.find("ccc").unwrap();
        assert_eq!(f.line_of(off), 3);
    }

    #[test]
    fn depth_tracking() {
        let f = scan("fn f() {\n    if x {\n        y();\n    }\n}\n");
        assert_eq!(f.lines[0].depth_at_start, 0);
        assert_eq!(f.lines[2].depth_at_start, 2);
        assert_eq!(f.lines[4].depth_at_start, 1);
    }

    fn kinds(f: &SourceFile) -> Vec<BlockKind> {
        f.block_tree().blocks.iter().map(|b| b.kind).collect()
    }

    #[test]
    fn block_tree_basic_nesting() {
        let src = "\
mod m {
    impl Foo {
        fn bar(&self) {
            for x in xs {
                match x {
                    _ => {}
                }
            }
        }
    }
}
";
        let f = scan(src);
        assert_eq!(
            kinds(&f),
            vec![
                BlockKind::Mod,
                BlockKind::Impl,
                BlockKind::Fn,
                BlockKind::Loop,
                BlockKind::Match,
                BlockKind::Plain,
            ]
        );
        let t = f.block_tree();
        assert_eq!(t.blocks[0].parent, None);
        assert_eq!(t.blocks[1].parent, Some(0));
        assert_eq!(t.blocks[2].parent, Some(1));
        assert_eq!(t.blocks[3].parent, Some(2));
        // Line 5 (`match x {`) is anchored at `match`, inside the loop body.
        assert_eq!(f.enclosing_block(5), Some(3));
        // Line 6 (`_ => {}`) anchors inside the match.
        assert_eq!(f.enclosing_block(6), Some(4));
        // Fn ancestor from the innermost arm block.
        assert_eq!(t.ancestor_of_kind(5, BlockKind::Fn), Some(2));
    }

    #[test]
    fn block_tree_ignores_braces_in_literals_and_comments() {
        let src = "\
fn f() {
    let a = \"{ not a block }\";
    let b = '{';
    // { also not a block
    /* } nor this { */
    let c = r#\"{ \"raw\" }\"#;
}
";
        let f = scan(src);
        assert_eq!(kinds(&f), vec![BlockKind::Fn]);
        let b = &f.block_tree().blocks[0];
        assert_eq!(b.open_line, 1);
        assert_eq!(b.close_line, 7);
        for line in 2..=6 {
            assert_eq!(f.enclosing_block(line), Some(0), "line {line}");
        }
    }

    #[test]
    fn block_tree_nested_closures() {
        let src = "\
fn f() {
    spawn(move || {
        xs.retain(|x| {
            *x > 0
        });
    });
}
";
        let f = scan(src);
        assert_eq!(
            kinds(&f),
            vec![BlockKind::Fn, BlockKind::Closure, BlockKind::Closure]
        );
        assert_eq!(f.block_tree().blocks[2].parent, Some(1));
        assert_eq!(f.enclosing_block(4), Some(2));
    }

    #[test]
    fn block_tree_closure_with_return_type() {
        let f = scan("fn f() {\n    let g = |x: f64| -> f64 {\n        x\n    };\n}\n");
        assert_eq!(kinds(&f), vec![BlockKind::Fn, BlockKind::Closure]);
    }

    #[test]
    fn block_tree_multibyte_lines() {
        // Multi-byte UTF-8 before and around braces must not skew offsets.
        let src = "fn f() {\n    let s = \"héllo wörld\"; // café ☕\n    if päivä {\n        g();\n    }\n}\n";
        let f = scan(src);
        assert_eq!(kinds(&f), vec![BlockKind::Fn, BlockKind::Plain]);
        let t = f.block_tree();
        assert_eq!(t.blocks[1].open_line, 3);
        assert_eq!(t.blocks[1].close_line, 5);
        assert_eq!(f.enclosing_block(4), Some(1));
        assert_eq!(f.enclosing_block(2), Some(0));
    }

    #[test]
    fn block_tree_loop_variants() {
        let src = "\
fn f() {
    loop {
        break;
    }
    while x < 3 {
        x += 1;
    }
    'outer: for i in 0..n {
        g(i);
    }
}
";
        let f = scan(src);
        assert_eq!(
            kinds(&f),
            vec![BlockKind::Fn, BlockKind::Loop, BlockKind::Loop, BlockKind::Loop]
        );
    }

    #[test]
    fn block_tree_struct_literal_is_plain() {
        let f = scan("fn f() -> P {\n    P { x: 1, y: 2 }\n}\n");
        assert_eq!(kinds(&f), vec![BlockKind::Fn, BlockKind::Plain]);
    }

    #[test]
    fn block_tree_unclosed_block_ends_at_eof() {
        let f = scan("fn f() {\n    g();\n");
        let t = f.block_tree();
        assert_eq!(t.blocks.len(), 1);
        assert_eq!(t.blocks[0].close_line, f.lines.len());
        assert_eq!(f.enclosing_block(2), Some(0));
    }

    #[test]
    fn span_contains_call_queries() {
        let f = scan("fn f() {\n    rx.recv().unwrap();\n    let sleepy = 1;\n}\n");
        let t = f.block_tree();
        let span = t.blocks[0].body();
        assert!(f.span_contains_call(span, ".recv()"));
        assert!(f.span_contains_call(span, "recv"));
        assert!(f.span_contains_call(span, "unwrap"));
        assert!(!f.span_contains_call(span, "sleep"), "`sleepy` is not a call");
        assert!(!f.span_contains_call((0, 4), "recv"), "outside the span");
    }

    #[test]
    fn header_ranges_cover_the_signature() {
        let f = scan("impl Foo {\n    pub fn bar(\n        &self,\n    ) -> u8 {\n        0\n    }\n}\n");
        let t = f.block_tree();
        assert_eq!(t.blocks.len(), 2);
        let (h0, h1) = t.blocks[1].header;
        let header = &f.joined_code()[h0..h1];
        assert!(header.contains("pub fn bar"), "header = {header:?}");
        assert!(header.contains("-> u8"), "multi-line header survives");
        assert_eq!(t.blocks[1].kind, BlockKind::Fn);
    }
}
