//! `cqm-analyze` — std-only static analysis for the CQM workspace.
//!
//! The numeric pipeline (quality measure → fusion → appliance control) has
//! integrity invariants that `rustc` cannot see: NaN-stable orderings,
//! panic-free inference paths, domain guards on numeric entry points, and a
//! single construction site for the quality value `q ∈ [0,1] ∪ {ε}`. This
//! crate enforces them as composable [`passes::LintPass`] passes over a
//! hand-rolled scanner ([`scanner::SourceFile`]) — no `syn`, no external
//! dependencies, so it runs in the same no-network environment as the rest
//! of the workspace.
//!
//! The `cqm-analyze` binary walks `crates/*/src`, prints findings as
//! `file:line: [LINT_ID] message`, and exits nonzero when any deny-level
//! finding (or, under `--deny-all`, any finding at all) survives the
//! suppression pragmas. Suppressions are never silent: each pragma must
//! carry `-- reason` text, and malformed pragmas are themselves findings.

pub mod passes;
pub mod scanner;

use std::fs;
use std::path::{Path, PathBuf};

use passes::{Finding, Level, LintPass};
use scanner::SourceFile;

/// Result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings at [`Level::Deny`].
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.level == Level::Deny).count()
    }

    /// Findings at [`Level::Warn`].
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }

    /// Whether the run fails: deny findings always do; warn findings only
    /// under `deny_all`.
    pub fn failed(&self, deny_all: bool) -> bool {
        self.deny_count() > 0 || (deny_all && !self.findings.is_empty())
    }
}

/// Recursively collect `.rs` files under `root` (or `root` itself if it is
/// a file), sorted for deterministic output. `target/` directories are
/// skipped.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect_into(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_into(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(path)? {
        let entry = entry?;
        let p = entry.path();
        let name = entry.file_name();
        if p.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_into(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Analyze one already-scanned file with `passes`, including the
/// pragma-integrity checks the driver owns: malformed pragmas and pragmas
/// naming unknown lint ids are deny-level findings, so a typo can never
/// silently disable a lint.
pub fn analyze_file(file: &SourceFile, passes: &[Box<dyn LintPass>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pass in passes {
        pass.check(file, &mut findings);
    }
    for (line, text) in &file.malformed_pragmas {
        findings.push(Finding {
            file: file.path.clone(),
            line: *line,
            lint: "PRAGMA",
            message: format!("malformed suppression pragma ({text}); syntax is \
                              `// lint: allow(LINT_ID[, LINT_ID][, file]) -- reason` \
                              and the reason is mandatory"),
            level: Level::Deny,
        });
    }
    for pragma in &file.pragmas {
        for id in &pragma.lint_ids {
            if !passes.iter().any(|p| p.id() == id) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: pragma.line,
                    lint: "PRAGMA",
                    message: format!("pragma allows unknown lint id `{id}`"),
                    level: Level::Deny,
                });
            }
        }
    }
    findings
}

/// Run `passes` over every `.rs` file reachable from `roots`.
///
/// # Errors
///
/// Returns the first I/O error encountered while walking or reading.
pub fn run(roots: &[PathBuf], passes: &[Box<dyn LintPass>]) -> std::io::Result<Report> {
    let mut report = Report::default();
    for root in roots {
        for path in collect_rs_files(root)? {
            let text = fs::read_to_string(&path)?;
            let file = SourceFile::scan(&path, &text);
            report.findings.extend(analyze_file(&file, passes));
            report.files_scanned += 1;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use passes::default_passes;

    fn analyze_src(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("crates/x/src/t.rs"), src);
        analyze_file(&file, &default_passes())
    }

    #[test]
    fn malformed_pragma_is_a_deny_finding() {
        let f = analyze_src("// lint: allow(PANIC_IN_LIB)\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "PRAGMA");
        assert_eq!(f[0].level, Level::Deny);
    }

    #[test]
    fn unknown_lint_id_is_a_deny_finding() {
        let f = analyze_src("// lint: allow(NO_SUCH_LINT) -- oops\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("NO_SUCH_LINT"));
    }

    #[test]
    fn clean_file_has_no_findings() {
        let f = analyze_src(
            "pub fn pick(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn report_fail_logic() {
        let mut r = Report::default();
        assert!(!r.failed(false) && !r.failed(true));
        r.findings.push(Finding {
            file: PathBuf::from("a.rs"),
            line: 1,
            lint: "X",
            message: String::new(),
            level: Level::Warn,
        });
        assert!(!r.failed(false));
        assert!(r.failed(true));
        r.findings.push(Finding {
            file: PathBuf::from("a.rs"),
            line: 2,
            lint: "X",
            message: String::new(),
            level: Level::Deny,
        });
        assert!(r.failed(false));
    }
}
