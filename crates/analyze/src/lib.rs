//! `cqm-analyze` — std-only static analysis for the CQM workspace.
//!
//! The numeric pipeline (quality measure → fusion → appliance control) has
//! integrity invariants that `rustc` cannot see: NaN-stable orderings,
//! panic-free inference paths, domain guards on numeric entry points, and a
//! single construction site for the quality value `q ∈ [0,1] ∪ {ε}`. This
//! crate enforces them as composable [`passes::LintPass`] passes over a
//! hand-rolled scanner ([`scanner::SourceFile`]) — no `syn`, no external
//! dependencies, so it runs in the same no-network environment as the rest
//! of the workspace.
//!
//! The `cqm-analyze` binary walks `crates/*/src`, prints findings as
//! `file:line: [LINT_ID] message`, and exits nonzero when any deny-level
//! finding (or, under `--deny-all`, any finding at all) survives the
//! suppression pragmas. Suppressions are never silent: each pragma must
//! carry `-- reason` text, malformed pragmas are themselves findings, and
//! suppression is applied *centrally* by the driver — passes emit every
//! match, the driver cancels findings against pragmas and tracks which
//! pragmas actually fired. A pragma that no longer cancels anything is a
//! deny-level `STALE_SUPPRESS` finding, so the suppression ledger can only
//! shrink.

pub mod passes;
pub mod scanner;

use std::fs;
use std::path::{Path, PathBuf};

use passes::{Finding, Level, LintPass};
use scanner::SourceFile;

/// Result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings cancelled by suppression pragmas across all files.
    pub suppressed: usize,
}

impl Report {
    /// Findings at [`Level::Deny`].
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.level == Level::Deny).count()
    }

    /// Findings at [`Level::Warn`].
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }

    /// Whether the run fails: deny findings always do; warn findings only
    /// under `deny_all`.
    pub fn failed(&self, deny_all: bool) -> bool {
        self.deny_count() > 0 || (deny_all && !self.findings.is_empty())
    }

    /// Serialize as `cqm-analyze/report/v1` JSON (std-only, stable field
    /// order) so CI can archive and diff reports across PRs.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"cqm-analyze/report/v1\",\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"deny\": {},\n", self.deny_count()));
        s.push_str(&format!("  \"warn\": {},\n", self.warn_count()));
        s.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!(
                "\"file\": \"{}\", ",
                json_escape(&f.file.display().to_string())
            ));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"lint\": \"{}\", ", json_escape(f.lint)));
            s.push_str(&format!(
                "\"level\": \"{}\", ",
                match f.level {
                    Level::Deny => "deny",
                    Level::Warn => "warn",
                }
            ));
            s.push_str(&format!("\"message\": \"{}\"", json_escape(&f.message)));
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Recursively collect `.rs` files under `root` (or `root` itself if it is
/// a file), sorted for deterministic output. `target/` directories are
/// skipped.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect_into(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_into(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(path)? {
        let entry = entry?;
        let p = entry.path();
        let name = entry.file_name();
        if p.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_into(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Result of analyzing one file: surviving findings plus how many were
/// cancelled by pragmas.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Findings that survived suppression.
    pub findings: Vec<Finding>,
    /// Findings cancelled by a pragma.
    pub suppressed: usize,
}

/// Analyze one already-scanned file with `passes`.
///
/// Passes emit every match; suppression is applied here, centrally, so the
/// driver knows which pragmas actually cancelled something. On top of the
/// pass findings the driver owns three integrity checks:
///
/// * `PRAGMA` (deny) — malformed pragmas (missing reason, bad syntax), so a
///   typo can never silently disable a lint;
/// * `PRAGMA` (deny) — pragmas naming a lint id no registered pass owns
///   (this includes `PRAGMA` and `STALE_SUPPRESS` themselves: the
///   driver-owned checks cannot be suppressed);
/// * `STALE_SUPPRESS` (deny) — a well-formed pragma outside test code whose
///   lint no longer fires on its target. The suppression ledger can only
///   shrink: when the underlying hazard is fixed, the pragma must go too.
pub fn analyze_file(file: &SourceFile, passes: &[Box<dyn LintPass>]) -> FileAnalysis {
    let mut raw = Vec::new();
    for pass in passes {
        pass.check(file, &mut raw);
    }

    let mut used = vec![false; file.pragmas.len()];
    let mut out = FileAnalysis::default();
    for f in raw {
        match file.suppression(f.lint, f.line) {
            Some(idx) => {
                if let Some(hit) = used.get_mut(idx) {
                    *hit = true;
                }
                out.suppressed += 1;
            }
            None => out.findings.push(f),
        }
    }

    for (line, text) in &file.malformed_pragmas {
        out.findings.push(Finding {
            file: file.path.clone(),
            line: *line,
            lint: "PRAGMA",
            message: format!("malformed suppression pragma ({text}); syntax is \
                              `// lint: allow(LINT_ID[, LINT_ID][, file]) -- reason` \
                              and the reason is mandatory"),
            level: Level::Deny,
        });
    }
    for (pragma, fired) in file.pragmas.iter().zip(&used) {
        let mut unknown_id = false;
        for id in &pragma.lint_ids {
            if !passes.iter().any(|p| p.id() == id) {
                unknown_id = true;
                out.findings.push(Finding {
                    file: file.path.clone(),
                    line: pragma.line,
                    lint: "PRAGMA",
                    message: format!("pragma allows unknown lint id `{id}`"),
                    level: Level::Deny,
                });
            }
        }
        // A pragma whose lint never fires on its target is dead weight and
        // hides drift; report it unless it is in test code (passes skip
        // test code, so test-region pragmas can never fire) or already
        // reported as unknown-id.
        let in_test = file
            .lines
            .get(pragma.line.wrapping_sub(1))
            .map(|l| l.in_test)
            .unwrap_or(false);
        if !*fired && !unknown_id && !in_test {
            out.findings.push(Finding {
                file: file.path.clone(),
                line: pragma.line,
                lint: "STALE_SUPPRESS",
                message: format!(
                    "suppression `allow({})` never fired: the lint no longer \
                     matches its target — remove the pragma (reason was: {})",
                    pragma.lint_ids.join(", "),
                    pragma.reason
                ),
                level: Level::Deny,
            });
        }
    }
    out
}

/// Run `passes` over every `.rs` file reachable from `roots`.
///
/// # Errors
///
/// Returns the first I/O error encountered while walking or reading.
pub fn run(roots: &[PathBuf], passes: &[Box<dyn LintPass>]) -> std::io::Result<Report> {
    let mut report = Report::default();
    for root in roots {
        for path in collect_rs_files(root)? {
            let text = fs::read_to_string(&path)?;
            let file = SourceFile::scan(&path, &text);
            let analysis = analyze_file(&file, passes);
            report.findings.extend(analysis.findings);
            report.suppressed += analysis.suppressed;
            report.files_scanned += 1;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use passes::default_passes;

    fn analyze_src(src: &str) -> Vec<Finding> {
        analyze_full(src).findings
    }

    fn analyze_full(src: &str) -> FileAnalysis {
        let file = SourceFile::scan(Path::new("crates/x/src/t.rs"), src);
        analyze_file(&file, &default_passes())
    }

    #[test]
    fn malformed_pragma_is_a_deny_finding() {
        let f = analyze_src("// lint: allow(PANIC_IN_LIB)\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "PRAGMA");
        assert_eq!(f[0].level, Level::Deny);
    }

    #[test]
    fn unknown_lint_id_is_a_deny_finding() {
        let f = analyze_src("// lint: allow(NO_SUCH_LINT) -- oops\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("NO_SUCH_LINT"));
    }

    #[test]
    fn clean_file_has_no_findings() {
        let f = analyze_src(
            "pub fn pick(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn suppression_is_applied_centrally_and_counted() {
        let a = analyze_full(
            "pub fn f(x: Option<u8>) -> u8 {\n    \
             x.unwrap() // lint: allow(PANIC_IN_LIB) -- caller checked is_some\n}\n",
        );
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn stale_pragma_is_a_deny_finding() {
        let a = analyze_full(
            "pub fn f() -> u8 {\n    \
             // lint: allow(PANIC_IN_LIB) -- the unwrap below was removed\n    0\n}\n",
        );
        assert_eq!(a.findings.len(), 1, "got {:?}", a.findings);
        assert_eq!(a.findings[0].lint, "STALE_SUPPRESS");
        assert_eq!(a.findings[0].level, Level::Deny);
        assert_eq!(a.findings[0].line, 2);
        assert_eq!(a.suppressed, 0);
    }

    #[test]
    fn stale_check_skips_test_code_and_unknown_ids() {
        // Pragmas inside #[cfg(test)] can never fire (passes skip test
        // code) — they are exempt, not stale.
        let a = analyze_full(
            "#[cfg(test)]\nmod tests {\n    \
             // lint: allow(PANIC_IN_LIB) -- test-only\n    \
             #[test]\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(a.findings.is_empty(), "got {:?}", a.findings);

        // An unknown-id pragma is already a PRAGMA finding; it must not
        // also double-report as stale.
        let f = analyze_src("// lint: allow(NO_SUCH_LINT) -- oops\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "PRAGMA");
    }

    #[test]
    fn stale_suppress_itself_cannot_be_suppressed() {
        // allow(STALE_SUPPRESS) names no registered pass → unknown id.
        let f = analyze_src("// lint: allow(STALE_SUPPRESS) -- nice try\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "PRAGMA");
        assert!(f[0].message.contains("STALE_SUPPRESS"));
    }

    #[test]
    fn json_report_schema() {
        let mut r = Report {
            findings: vec![Finding {
                file: PathBuf::from("crates/x/src/a.rs"),
                line: 3,
                lint: "PANIC_IN_LIB",
                message: "say \"no\" to\npanics".to_string(),
                level: Level::Deny,
            }],
            files_scanned: 2,
            suppressed: 5,
        };
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"cqm-analyze/report/v1\""));
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"deny\": 1"));
        assert!(json.contains("\"warn\": 0"));
        assert!(json.contains("\"suppressed\": 5"));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("say \\\"no\\\" to\\npanics"));
        r.findings.clear();
        assert!(r.to_json().contains("\"findings\": []"));
    }

    #[test]
    fn report_fail_logic() {
        let mut r = Report::default();
        assert!(!r.failed(false) && !r.failed(true));
        r.findings.push(Finding {
            file: PathBuf::from("a.rs"),
            line: 1,
            lint: "X",
            message: String::new(),
            level: Level::Warn,
        });
        assert!(!r.failed(false));
        assert!(r.failed(true));
        r.findings.push(Finding {
            file: PathBuf::from("a.rs"),
            line: 2,
            lint: "X",
            message: String::new(),
            level: Level::Deny,
        });
        assert!(r.failed(false));
    }
}
