//! IO_SWALLOWED — persistence code must not discard I/O errors.
//!
//! Durability is a chain of checked syscalls: a `write_all` that fails
//! unnoticed leaves a checkpoint that will not survive the crash it exists
//! for, and a swallowed `sync_all` turns "fsynced" into "probably cached".
//! The same holds on the wire: a `write_all` to a socket that fails
//! unnoticed drops a response the client is parked waiting for. In
//! persistence and service paths, discarding an I/O `Result` via
//! `let _ = ...` or a trailing `.ok()` is therefore a durability bug unless
//! the suppression is reasoned about explicitly with a pragma (the one
//! legitimate site is a `Drop` impl, which cannot propagate errors).

use super::{Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct IoSwallowed {
    /// Path fragments this pass applies to; empty means every file.
    path_filters: Vec<&'static str>,
}

const ID: &str = "IO_SWALLOWED";

/// Method/function names whose `Result` is an I/O outcome. Matched as
/// `<name>(` so `sync_all` does not fire on an identifier `sync_all_done`.
const IO_CALLS: &[&str] = &[
    "sync_all",
    "sync_data",
    "flush",
    "write_all",
    "set_len",
    "rename",
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
];

impl Default for IoSwallowed {
    fn default() -> Self {
        IoSwallowed {
            path_filters: vec!["persist/src/", "serve/src/"],
        }
    }
}

impl IoSwallowed {
    /// A variant with no path restriction (used by tests and fixtures).
    pub fn unrestricted() -> Self {
        IoSwallowed {
            path_filters: Vec::new(),
        }
    }
}

impl LintPass for IoSwallowed {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "persistence paths must not discard I/O Results with `let _ =` or \
         `.ok()`; check the error or carry a reasoned pragma"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !self.path_filters.is_empty() {
            let p = file.path.to_string_lossy().replace('\\', "/");
            if !self.path_filters.iter().any(|frag| p.contains(frag)) {
                return;
            }
        }
        for (i, line) in file.lines.iter().enumerate() {
            let lineno = i + 1;
            if line.in_test {
                continue;
            }
            let code = line.code.trim();
            let Some(call) = io_call_in(code) else {
                continue;
            };
            let swallow = if code.starts_with("let _ =") || code.starts_with("let _=") {
                Some("let _ =")
            } else if code.ends_with(".ok();") || code.ends_with(".ok()") {
                Some(".ok()")
            } else {
                None
            };
            if let Some(how) = swallow {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: lineno,
                    lint: ID,
                    message: format!(
                        "I/O result of `{call}()` is swallowed via `{how}`; a \
                         failed {call} silently breaks durability — propagate \
                         the error or add a reasoned pragma"
                    ),
                    level: Level::Deny,
                });
            }
        }
    }
}

/// First I/O call name occurring on the line as a call (`name(`), if any.
fn io_call_in(code: &str) -> Option<&'static str> {
    IO_CALLS.iter().copied().find(|name| {
        code.match_indices(name).any(|(pos, _)| {
            let boundary_ok = pos == 0 || {
                let prev = code.as_bytes()[pos - 1] as char;
                !(prev.is_alphanumeric() || prev == '_')
            };
            boundary_ok && code[pos + name.len()..].starts_with('(')
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new(path), src);
        let mut out = Vec::new();
        IoSwallowed::default().check(&file, &mut out);
        out
    }

    #[test]
    fn flags_let_underscore_on_fsync() {
        let f = run_at(
            "crates/persist/src/journal.rs",
            "fn close(f: &std::fs::File) {\n    let _ = f.sync_all();\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].level, Level::Deny);
        assert!(f[0].message.contains("sync_all"));
    }

    #[test]
    fn flags_trailing_ok_on_flush() {
        let f = run_at(
            "crates/persist/src/checkpoint.rs",
            "fn finish(w: &mut impl std::io::Write) {\n    w.flush().ok();\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("flush"));
    }

    #[test]
    fn checked_io_is_clean() {
        let f = run_at(
            "crates/persist/src/journal.rs",
            "fn close(f: &std::fs::File) -> std::io::Result<()> {\n    f.sync_all()?;\n    Ok(())\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn non_io_discard_is_clean() {
        let f = run_at(
            "crates/persist/src/recovery.rs",
            "fn note() {\n    let _ = compute_sync_allowance();\n    sender.send(1).ok();\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn pragma_with_reason_suppresses() {
        // Suppression is the driver's job now, so route through analyze_file.
        let src = "\
impl Drop for W {
    fn drop(&mut self) {
        // lint: allow(IO_SWALLOWED) -- Drop cannot propagate errors
        let _ = self.file.sync_data();
    }
}
";
        let file = SourceFile::scan(Path::new("crates/persist/src/journal.rs"), src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(IoSwallowed::default())];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn serve_crate_is_covered_by_default() {
        let f = run_at(
            "crates/serve/src/protocol.rs",
            "fn reply(s: &mut std::net::TcpStream, b: &[u8]) {\n    use std::io::Write;\n    let _ = s.write_all(b);\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("write_all"));
    }

    #[test]
    fn other_crates_ignored_by_default() {
        let f = run_at(
            "crates/core/src/model.rs",
            "fn lazy(f: &std::fs::File) {\n    let _ = f.sync_all();\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(f: &std::fs::File) {
        let _ = f.sync_all();
    }
}
";
        assert!(run_at("crates/persist/src/journal.rs", src).is_empty());
    }

    #[test]
    fn unrestricted_variant_sees_every_file() {
        let file = SourceFile::scan(
            Path::new("anywhere.rs"),
            "fn f(w: &mut impl std::io::Write) {\n    w.flush().ok();\n}\n",
        );
        let mut out = Vec::new();
        IoSwallowed::unrestricted().check(&file, &mut out);
        assert_eq!(out.len(), 1);
    }
}
