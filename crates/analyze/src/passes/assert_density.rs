//! ASSERT_DENSITY — numeric public API must state its domain.
//!
//! Every public function in the numeric crates (`cqm-math`, `cqm-fuzzy`,
//! `cqm-core`) that takes `f64`/`&[f64]` input is a place where a NaN or an
//! out-of-domain value can slip into the pipeline unnoticed. Each such
//! function must either carry a `debug_assert!` family domain guard in its
//! body or an explicit `// lint: allow(ASSERT_DENSITY) -- reason` pragma
//! saying why the domain is unrestricted.

use super::{find_all, matching_brace, matching_paren, word_boundary_before, Finding, Level,
            LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct AssertDensity {
    /// Path fragments this pass applies to; empty means every file.
    path_filters: Vec<&'static str>,
}

const ID: &str = "ASSERT_DENSITY";

/// Substrings whose presence in a function body counts as a domain guard.
/// `assert!` also matches `debug_assert!`; listed separately for clarity.
/// `return Err` counts too: explicit runtime rejection of bad input is a
/// *stronger* domain statement than a debug_assert.
const GUARDS: [&str; 5] = [
    "debug_assert",
    "assert!",
    "assert_eq!",
    "assert_ne!",
    "return Err",
];

impl Default for AssertDensity {
    fn default() -> Self {
        AssertDensity {
            path_filters: vec!["math/src", "fuzzy/src", "core/src"],
        }
    }
}

impl AssertDensity {
    /// A variant with no path restriction (used by tests and fixtures).
    pub fn unrestricted() -> Self {
        AssertDensity {
            path_filters: Vec::new(),
        }
    }
}

impl LintPass for AssertDensity {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "public fns taking f64/&[f64] in the numeric crates must carry a \
         debug_assert! domain guard (or a pragma explaining why not)"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !self.path_filters.is_empty() {
            let p = file.path.to_string_lossy().replace('\\', "/");
            if !self.path_filters.iter().any(|frag| p.contains(frag)) {
                return;
            }
        }
        let joined = file.joined_code();

        for pos in find_all(joined, "pub fn ") {
            if !word_boundary_before(joined, pos) {
                continue;
            }
            let line = file.line_of(pos + 1);
            if file.lines[line - 1].in_test {
                continue;
            }

            let name_start = pos + "pub fn ".len();
            let name: String = joined[name_start..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();

            // Parameter list: first `(` after the name (skipping generics).
            let Some(open) = joined[name_start..].find('(').map(|o| name_start + o) else {
                continue;
            };
            let Some(params_end) = matching_paren(joined, open) else {
                continue;
            };
            let params = &joined[open..params_end];
            if !takes_f64(params) {
                continue;
            }

            // Body: first `{` or `;` after the params. `;` means a bodyless
            // trait method declaration — nothing to guard there.
            let mut body_open = None;
            for (k, c) in joined[params_end..].char_indices() {
                match c {
                    '{' => {
                        body_open = Some(params_end + k);
                        break;
                    }
                    ';' => break,
                    _ => {}
                }
            }
            let Some(body_open) = body_open else {
                continue;
            };
            let Some(body_end) = matching_brace(joined, body_open) else {
                continue;
            };
            let body = &joined[body_open..body_end];

            if GUARDS.iter().any(|g| body.contains(g)) {
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line,
                lint: ID,
                message: format!(
                    "public fn `{name}` takes f64 input but has no debug_assert! \
                     domain guard; assert the domain or add a pragma with a reason"
                ),
                level: Level::Warn,
            });
        }
    }
}

/// Does the parenthesized parameter list mention an `f64` parameter
/// (`f64`, `&f64`, `&[f64]`, `Vec<f64>`, …) at a word boundary?
fn takes_f64(params: &str) -> bool {
    find_all(params, "f64").iter().any(|&p| {
        word_boundary_before(params, p)
            && !params[p + 3..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("crates/math/src/t.rs"), src);
        let mut out = Vec::new();
        AssertDensity::default().check(&file, &mut out);
        out
    }

    #[test]
    fn flags_unguarded_pub_fn() {
        let f = run("pub fn mean(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>() / xs.len() as f64\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`mean`"));
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn guarded_fn_is_clean() {
        let f = run("pub fn mean(xs: &[f64]) -> f64 {\n    debug_assert!(!xs.is_empty());\n    xs.iter().sum::<f64>() / xs.len() as f64\n}\n");
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn non_float_and_private_fns_ignored() {
        let src = "\
pub fn count(xs: &[usize]) -> usize { xs.len() }
fn helper(x: f64) -> f64 { x }
pub fn not_f64(x: u64, name: &str) -> u64 { x }
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn f64_in_return_type_only_is_ignored() {
        assert!(run("pub fn zero() -> f64 { 0.0 }\n").is_empty());
    }

    #[test]
    fn bodyless_trait_decl_ignored() {
        assert!(run("pub trait Kernel {\n    pub fn eval(&self, x: f64) -> f64;\n}\n").is_empty());
    }

    #[test]
    fn result_validation_counts_as_guard() {
        let f = run("pub fn checked(x: f64) -> Result<f64, String> {\n    if !x.is_finite() {\n        return Err(\"non-finite\".into());\n    }\n    Ok(x)\n}\n");
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn pragma_accepted_with_reason() {
        // Suppression is the driver's job now, so route through analyze_file.
        let file = SourceFile::scan(
            Path::new("crates/math/src/t.rs"),
            "// lint: allow(ASSERT_DENSITY) -- domain is all of R by construction\npub fn ident(x: f64) -> f64 {\n    x\n}\n",
        );
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(AssertDensity::default())];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn path_filter_respected() {
        let file = SourceFile::scan(
            Path::new("crates/appliance/src/t.rs"),
            "pub fn raw(x: f64) -> f64 { x }\n",
        );
        let mut out = Vec::new();
        AssertDensity::default().check(&file, &mut out);
        assert!(out.is_empty());
        AssertDensity::unrestricted().check(&file, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn generic_fn_with_angle_brackets() {
        let f = run("pub fn map<F: Fn(f64) -> f64>(xs: &[f64], f: F) -> Vec<f64> {\n    xs.iter().map(|&x| f(x)).collect()\n}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`map`"));
    }
}
