//! NAN_UNSAFE_CMP — float comparisons that misbehave on NaN.
//!
//! The quality value `q ∈ [0,1] ∪ {ε}` must never silently become NaN
//! mid-pipeline; a `partial_cmp(..).unwrap()` inside a sort is exactly the
//! place where one NaN produced upstream turns into a panic (or, with
//! `unwrap_or(Equal)`, into a silently mis-sorted result). `f64::total_cmp`
//! is total and NaN-stable, so these sites have a mechanical fix.

use super::{find_all, matching_paren, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct NanUnsafeCmp;

const ID: &str = "NAN_UNSAFE_CMP";

impl LintPass for NanUnsafeCmp {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "flags partial_cmp().unwrap()/expect(), float == / != literals, and \
         partial_cmp-based sort/min/max closures; use f64::total_cmp"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        let joined = file.joined_code();

        // Rule 1 + 3: `partial_cmp` chained into unwrap/expect (Deny), or
        // used inside a comparator without unwrap (Warn — still NaN-unsound
        // ordering when swallowed with unwrap_or).
        for pos in find_all(joined, ".partial_cmp") {
            let line = file.line_of(pos + 1);
            if file.lines[line - 1].in_test {
                continue;
            }
            let after_name = pos + ".partial_cmp".len();
            let Some(open) = joined[after_name..]
                .find('(')
                .map(|o| after_name + o)
                .filter(|&o| joined[after_name..o].trim().is_empty())
            else {
                continue;
            };
            let Some(end) = matching_paren(joined, open) else {
                continue;
            };
            let tail = joined[end..].trim_start();
            if tail.starts_with(".unwrap()") || tail.starts_with(".expect(") {
                findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    lint: ID,
                    message: "partial_cmp().unwrap()/.expect() panics on NaN; \
                              use f64::total_cmp for a total, NaN-stable order"
                        .to_string(),
                    level: Level::Deny,
                });
            } else if tail.starts_with(".unwrap_or(") || tail.starts_with(".unwrap_or_else(") {
                findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    lint: ID,
                    message: "partial_cmp with a NaN fallback yields an inconsistent \
                              comparator (breaks sort contracts); use f64::total_cmp"
                        .to_string(),
                    level: Level::Warn,
                });
            }
        }

        // Rule 2: `==` / `!=` against a float literal or float constant.
        for (idx, l) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if l.in_test {
                continue;
            }
            let code = &l.code;
            for op in ["==", "!="] {
                for pos in find_all(code, op) {
                    // Exclude `<=`, `>=`, `!=` matched inside `==` etc.
                    if pos > 0 {
                        let prev = code.as_bytes()[pos - 1] as char;
                        if prev == '<' || prev == '>' || prev == '=' || prev == '!' {
                            continue;
                        }
                    }
                    if code.as_bytes().get(pos + 2) == Some(&b'=') {
                        continue;
                    }
                    let lhs = code[..pos].trim_end();
                    let rhs = code[pos + 2..].trim_start();
                    if float_literal_leads(rhs) || float_literal_trails(lhs) {
                        findings.push(Finding {
                            file: file.path.clone(),
                            line: lineno,
                            lint: ID,
                            message: format!(
                                "float `{op}` comparison is exact (and always false for \
                                 NaN); compare with an epsilon or restructure"
                            ),
                            level: Level::Warn,
                        });
                    }
                }
            }
        }
    }
}

/// Does `text` *start* with a float literal (`0.5`, `-1.`, `1e-9`) or a
/// NaN/infinity constant?
fn float_literal_leads(text: &str) -> bool {
    let t = text.strip_prefix('-').unwrap_or(text).trim_start();
    if t.starts_with("f64::NAN")
        || t.starts_with("f32::NAN")
        || t.starts_with("f64::INFINITY")
        || t.starts_with("f64::NEG_INFINITY")
    {
        return true;
    }
    let mut saw_digit = false;
    let mut chars = t.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || c == '_' {
            saw_digit = true;
            chars.next();
        } else {
            break;
        }
    }
    if !saw_digit {
        return false;
    }
    match chars.next() {
        // `1.5`, `1.` — but not a method call like `1.max(x)` or tuple index.
        Some('.') => matches!(chars.next(), Some(c) if c.is_ascii_digit() || c == '0')
            || matches!(chars.peek(), None),
        // `1e9` scientific notation.
        Some('e') | Some('E') => true,
        _ => false,
    }
}

/// Does `text` *end* with a float literal or NaN/infinity constant?
fn float_literal_trails(text: &str) -> bool {
    let t = text.trim_end();
    if t.ends_with("f64::NAN")
        || t.ends_with("f32::NAN")
        || t.ends_with("f64::INFINITY")
        || t.ends_with("f64::NEG_INFINITY")
    {
        return true;
    }
    // Strip a possible `f64` / `f32` suffix.
    let t = t.strip_suffix("f64").or_else(|| t.strip_suffix("f32")).unwrap_or(t);
    let bytes = t.as_bytes();
    let mut i = t.len();
    let mut saw_digit_after_dot = false;
    while i > 0 && (bytes[i - 1].is_ascii_digit() || bytes[i - 1] == b'_') {
        saw_digit_after_dot = true;
        i -= 1;
    }
    if !saw_digit_after_dot || i == 0 || bytes[i - 1] != b'.' {
        return false;
    }
    // Require digits before the dot too (rules out `..5` ranges and tuple
    // field access like `x.0`... which *is* digits.dot.digits — but `x.0`
    // ends with `.0` preceded by an identifier, so check what precedes).
    let mut j = i - 1;
    let mut saw_digit_before = false;
    while j > 0 && (bytes[j - 1].is_ascii_digit() || bytes[j - 1] == b'_') {
        saw_digit_before = true;
        j -= 1;
    }
    if !saw_digit_before {
        return false;
    }
    if j > 0 {
        let prev = bytes[j - 1] as char;
        if prev.is_alphanumeric() || prev == '_' || prev == '.' {
            // `x.0`, `v1.5` — field access / identifier, not a literal.
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("t.rs"), src);
        let mut out = Vec::new();
        NanUnsafeCmp.check(&file, &mut out);
        out
    }

    #[test]
    fn flags_partial_cmp_unwrap() {
        let f = run("fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].level, Level::Deny);
    }

    #[test]
    fn flags_multiline_chain() {
        let f = run("fn f() {\n    xs.min_by(|a, b| {\n        a.partial_cmp(&(b + 1.0))\n            .unwrap()\n    });\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn warns_on_unwrap_or_fallback() {
        let f = run("fn f() {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].level, Level::Warn);
    }

    #[test]
    fn total_cmp_is_clean() {
        let f = run("fn f(v: &mut Vec<f64>) {\n    v.sort_by(f64::total_cmp);\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n");
        assert!(f.is_empty());
    }

    #[test]
    fn flags_float_literal_eq() {
        let f = run("fn f(x: f64) -> bool {\n    x == 0.0\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].level, Level::Warn);
        let f = run("fn f(x: f64) -> bool {\n    1.5 != x\n}\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn integer_eq_is_clean() {
        assert!(run("fn f(x: usize) -> bool { x == 0 }\n").is_empty());
        assert!(run("fn f(x: &str) -> bool { x == \"0.5\" }\n").is_empty());
        assert!(run("fn f(t: (f64, f64), y: f64) -> bool { t.0 == y }\n").is_empty());
    }

    #[test]
    fn respects_pragma_and_tests() {
        // Suppression is the driver's job now, so route through analyze_file.
        let file = SourceFile::scan(
            Path::new("t.rs"),
            "fn f(v: &mut Vec<f64>) {\n    // lint: allow(NAN_UNSAFE_CMP) -- inputs validated finite at api boundary\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n#[cfg(test)]\nmod tests {\n    fn t(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}\n",
        );
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(NanUnsafeCmp)];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }
}
