//! The lint-pass library. Each pass is a [`LintPass`] over a scanned
//! [`SourceFile`]; adding a pass means implementing the trait and listing
//! the pass in [`default_passes`].

mod approx_math;
mod assert_density;
mod epsilon_domain;
mod hash_iter_nondet;
mod hot_loop_alloc;
mod io_swallowed;
mod lock_across_blocking;
mod nan_cmp;
mod no_deadline_io;
mod panic_lib;
mod time_in_logic;
mod unbounded_channel;
mod unbounded_window;

pub use approx_math::ApproxMath;
pub use assert_density::AssertDensity;
pub use epsilon_domain::EpsilonDomain;
pub use hash_iter_nondet::HashIterNondet;
pub use hot_loop_alloc::{HotLoopAlloc, HOT_PATH_TAG};
pub use io_swallowed::IoSwallowed;
pub use lock_across_blocking::LockAcrossBlocking;
pub use nan_cmp::NanUnsafeCmp;
pub use no_deadline_io::NoDeadlineIo;
pub use panic_lib::PanicInLib;
pub use time_in_logic::TimeInLogic;
pub use unbounded_channel::UnboundedChannel;
pub use unbounded_window::{UnboundedWindow, STREAMING_TAG};

use crate::scanner::SourceFile;
use std::path::PathBuf;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Reported, but only fails the run under `--deny-all`.
    Warn,
    /// Always fails the run.
    Deny,
}

/// One violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Lint id, e.g. `PANIC_IN_LIB`.
    pub lint: &'static str,
    /// Human-readable explanation with the offending snippet.
    pub message: String,
    /// Severity.
    pub level: Level,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// A composable static-analysis pass.
pub trait LintPass {
    /// Uppercase stable id used in output and pragmas.
    fn id(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Run over one file, appending findings. Implementations must skip
    /// test code via [`crate::scanner::Line::in_test`] but must NOT apply
    /// suppression pragmas — [`crate::analyze_file`] cancels findings
    /// against pragmas centrally so it can tell which pragmas actually
    /// fired (the `STALE_SUPPRESS` check depends on this).
    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>);
}

/// The pass set `cqm-analyze` ships with.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(NanUnsafeCmp),
        Box::new(PanicInLib),
        Box::new(AssertDensity::default()),
        Box::new(EpsilonDomain::default()),
        Box::new(IoSwallowed::default()),
        Box::new(HotLoopAlloc),
        Box::new(LockAcrossBlocking),
        Box::new(UnboundedChannel::default()),
        Box::new(HashIterNondet::default()),
        Box::new(TimeInLogic::default()),
        Box::new(NoDeadlineIo::default()),
        Box::new(ApproxMath),
        Box::new(UnboundedWindow),
    ]
}

// ---------------------------------------------------------------------------
// Shared string-matching helpers for the passes
// ---------------------------------------------------------------------------

/// Is `text[i]` the start of `needle` at an identifier boundary on the left?
pub(crate) fn word_boundary_before(text: &str, i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = text.as_bytes()[i - 1] as char;
    !(prev.is_alphanumeric() || prev == '_')
}

/// Byte index just past the `)` matching the `(` at `open` (which must point
/// at a `(`), or `None` if unbalanced.
pub(crate) fn matching_paren(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    debug_assert!(bytes.get(open) == Some(&b'('));
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte index just past the `}` matching the `{` at `open` (which must
/// point at a `{`), or `None` if unbalanced.
pub(crate) fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    debug_assert!(bytes.get(open) == Some(&b'{'));
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// All byte offsets where `needle` occurs in `haystack`.
pub(crate) fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}
