//! NO_DEADLINE_IO — socket I/O without a deadline in service paths.
//!
//! PR 7's failure model (DESIGN.md §12) requires every blocking socket
//! operation in the serve and resilience layers to carry an explicit
//! budget: a peer that stalls mid-frame, a proxy that eats a byte, or a
//! network that silently drops a segment must surface as a typed
//! [`Timeout`] within a bounded interval — never as a thread parked in
//! `recv` forever. Two patterns defeat that:
//!
//! * `TcpStream::connect(addr)` — the deadline-free connect blocks for
//!   the kernel's SYN-retry horizon (minutes); the codebase's rule is
//!   `TcpStream::connect_timeout(&addr, budget)` everywhere.
//! * `set_read_timeout(None)` / `set_write_timeout(None)` — explicitly
//!   removing a socket deadline re-opens the unbounded-blocking hole the
//!   session loops close with `SESSION_POLL`-sized timeouts.
//!
//! The pass applies to `serve/src` and `resilience/src`. A legitimate
//! exception (e.g. a deliberately deadline-free diagnostic tool) carries
//! a pragma naming where the bound comes from instead.

use super::{find_all, word_boundary_before, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct NoDeadlineIo {
    /// Path fragments this pass applies to; empty means every file.
    path_filters: Vec<&'static str>,
}

const ID: &str = "NO_DEADLINE_IO";

impl Default for NoDeadlineIo {
    fn default() -> Self {
        NoDeadlineIo {
            path_filters: vec!["serve/src", "resilience/src"],
        }
    }
}

impl NoDeadlineIo {
    /// A variant with no path restriction (used by tests and fixtures).
    pub fn unrestricted() -> Self {
        NoDeadlineIo {
            path_filters: Vec::new(),
        }
    }
}

impl LintPass for NoDeadlineIo {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "serve/resilience socket I/O must carry a deadline: \
         TcpStream::connect_timeout over connect, and never \
         set_read_timeout(None)/set_write_timeout(None)"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !self.path_filters.is_empty() {
            let p = file.path.to_string_lossy().replace('\\', "/");
            if !self.path_filters.iter().any(|frag| p.contains(frag)) {
                return;
            }
        }
        for (idx, l) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if l.in_test {
                continue;
            }
            let code = &l.code;
            // `connect_timeout(` does not match: the pattern requires `(`
            // right after `connect`.
            for pos in find_all(code, "TcpStream::connect(") {
                if !word_boundary_before(code, pos) {
                    continue;
                }
                findings.push(Finding {
                    file: file.path.clone(),
                    line: lineno,
                    lint: ID,
                    message: "deadline-free `TcpStream::connect` blocks for the \
                              kernel's SYN-retry horizon; use \
                              `TcpStream::connect_timeout(&addr, budget)`"
                        .to_string(),
                    level: Level::Deny,
                });
            }
            for pat in ["set_read_timeout(None)", "set_write_timeout(None)"] {
                for pos in find_all(code, pat) {
                    if !word_boundary_before(code, pos) {
                        continue;
                    }
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: lineno,
                        lint: ID,
                        message: format!(
                            "`{pat}` removes the socket deadline and re-opens \
                             unbounded blocking; pass a finite budget (or a \
                             pragma naming where the bound comes from)"
                        ),
                        level: Level::Deny,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new(path), src);
        let mut out = Vec::new();
        NoDeadlineIo::default().check(&file, &mut out);
        out
    }

    #[test]
    fn bare_connect_in_serve_is_flagged() {
        let f = run_at(
            "crates/serve/src/client.rs",
            "fn dial() {\n    let s = std::net::TcpStream::connect(\"127.0.0.1:80\");\n    let _ = s;\n}\n",
        );
        assert_eq!(f.len(), 1, "got {f:?}");
        assert_eq!(f[0].level, Level::Deny);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn connect_timeout_is_clean() {
        let f = run_at(
            "crates/serve/src/client.rs",
            "fn dial(addr: &std::net::SocketAddr, d: std::time::Duration) {\n    let s = std::net::TcpStream::connect_timeout(addr, d);\n    let _ = s;\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn clearing_socket_timeouts_is_flagged() {
        let f = run_at(
            "crates/resilience/src/netfault.rs",
            "fn f(s: &std::net::TcpStream) {\n    s.set_read_timeout(None).unwrap();\n    s.set_write_timeout(None).unwrap();\n}\n",
        );
        assert_eq!(f.len(), 2, "got {f:?}");
    }

    #[test]
    fn finite_timeouts_and_option_variables_are_clean() {
        let f = run_at(
            "crates/serve/src/server.rs",
            "fn f(s: &std::net::TcpStream, t: Option<std::time::Duration>) {\n    s.set_read_timeout(Some(std::time::Duration::from_millis(50))).unwrap();\n    s.set_write_timeout(t).unwrap();\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn out_of_scope_crates_ignored_by_default() {
        let src = "fn f() {\n    let s = std::net::TcpStream::connect(\"x:1\");\n    let _ = s;\n}\n";
        let f = run_at("crates/bench/src/bin/loadgen.rs", src);
        assert!(f.is_empty());
        let file = SourceFile::scan(Path::new("crates/bench/src/bin/loadgen.rs"), src);
        let mut out = Vec::new();
        NoDeadlineIo::unrestricted().check(&file, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn tests_and_pragmas_skipped() {
        let src = "\
fn f() {
    // lint: allow(NO_DEADLINE_IO) -- diagnostic probe; the caller's watchdog bounds it
    let s = std::net::TcpStream::connect(\"x:1\");
    let _ = s;
}
#[cfg(test)]
mod tests {
    fn t() {
        let s = std::net::TcpStream::connect(\"x:1\");
        let _ = s;
    }
}
";
        let file = SourceFile::scan(Path::new("crates/serve/src/client.rs"), src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(NoDeadlineIo::default())];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }
}
