//! LOCK_ACROSS_BLOCKING — a lock guard held across a blocking call.
//!
//! The serve/parallel/resilience layers follow a strict locking discipline:
//! guards protect in-memory state transitions and are released *before*
//! anything that can park the thread — socket and file I/O, `join()`,
//! channel `recv()`, or `sleep`. A guard held across such a call turns a
//! slow peer into a stalled lock and, with the wrong pairing, a deadlock
//! (e.g. the session table held while `join()`ing a session thread that
//! needs the table to exit). These bugs pass every fast test and appear
//! only under production timing.
//!
//! The pass finds `let g = ….lock()/.read()/.write()…;` bindings and walks
//! the rest of the *enclosing block* (from the scanner's block tree) for
//! blocking calls, stopping early at an explicit `drop(g)`. Condvar
//! `wait`/`wait_timeout` are deliberately not in the blocking list: they
//! release the guard while parked, which is the sanctioned way to sleep
//! with a lock. The fix is almost always an inner scope:
//!
//! ```text
//! let h = { let mut s = table.lock().unwrap(); s.remove(id) };
//! h.join();   // guard already dropped
//! ```
//!
//! Findings anchor on the binding line; suppress there when the blocking
//! call provably cannot park (and say why).

use super::{find_all, word_boundary_before, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct LockAcrossBlocking;

const ID: &str = "LOCK_ACROSS_BLOCKING";

/// Call suffixes that bind a lock guard when they end a `let` initializer.
const GUARD_CALLS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Blocking-call patterns: `(pattern, needs word boundary before)`.
/// Method-shaped patterns (leading `.`) need no extra boundary; bare names
/// do, so `sleep(` does not fire inside `nosleep(`. `.join()` requires the
/// empty-parens form: `Path::join`/`[&str]::join` always take an argument,
/// thread/session handles do not.
const BLOCKING: &[(&str, bool)] = &[
    (".recv()", false),
    (".recv_timeout(", false),
    (".recv_deadline(", false),
    (".join()", false),
    (".accept()", false),
    ("connect(", true),
    (".write_all(", false),
    (".read_exact(", false),
    (".read_to_end(", false),
    (".read_to_string(", false),
    (".flush()", false),
    (".sync_all()", false),
    (".sync_data()", false),
    ("sleep(", true),
    ("read_frame(", true),
    ("write_frame(", true),
];

impl LintPass for LockAcrossBlocking {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "flags MutexGuard/RwLockGuard bindings still live at socket/file \
         I/O, join(), recv(), or sleep in the same block; drop or scope the \
         guard first"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        let joined = file.joined_code();
        let tree = file.block_tree();
        for pos in find_all(joined, "let ") {
            if !word_boundary_before(joined, pos) {
                continue;
            }
            let line = file.line_of(pos + 1);
            if file.lines[line - 1].in_test {
                continue;
            }
            let Some((stmt_end, name, rhs)) = parse_let(joined, pos) else {
                continue;
            };
            if !binds_guard(rhs) {
                continue;
            }
            // The guard lives from the end of its statement to the end of
            // the enclosing block (or an explicit drop, whichever first).
            let Some(block_end) = tree
                .enclosing_at(pos)
                .and_then(|bi| tree.blocks.get(bi))
                .map(|b| b.end)
            else {
                continue;
            };
            if block_end <= stmt_end {
                continue;
            }
            let mut region = &joined[stmt_end..block_end];
            for cut_pat in [format!("drop({name})"), format!("drop(&{name})")] {
                if let Some(cut) = region.find(&cut_pat) {
                    region = &region[..cut];
                }
            }
            'blocking: for &(pat, needs_boundary) in BLOCKING {
                for off in find_all(region, pat) {
                    if needs_boundary && !word_boundary_before(region, off) {
                        continue;
                    }
                    let site_line = file.line_of(stmt_end + off + 1);
                    findings.push(Finding {
                        file: file.path.clone(),
                        line,
                        lint: ID,
                        message: format!(
                            "guard `{name}` is still live at blocking call \
                             `{pat}` (line {site_line}); drop it or scope it \
                             in an inner block before blocking",
                            pat = pat.trim_start_matches('.').trim_end_matches('('),
                        ),
                        level: Level::Deny,
                    });
                    // One finding per binding keeps the report readable.
                    break 'blocking;
                }
            }
        }
    }
}

/// Parse the `let` statement starting at `pos` (which points at `let `):
/// `(byte just past the terminating ';', bound name, initializer text)`.
/// Returns `None` for patterns that cannot bind a guard we can track — a
/// tuple/struct pattern, a `let … else`, or a `let` without initializer.
fn parse_let(joined: &str, pos: usize) -> Option<(usize, &str, &str)> {
    let bytes = joined.as_bytes();
    let start = pos + "let ".len();
    // Find the `=` introducing the initializer and the closing `;`, both at
    // bracket depth 0 relative to the statement.
    let mut depth = 0i32;
    let mut eq = None;
    let mut end = None;
    let mut i = start;
    while let Some(&cur) = bytes.get(i) {
        match cur {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth < 0 {
                    // Ran out of the enclosing block: no terminating `;`.
                    return None;
                }
            }
            b'=' if depth == 0 && eq.is_none() => {
                let prev = bytes[i - 1];
                let next = bytes.get(i + 1).copied().unwrap_or(b' ');
                let is_compound = matches!(
                    prev,
                    b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|'
                        | b'^'
                ) || matches!(next, b'=' | b'>');
                if !is_compound {
                    eq = Some(i);
                }
            }
            b';' if depth == 0 => {
                end = Some(i + 1);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let (eq, end) = (eq?, end?);
    if eq >= end {
        return None;
    }
    let mut name = joined[start..eq].trim();
    name = name.strip_prefix("mut ").unwrap_or(name).trim_start();
    name = name.strip_prefix("ref ").unwrap_or(name).trim_start();
    if let Some(colon) = name.find(':') {
        name = name[..colon].trim_end();
    }
    let simple_ident = !name.is_empty()
        && name != "_"
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name.chars().all(|c| c.is_alphanumeric() || c == '_');
    if !simple_ident {
        return None;
    }
    let rhs = joined[eq + 1..end - 1].trim();
    if rhs.contains("else") && rhs.ends_with('}') {
        return None; // `let … else { … }` diverges, nothing is bound past it
    }
    Some((end, name, rhs))
}

/// Does the initializer text end in a lock acquisition? Handles the bare
/// call, `?`, `.unwrap()`, and the poison-tolerant
/// `unwrap_or_else(PoisonError::into_inner)` idiom used in this workspace.
fn binds_guard(rhs: &str) -> bool {
    let mut t = rhs.trim();
    if let Some(s) = t.strip_suffix('?') {
        t = s.trim_end();
    }
    if let Some(s) = t.strip_suffix(".unwrap()") {
        t = s.trim_end();
    }
    if GUARD_CALLS.iter().any(|g| t.ends_with(g)) {
        return true;
    }
    t.ends_with("unwrap_or_else(PoisonError::into_inner)")
        && GUARD_CALLS.iter().any(|g| t.contains(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("crates/serve/src/t.rs"), src);
        let mut out = Vec::new();
        LockAcrossBlocking.check(&file, &mut out);
        out
    }

    #[test]
    fn flags_guard_across_join() {
        let src = "\
fn finish(&self) {
    let mut sessions = self.sessions.lock().unwrap();
    for h in sessions.drain(..) {
        h.join().unwrap();
    }
}
";
        let f = run(src);
        assert_eq!(f.len(), 1, "got {f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].level, Level::Deny);
        assert!(f[0].message.contains("sessions"));
        assert!(f[0].message.contains("join"));
    }

    #[test]
    fn flags_guard_across_socket_write() {
        let src = "\
fn reply(&self, s: &mut std::net::TcpStream) -> std::io::Result<()> {
    let state = self.state.read().unwrap();
    s.write_all(&state.bytes)?;
    Ok(())
}
";
        let f = run(src);
        assert_eq!(f.len(), 1, "got {f:?}");
        assert!(f[0].message.contains("write_all"));
    }

    #[test]
    fn poison_tolerant_idiom_is_still_a_guard() {
        let src = "\
fn wait(&self) {
    let stop = self
        .stop_requested
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    self.rx.recv().unwrap();
    let _ = stop;
}
";
        let f = run(src);
        assert_eq!(f.len(), 1, "got {f:?}");
        assert!(f[0].message.contains("stop"));
    }

    #[test]
    fn inner_scope_releases_the_guard() {
        let src = "\
fn finish(&self) {
    let handle = {
        let mut sessions = self.sessions.lock().unwrap();
        sessions.pop()
    };
    handle.join().unwrap();
}
";
        assert!(run(src).is_empty(), "scoped guard must not fire");
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "\
fn step(&self) {
    let queue = self.queue.lock().unwrap();
    let n = queue.len();
    drop(queue);
    std::thread::sleep(wait_for(n));
}
";
        assert!(run(src).is_empty(), "dropped guard must not fire");
    }

    #[test]
    fn condvar_wait_is_sanctioned() {
        let src = "\
fn pop(&self) -> Job {
    let mut inner = self.inner.lock().unwrap();
    loop {
        if let Some(j) = inner.take() {
            return j;
        }
        inner = self.not_empty.wait(inner).unwrap();
    }
}
";
        assert!(run(src).is_empty(), "condvar wait releases the guard");
    }

    #[test]
    fn path_join_with_args_is_not_blocking() {
        let src = "\
fn place(&self) -> std::path::PathBuf {
    let cfg = self.cfg.lock().unwrap();
    cfg.dir.join(\"checkpoint\")
}
";
        assert!(run(src).is_empty(), "Path::join takes an argument");
    }

    #[test]
    fn non_guard_bindings_are_ignored() {
        let src = "\
fn run(&self) {
    let n = self.count();
    self.rx.recv().unwrap();
    let _ = n;
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t(h: std::thread::JoinHandle<()>) {
        let g = LOCK.lock().unwrap();
        h.join().unwrap();
        let _ = g;
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn pragma_on_binding_line_suppresses() {
        let src = "\
fn flushy(&self, w: &mut impl std::io::Write) {
    // lint: allow(LOCK_ACROSS_BLOCKING) -- single-threaded drain at shutdown, no contention
    let log = self.log.lock().unwrap();
    w.write_all(&log.tail).unwrap();
}
";
        let file = SourceFile::scan(Path::new("crates/serve/src/t.rs"), src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(LockAcrossBlocking)];
        let a = crate::analyze_file(&file, &passes);
        // The write_all unwrap is PanicInLib's business, not ours; with only
        // this pass registered the pragma must cancel the single finding.
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }
}
