//! HASH_ITER_NONDET — HashMap/HashSet iteration in bit-identity paths.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState`, which is
//! seeded per process. Any iteration that feeds serialization, checkpoint
//! bytes, wire frames, or a `// analyze: hot-path` computation therefore
//! produces different bytes on different runs — breaking the workspace's
//! core guarantee that served answers and recovery replay are bit-identical
//! to the in-process pipeline. The deterministic fixes are mechanical:
//! `BTreeMap`/`BTreeSet`, or collect-and-sort before emitting.
//!
//! The pass runs on `persist` and `serve` sources plus any file tagged
//! `// analyze: hot-path`. It tracks names declared with a
//! `HashMap`/`HashSet` type (let bindings, struct fields, parameters) and
//! flags iteration over those names: `for … in name`, `.iter()`, `.keys()`,
//! `.values()`, `.drain(…)`, `.into_iter()`.

use std::collections::BTreeSet;

use super::{find_all, word_boundary_before, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct HashIterNondet {
    /// Path fragments this pass applies to; empty means every file.
    /// Files tagged `hot-path` are always in scope.
    path_filters: Vec<&'static str>,
}

const ID: &str = "HASH_ITER_NONDET";

/// Method calls on a hash container that iterate it.
const ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

impl Default for HashIterNondet {
    fn default() -> Self {
        HashIterNondet {
            path_filters: vec!["persist/src", "serve/src"],
        }
    }
}

impl HashIterNondet {
    /// A variant with no path restriction (used by tests and fixtures).
    pub fn unrestricted() -> Self {
        HashIterNondet {
            path_filters: Vec::new(),
        }
    }
}

impl LintPass for HashIterNondet {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "serialization/checkpoint/wire/hot-path code must not iterate \
         HashMap/HashSet (order is per-process random); use BTreeMap/\
         BTreeSet or sort first"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !self.path_filters.is_empty() && !file.has_tag(super::HOT_PATH_TAG) {
            let p = file.path.to_string_lossy().replace('\\', "/");
            if !self.path_filters.iter().any(|frag| p.contains(frag)) {
                return;
            }
        }
        let names = hash_typed_names(file);
        if names.is_empty() {
            return;
        }
        for (idx, l) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if l.in_test {
                continue;
            }
            let code = &l.code;
            for name in &names {
                for pos in find_all(code, name) {
                    if !word_boundary_before(code, pos) {
                        continue;
                    }
                    let after = &code[pos + name.len()..];
                    if after
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        continue; // longer identifier, not this name
                    }
                    let method_iter = ITER_METHODS.iter().any(|m| after.starts_with(m));
                    let for_in_iter = is_for_in_operand(&code[..pos]);
                    if method_iter || for_in_iter {
                        findings.push(Finding {
                            file: file.path.clone(),
                            line: lineno,
                            lint: ID,
                            message: format!(
                                "iterating hash container `{name}` here is \
                                 nondeterministic (RandomState order) and breaks \
                                 bit-identity; use BTreeMap/BTreeSet or sort the \
                                 entries before emitting"
                            ),
                            level: Level::Deny,
                        });
                        // One finding per line per name is enough.
                        break;
                    }
                }
            }
        }
    }
}

/// Names declared with a `HashMap`/`HashSet` type anywhere in the file:
/// `let name: HashMap<…>`, `name: HashMap<…>` (field or parameter), and
/// `let name = HashMap::new()` / `HashSet::with_capacity(…)` bindings.
fn hash_typed_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for l in &file.lines {
        let code = &l.code;
        for ty in ["HashMap", "HashSet"] {
            for pos in find_all(code, ty) {
                if !word_boundary_before(code, pos) {
                    continue;
                }
                let mut b = code[..pos].trim_end();
                // Strip a qualifying path: `std::collections::HashMap`.
                while b.ends_with("::") {
                    b = b[..b.len() - 2].trim_end();
                    match trailing_ident(b) {
                        Some(id) => b = b[..b.len() - id.len()].trim_end(),
                        None => break,
                    }
                }
                // Strip reference sigils: `&HashMap`, `&mut HashMap`.
                if let Some(s) = b.strip_suffix("mut") {
                    let s = s.trim_end();
                    if s.ends_with('&') {
                        b = s;
                    }
                }
                if let Some(s) = b.strip_suffix('&') {
                    b = s.trim_end();
                }
                // `name: HashMap<…>` — type annotation on a let, field, or
                // parameter.
                if let Some(head) = b.strip_suffix(':') {
                    if let Some(name) = trailing_ident(head) {
                        names.insert(name.to_string());
                        continue;
                    }
                }
                // `let name = HashMap::new()` — constructor binding.
                if let Some(head) = b.strip_suffix('=') {
                    let head = head.trim_end();
                    if let Some(name) = trailing_ident(head) {
                        let lead = head[..head.len() - name.len()].trim_end();
                        if lead.ends_with("let") || lead.ends_with("mut") {
                            names.insert(name.to_string());
                        }
                    }
                }
            }
        }
    }
    names
}

/// The identifier ending `text`, if `text` ends with one.
fn trailing_ident(text: &str) -> Option<&str> {
    let t = text.trim_end();
    let start = t
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let ident = &t[start..];
    (!ident.is_empty() && ident.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_'))
        .then_some(ident)
}

/// Does the text before an operand end with the `in` of a `for … in`?
/// Reference forms (`in &name`, `in &mut name`) count too.
fn is_for_in_operand(before: &str) -> bool {
    let mut b = before.trim_end();
    b = b.strip_suffix("&mut").unwrap_or(b).trim_end();
    b = b.strip_suffix('&').unwrap_or(b).trim_end();
    b.ends_with(" in") || b == "in"
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new(path), src);
        let mut out = Vec::new();
        HashIterNondet::default().check(&file, &mut out);
        out
    }

    #[test]
    fn flags_for_in_over_hashmap() {
        let src = "\
use std::collections::HashMap;
fn dump(m: &HashMap<String, u64>, out: &mut Vec<u8>) {
    for (k, v) in m {
        out.extend(k.as_bytes());
        out.extend(v.to_le_bytes());
    }
}
";
        let f = run_at("crates/persist/src/checkpoint.rs", src);
        assert_eq!(f.len(), 1, "got {f:?}");
        assert_eq!(f[0].line, 3);
        assert_eq!(f[0].level, Level::Deny);
        assert!(f[0].message.contains("`m`"));
    }

    #[test]
    fn flags_iter_methods() {
        let src = "\
use std::collections::HashSet;
fn frame(ids: &HashSet<u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for id in ids.iter() {
        out.extend(id.to_le_bytes());
    }
    let _ = ids.keys();
    out
}
";
        let f = run_at("crates/serve/src/protocol.rs", src);
        // Line 4 (`ids.iter()`) and line 7 (`ids.keys()`).
        assert_eq!(f.len(), 2, "got {f:?}");
    }

    #[test]
    fn constructor_binding_is_tracked() {
        let src = "\
fn build() -> Vec<u8> {
    let mut seen = std::collections::HashMap::new();
    seen.insert(1u8, 2u8);
    let mut out = Vec::new();
    for (k, v) in seen.drain() {
        out.push(k);
        out.push(v);
    }
    out
}
";
        let f = run_at("crates/persist/src/journal.rs", src);
        assert_eq!(f.len(), 1, "got {f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn btreemap_is_clean() {
        let src = "\
use std::collections::BTreeMap;
fn dump(m: &BTreeMap<String, u64>, out: &mut Vec<u8>) {
    for (k, v) in m {
        out.extend(k.as_bytes());
        out.extend(v.to_le_bytes());
    }
}
";
        assert!(run_at("crates/persist/src/checkpoint.rs", src).is_empty());
    }

    #[test]
    fn point_lookups_are_clean() {
        let src = "\
use std::collections::HashMap;
fn get(m: &HashMap<String, u64>, k: &str) -> Option<u64> {
    m.get(k).copied()
}
";
        assert!(run_at("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_files_need_the_tag() {
        let src = "\
use std::collections::HashMap;
fn sum(m: &HashMap<u8, u64>) -> u64 {
    m.values().sum()
}
";
        assert!(run_at("crates/appliance/src/cup.rs", src).is_empty());
        let tagged = format!("// analyze: hot-path\n{src}");
        let f = run_at("crates/appliance/src/cup.rs", &tagged);
        assert_eq!(f.len(), 1, "hot-path tag opts the file in, got {f:?}");
    }

    #[test]
    fn tests_and_pragmas_skipped() {
        let src = "\
use std::collections::HashMap;
fn dump(m: &HashMap<u8, u8>) -> Vec<u8> {
    let mut v: Vec<(u8, u8)> = Vec::new();
    // lint: allow(HASH_ITER_NONDET) -- collected into v and sorted before emit below
    for (k, val) in m.iter() {
        v.push((*k, *val));
    }
    v.sort_unstable();
    v.iter().flat_map(|(a, b)| [*a, *b]).collect()
}
";
        let file = SourceFile::scan(Path::new("crates/persist/src/snapshot.rs"), src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(HashIterNondet::default())];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }
}
