//! PANIC_IN_LIB — panicking constructs in non-test library code.
//!
//! Inference must degrade to the error state ε, never abort: a stray
//! `unwrap()` in a sensor-fusion path takes the whole appliance down with
//! it. Flags `unwrap()/expect()`, the panicking macros, and unchecked
//! bare-index subscripts (`xs[i]`). Suppressible per line or per file with
//! `// lint: allow(PANIC_IN_LIB) -- reason`; the reason is mandatory.

use super::{find_all, word_boundary_before, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct PanicInLib;

const ID: &str = "PANIC_IN_LIB";

/// Method-call tokens that panic.
const PANIC_CALLS: [&str; 2] = [".unwrap()", ".expect("];
/// Macros that panic (matched at word boundary, with the `!`).
const PANIC_MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];

impl LintPass for PanicInLib {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "flags unwrap()/expect()/panic!/unreachable!/todo! and bare-index \
         subscripts (xs[i]) in non-test library code"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        for (idx, l) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if l.in_test {
                continue;
            }
            let code = &l.code;

            for needle in PANIC_CALLS {
                for _pos in find_all(code, needle) {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: lineno,
                        lint: ID,
                        message: format!(
                            "`{}` can panic; return a Result/Option or document the \
                             invariant with a pragma",
                            needle.trim_start_matches('.').trim_end_matches('('),
                        ),
                        level: Level::Deny,
                    });
                }
            }

            for needle in PANIC_MACROS {
                for pos in find_all(code, needle) {
                    if !word_boundary_before(code, pos) {
                        continue;
                    }
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: lineno,
                        lint: ID,
                        message: format!("`{needle}` aborts inference; degrade to ε instead"),
                        level: Level::Deny,
                    });
                }
            }

            for (pos, subscript) in bare_index_subscripts(code) {
                let _ = pos;
                findings.push(Finding {
                    file: file.path.clone(),
                    line: lineno,
                    lint: ID,
                    message: format!(
                        "unchecked index `[{subscript}]` can panic; use .get(), \
                         iterators, or assert the bound first"
                    ),
                    level: Level::Warn,
                });
            }
        }
    }
}

/// Find `expr[ident]` subscripts where the index is a single bare
/// identifier — the classic unchecked-loop-index shape. Literal indices
/// (`x[0]`), ranges (`x[a..b]`), arithmetic (`x[i + 1]`), and tuple keys
/// (`m[(i, j)]`) are *not* matched: the bare-ident form is where an
/// off-by-one loop bound most often escapes review.
fn bare_index_subscripts(code: &str) -> Vec<(usize, String)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for pos in find_all(code, "[") {
        // Receiver must end in an identifier char, `)`, or `]` — rules out
        // attributes `#[...]`, array types `[f64; 4]`, slice patterns.
        if pos == 0 {
            continue;
        }
        let prev = bytes[pos - 1] as char;
        if !(prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            continue;
        }
        let Some(close_rel) = code[pos + 1..].find(']') else {
            continue;
        };
        let inner = code[pos + 1..pos + 1 + close_rel].trim();
        let is_bare_ident = !inner.is_empty()
            && inner
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
            && inner.chars().all(|c| c.is_alphanumeric() || c == '_');
        if is_bare_ident {
            out.push((pos, inner.to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("t.rs"), src);
        let mut out = Vec::new();
        PanicInLib.check(&file, &mut out);
        out
    }

    /// Pragma suppression is applied by the driver, not the pass — go
    /// through [`crate::analyze_file`] for pragma-sensitive cases.
    fn run_suppressed(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("t.rs"), src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(PanicInLib)];
        crate::analyze_file(&file, &passes).findings
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let f = run("fn f(x: Option<u8>) {\n    x.unwrap();\n    x.expect(\"boom\");\n    panic!(\"no\");\n    unreachable!();\n}\n");
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|x| x.level == Level::Deny));
    }

    #[test]
    fn unwrap_or_is_clean() {
        let f = run("fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0).max(x.unwrap_or_default())\n}\n");
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn expect_err_and_debug_assert_clean() {
        assert!(run("fn f() { debug_assert!(true); assert!(1 > 0); }\n").is_empty());
    }

    #[test]
    fn flags_bare_index() {
        let f = run("fn f(xs: &[f64], i: usize) -> f64 {\n    xs[i]\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].level, Level::Warn);
        assert!(f[0].message.contains("[i]"));
    }

    #[test]
    fn literal_range_and_tuple_indices_clean() {
        let f = run("fn f(xs: &[f64], m: &M, i: usize) {\n    let _ = xs[0];\n    let _ = &xs[1..3];\n    let _ = m[(i, 0)];\n    let _ = xs[i + 1];\n    let a: [f64; 2] = [0.0; 2];\n    let _ = a;\n}\n");
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn strings_comments_tests_pragmas_skipped() {
        let src = "\
// panic!(\"in comment\")
fn f(x: Option<u8>) {
    let _s = \"unwrap() inside string\";
    x.unwrap() // lint: allow(PANIC_IN_LIB) -- checked Some above by caller contract
}
#[test]
fn t() { None::<u8>.unwrap(); }
";
        assert!(run_suppressed(src).is_empty());
    }

    #[test]
    fn file_pragma_covers_everything() {
        let src = "\
// lint: allow(PANIC_IN_LIB, file) -- dense kernel, bounds asserted at entry
fn f(xs: &[f64], i: usize) -> f64 { xs[i] }
fn g(x: Option<u8>) -> u8 { x.unwrap() }
";
        assert!(run_suppressed(src).is_empty());
    }
}
