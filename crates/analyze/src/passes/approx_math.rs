//! APPROX_MATH — raw transcendental calls in hot-path files.
//!
//! PR 9 concentrates every hot-loop exponential behind the vetted
//! `cqm-math::fastexp` entry points: `exp_exact` (bit-identical to
//! `f64::exp`, the default) and `exp_bounded` (the ≤ `EXP_BOUNDED_MAX_ULP`
//! polynomial path, opt-in via `EvalPrecision::BoundedUlp`). That funnel is
//! what makes the precision contract auditable — a reviewer can read one
//! module and know every approximation the evaluation pipeline is capable
//! of. A bare `.exp()` or `.powf()` sprinkled into a kernel later silently
//! widens that surface: it either misses the fast path (perf regression the
//! benches may not isolate) or, worse, gets "optimised" ad hoc without the
//! ULP sweep backing the bounded tier.
//!
//! Like [`HOT_LOOP_ALLOC`](super::HotLoopAlloc), the pass is opt-in per
//! file: it only runs on files carrying the `// analyze: hot-path` marker
//! comment, so config code and one-off tooling can call `f64::exp` freely.
//! Call sites with a genuine reason (e.g. a cold error path inside a tagged
//! file) are suppressed the usual way with
//! `// lint: allow(APPROX_MATH) -- reason`.

use super::{find_all, Finding, Level, LintPass, HOT_PATH_TAG};
use crate::scanner::SourceFile;

/// See module docs.
pub struct ApproxMath;

const ID: &str = "APPROX_MATH";

/// Method-call patterns that bypass the vetted `cqm-math` funnel, paired
/// with the entry point the finding should steer the author toward.
///
/// The leading `.` plus trailing `(` keeps the match to actual method
/// calls: `fastexp::exp_exact(x)` and `F64x4::exp_bounded` contain the
/// substring `exp` but never `.exp(`.
const RAW_CALLS: &[(&str, &str)] = &[
    (".exp(", "cqm_math::fastexp::exp_exact (or exp_bounded on a declared \
               `EvalPrecision::BoundedUlp` path)"),
    (".powf(", "cqm_math (powi, ln_checked, or a precomputed table)"),
];

impl LintPass for ApproxMath {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "flags direct .exp()/.powf() calls in files tagged \
         `// analyze: hot-path`; route them through the vetted cqm-math \
         entry points so the precision contract stays in one module"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !file.has_tag(HOT_PATH_TAG) {
            return;
        }
        let joined = file.joined_code();
        for &(pattern, route) in RAW_CALLS {
            for pos in find_all(joined, pattern) {
                let lineno = file.line_of(pos);
                let Some(l) = file.lines.get(lineno - 1) else {
                    continue;
                };
                if l.in_test {
                    continue;
                }
                let method = &pattern[1..pattern.len() - 1];
                findings.push(Finding {
                    file: file.path.clone(),
                    line: lineno,
                    lint: ID,
                    message: format!(
                        "direct `.{method}()` in a hot-path file bypasses the \
                         vetted math funnel; route through {route} so the \
                         precision contract stays auditable"
                    ),
                    level: Level::Warn,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("t.rs"), src);
        let mut out = Vec::new();
        ApproxMath.check(&file, &mut out);
        out
    }

    const TAG: &str = "// analyze: hot-path\n";

    #[test]
    fn untagged_file_is_ignored() {
        let f = run("pub fn g(x: f64) -> f64 {\n    x.exp() + x.powf(2.0)\n}\n");
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn tagged_file_flags_exp_and_powf() {
        let src = format!(
            "{TAG}pub fn g(x: f64, s: f64) -> f64 {{\n\
             \x20   let a = (-0.5 * x * x).exp();\n\
             \x20   a * s.powf(0.5)\n\
             }}\n"
        );
        let f = run(&src);
        assert_eq!(f.len(), 2, "got {f:?}");
        assert!(f.iter().all(|x| x.level == Level::Warn));
        assert!(f[0].message.contains("exp_exact"), "{}", f[0].message);
        assert!(f[1].message.contains(".powf()"), "{}", f[1].message);
    }

    #[test]
    fn vetted_entry_points_are_not_method_calls() {
        let src = format!(
            "{TAG}use cqm_math::fastexp;\n\
             pub fn g(x: f64) -> f64 {{\n\
             \x20   fastexp::exp_exact(-0.5 * x * x) + fastexp::exp_bounded(x)\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "free-function calls misread: {f:?}");
    }

    #[test]
    fn test_module_calls_are_skipped() {
        let src = format!(
            "{TAG}pub fn g(x: f64) -> f64 {{\n\
             \x20   x * 2.0\n\
             }}\n\
             #[cfg(test)]\n\
             mod tests {{\n\
             \x20   fn reference(x: f64) -> f64 {{\n\
             \x20       x.exp()\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "test oracle flagged: {f:?}");
    }

    #[test]
    fn pragma_suppresses_a_reasoned_call() {
        let src = format!(
            "{TAG}pub fn cold_diagnostic(x: f64) -> f64 {{\n\
             \x20   // lint: allow(APPROX_MATH) -- cold error-report path, not the kernel loop\n\
             \x20   x.exp()\n\
             }}\n"
        );
        let file = SourceFile::scan(Path::new("t.rs"), &src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(ApproxMath)];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }
}
