//! TIME_IN_LOGIC — wall-clock reads inside deterministic compute paths.
//!
//! Every numeric result in this workspace must be a pure function of its
//! inputs: that is what makes served answers comparable bit-for-bit with
//! the in-process pipeline and recovery provable by replay. An
//! `Instant::now()` or `SystemTime::now()` inside a compute path smuggles
//! the scheduler into the dataflow — two identical requests stop producing
//! identical answers, and a journal replay can no longer reconstruct the
//! original run. Time is legitimate at the service edge (timeouts,
//! metrics, backoff); inside the pipeline it must arrive *as data* (an
//! explicit timestamp argument, like the sensor cue ages in the context
//! quality measure).
//!
//! The pass runs on the compute crates (`math`, `fuzzy`, `cluster`,
//! `anfis`, `classify`, `stats`, `core`, `sensors`, `persist`,
//! `parallel`) plus any file tagged `// analyze: hot-path`. It is
//! warn-level: the string match cannot see where the value flows, so
//! deadline arithmetic inside a tagged file needs a reasoned pragma rather
//! than a code change.

use super::{find_all, word_boundary_before, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct TimeInLogic {
    /// Path fragments this pass applies to; empty means every file.
    /// Files tagged `hot-path` are always in scope.
    path_filters: Vec<&'static str>,
}

const ID: &str = "TIME_IN_LOGIC";

/// Wall-clock reads. `.elapsed()` is included: it reads the clock *now*
/// even when the start instant arrived as a parameter.
const CLOCK_READS: &[(&str, bool)] = &[
    ("Instant::now", true),
    ("SystemTime::now", true),
    (".elapsed()", false),
];

impl Default for TimeInLogic {
    fn default() -> Self {
        TimeInLogic {
            path_filters: vec![
                "math/src",
                "fuzzy/src",
                "cluster/src",
                "anfis/src",
                "classify/src",
                "stats/src",
                "core/src",
                "sensors/src",
                "persist/src",
                "parallel/src",
            ],
        }
    }
}

impl TimeInLogic {
    /// A variant with no path restriction (used by tests and fixtures).
    pub fn unrestricted() -> Self {
        TimeInLogic {
            path_filters: Vec::new(),
        }
    }
}

impl LintPass for TimeInLogic {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "compute paths must not read the wall clock (Instant/SystemTime); \
         results must be pure functions of inputs — pass timestamps in as \
         data"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !self.path_filters.is_empty() && !file.has_tag(super::HOT_PATH_TAG) {
            let p = file.path.to_string_lossy().replace('\\', "/");
            if !self.path_filters.iter().any(|frag| p.contains(frag)) {
                return;
            }
        }
        for (idx, l) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if l.in_test {
                continue;
            }
            let code = &l.code;
            for &(pat, needs_boundary) in CLOCK_READS {
                for pos in find_all(code, pat) {
                    if needs_boundary && !word_boundary_before(code, pos) {
                        continue;
                    }
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: lineno,
                        lint: ID,
                        message: format!(
                            "`{pat}` reads the wall clock in a deterministic \
                             compute path; results must be pure functions of \
                             inputs — inject the timestamp as data, or keep the \
                             read at the service edge (pragma if this is \
                             metrics/timeout plumbing)"
                        ),
                        level: Level::Warn,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new(path), src);
        let mut out = Vec::new();
        TimeInLogic::default().check(&file, &mut out);
        out
    }

    #[test]
    fn flags_instant_now_in_compute_crate() {
        let src = "\
pub fn decayed(q: f64, born: std::time::Instant) -> f64 {
    let age = std::time::Instant::now() - born;
    q * (-age.as_secs_f64()).exp()
}
";
        let f = run_at("crates/sensors/src/cue.rs", src);
        assert_eq!(f.len(), 1, "got {f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].level, Level::Warn);
    }

    #[test]
    fn flags_elapsed_and_system_time() {
        let src = "\
pub fn staleness(start: std::time::Instant) -> f64 {
    start.elapsed().as_secs_f64()
}
pub fn stamp() -> u64 {
    std::time::SystemTime::now().elapsed().unwrap().as_secs()
}
";
        let f = run_at("crates/core/src/model.rs", src);
        // Line 2 (.elapsed), line 5 (SystemTime::now + .elapsed).
        assert_eq!(f.len(), 3, "got {f:?}");
    }

    #[test]
    fn timestamp_as_data_is_clean() {
        let src = "\
pub fn decayed(q: f64, age_s: f64) -> f64 {
    debug_assert!(age_s >= 0.0);
    q * (-age_s).exp()
}
";
        assert!(run_at("crates/sensors/src/cue.rs", src).is_empty());
    }

    #[test]
    fn service_edge_crates_are_out_of_scope() {
        let src = "\
fn backoff() {
    let t0 = std::time::Instant::now();
    let _ = t0;
}
";
        assert!(run_at("crates/resilience/src/supervisor.rs", src).is_empty());
        assert!(run_at("crates/serve/src/server.rs", src).is_empty());
        assert!(run_at("crates/bench/src/perf.rs", src).is_empty());
    }

    #[test]
    fn hot_path_tag_opts_a_file_in() {
        let src = "\
// analyze: hot-path
fn deadline() {
    let t0 = std::time::Instant::now();
    let _ = t0;
}
";
        let f = run_at("crates/serve/src/queue.rs", src);
        assert_eq!(f.len(), 1, "got {f:?}");
    }

    #[test]
    fn tests_and_pragmas_skipped() {
        let src = "\
fn stamp() -> u64 {
    // lint: allow(TIME_IN_LOGIC) -- journal header metadata only, never replayed into results
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
    }
}
";
        let file = SourceFile::scan(Path::new("crates/persist/src/journal.rs"), src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(TimeInLogic::default())];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }
}
