//! EPSILON_DOMAIN — `Quality::Value` must come from the normalizer.
//!
//! The invariant `q ∈ [0,1] ∪ {ε}` lives in exactly one place: the
//! normalization function `L` (`core/src/normalize.rs::normalize`). Any
//! other construction of `Quality::Value(...)` from a raw literal or
//! expression bypasses the range fold and can smuggle an out-of-range or
//! NaN quality into the pipeline. This pass allows constructions inside
//! `fn normalize*` bodies and pass-through rewraps of a plain local
//! variable; everything else must be rewritten as `normalize(x)` or carry a
//! pragma.

use super::{find_all, matching_brace, matching_paren, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct EpsilonDomain {
    /// Path fragments this pass applies to; empty means every file.
    path_filters: Vec<&'static str>,
}

const ID: &str = "EPSILON_DOMAIN";

impl Default for EpsilonDomain {
    fn default() -> Self {
        EpsilonDomain {
            path_filters: vec!["core/src/quality.rs", "core/src/normalize.rs"],
        }
    }
}

impl EpsilonDomain {
    /// A variant with no path restriction (used by tests and fixtures).
    pub fn unrestricted() -> Self {
        EpsilonDomain {
            path_filters: Vec::new(),
        }
    }
}

impl LintPass for EpsilonDomain {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "Quality::Value(..) may only be constructed inside the L(.) \
         normalizer; elsewhere call normalize() so the [0,1] u {eps} fold \
         is applied"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !self.path_filters.is_empty() {
            let p = file.path.to_string_lossy().replace('\\', "/");
            if !self.path_filters.iter().any(|frag| p.ends_with(frag)) {
                return;
            }
        }
        let joined = file.joined_code();
        let exempt = normalizer_spans(joined);

        for pos in find_all(joined, "Quality::Value(") {
            if exempt.iter().any(|&(a, b)| pos >= a && pos < b) {
                continue;
            }
            let line = file.line_of(pos + 1);
            if file.lines[line - 1].in_test {
                continue;
            }
            let open = pos + "Quality::Value".len();
            let inner = match matching_paren(joined, open) {
                Some(end) => joined[open + 1..end - 1].trim(),
                None => "",
            };
            // A lone local variable is a pass-through rewrap (e.g. matching
            // on an already-normalized quality); anything with structure —
            // literals, arithmetic, calls — is a fresh construction.
            if is_bare_local(inner) {
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line,
                lint: ID,
                message: format!(
                    "Quality::Value({inner}) bypasses the L(.) normalizer; \
                     construct quality values via normalize() so the \
                     [0,1] u {{eps}} fold applies"
                ),
                level: Level::Deny,
            });
        }
    }
}

/// Byte spans of bodies of functions named `normalize*` — the one family
/// allowed to construct `Quality::Value` directly.
fn normalizer_spans(joined: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for pos in find_all(joined, "fn normalize") {
        let after = pos + "fn normalize".len();
        // Accept `fn normalize(` and `fn normalize_batch(` etc., but not an
        // unrelated identifier like `fn normalized_weights` — a suffix must
        // still begin with `_` or `(`.
        match joined[after..].chars().next() {
            Some('(') | Some('_') | Some('<') => {}
            _ => continue,
        }
        let Some(open) = joined[after..].find('{').map(|o| after + o) else {
            continue;
        };
        if let Some(end) = matching_brace(joined, open) {
            spans.push((open, end));
        }
    }
    spans
}

/// Is `inner` a single plain local variable (optionally dereferenced)?
fn is_bare_local(inner: &str) -> bool {
    let t = inner.trim_start_matches('*').trim_start_matches('&');
    !t.is_empty()
        && t.chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && t.chars().all(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new(path), src);
        let mut out = Vec::new();
        EpsilonDomain::default().check(&file, &mut out);
        out
    }

    #[test]
    fn flags_raw_literal_construction() {
        let f = run_at(
            "crates/core/src/quality.rs",
            "fn bad() -> Quality {\n    Quality::Value(1.2)\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].level, Level::Deny);
        assert!(f[0].message.contains("1.2"));
    }

    #[test]
    fn flags_arithmetic_construction() {
        let f = run_at(
            "crates/core/src/quality.rs",
            "fn bad(x: f64) -> Quality {\n    Quality::Value(x * 0.5 + 0.1)\n}\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn normalize_fn_is_exempt() {
        let src = "\
pub fn normalize(x: f64) -> Quality {
    if (0.0..=1.0).contains(&x) {
        Quality::Value(x)
    } else if (-0.5..0.0).contains(&x) {
        Quality::Value(-x)
    } else if x > 1.0 && x <= 1.5 {
        Quality::Value(2.0 - x)
    } else {
        Quality::Epsilon
    }
}
";
        assert!(run_at("crates/core/src/normalize.rs", src).is_empty());
    }

    #[test]
    fn bare_variable_rewrap_is_clean() {
        let f = run_at(
            "crates/core/src/quality.rs",
            "fn rewrap(v: f64) -> Quality {\n    Quality::Value(v)\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn other_files_ignored_by_default() {
        let f = run_at(
            "crates/appliance/src/office.rs",
            "fn q() -> Quality { Quality::Value(0.9) }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn tests_and_pragmas_skipped() {
        // Suppression is the driver's job now, so route through analyze_file.
        let src = "\
fn covered() -> Quality {
    // lint: allow(EPSILON_DOMAIN) -- boundary value proven in [0,1] by caller
    Quality::Value(0.0)
}
#[cfg(test)]
mod tests {
    fn t() -> Quality { Quality::Value(9.0) }
}
";
        let file = SourceFile::scan(Path::new("crates/core/src/quality.rs"), src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(EpsilonDomain::default())];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn normalized_weights_fn_is_not_exempt() {
        let src = "\
fn normalized_weights() -> Quality {
    Quality::Value(0.3)
}
";
        assert_eq!(run_at("crates/core/src/normalize.rs", src).len(), 1);
    }
}
