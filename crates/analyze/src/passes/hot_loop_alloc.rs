//! HOT_LOOP_ALLOC — heap allocation inside loops of hot-path files.
//!
//! The PR 4 runtime contract is that steady-state evaluation allocates
//! nothing: scratch buffers are caller-provided and reused, and the
//! data-parallel kernels work on preallocated slabs. A `Vec::new()`,
//! `vec![...]`, `.collect()` or `.clone()` inside a loop of one of those
//! kernels silently reintroduces per-iteration allocation and undoes the
//! optimisation without failing any test.
//!
//! The pass is opt-in per file: it only runs on files carrying the
//! `// analyze: hot-path` marker comment, so ordinary setup/config code is
//! not flooded with findings. Loop bodies come from the scanner's block
//! tree ([`BlockKind::Loop`] spans); allocations that are genuinely bounded
//! (e.g. once per accepted cluster center, not once per data point) are
//! suppressed the usual way with `// lint: allow(HOT_LOOP_ALLOC) -- reason`.

use std::collections::BTreeSet;

use super::{find_all, word_boundary_before, Finding, Level, LintPass};
use crate::scanner::{BlockKind, SourceFile};

/// See module docs.
pub struct HotLoopAlloc;

const ID: &str = "HOT_LOOP_ALLOC";

/// The file tag that opts a file into this pass.
pub const HOT_PATH_TAG: &str = "hot-path";

impl LintPass for HotLoopAlloc {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "flags Vec::new/vec![/.collect()/.clone()/format!/.to_string()/\
         Box::new inside loops of files tagged `// analyze: hot-path`"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !file.has_tag(HOT_PATH_TAG) {
            return;
        }
        let joined = file.joined_code();
        let ranges = loop_body_ranges(file);
        if ranges.is_empty() {
            return;
        }
        // Nested loop bodies overlap; report each match site once.
        let mut seen = BTreeSet::new();
        for (pos, alloc) in allocation_sites(joined) {
            if !ranges.iter().any(|&(lo, hi)| pos >= lo && pos < hi) {
                continue;
            }
            let lineno = file.line_of(pos);
            if !seen.insert((pos, alloc)) {
                continue;
            }
            let Some(l) = file.lines.get(lineno - 1) else {
                continue;
            };
            if l.in_test {
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line: lineno,
                lint: ID,
                message: format!(
                    "`{alloc}` allocates on every loop iteration in a hot-path \
                     file; hoist the buffer out of the loop or reuse scratch \
                     (suppress with a pragma if the allocation is bounded)"
                ),
                level: Level::Warn,
            });
        }
    }
}

/// Byte ranges (in the joined code view) of `for`/`while`/`loop` bodies,
/// opening brace excluded — straight from the scanner's block tree.
///
/// Loop headers are excluded: `for x in ys.clone()` runs its allocation
/// once, not per iteration. The tree classifier already tells an
/// `impl Trait for Type` apart from a `for` loop (the ` in ` token) and a
/// bare `loop {` from a method called `loop` (empty header required).
fn loop_body_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    file.block_tree()
        .blocks
        .iter()
        .filter(|b| b.kind == BlockKind::Loop)
        .map(|b| b.body())
        .collect()
}

/// `(byte offset, pattern)` of every allocation site in the code view.
fn allocation_sites(joined: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for pos in find_all(joined, "Vec::new") {
        if word_boundary_before(joined, pos) {
            out.push((pos, "Vec::new"));
        }
    }
    for pos in find_all(joined, "vec!") {
        if word_boundary_before(joined, pos) {
            out.push((pos, "vec!["));
        }
    }
    // `.collect()` and the turbofish `.collect::<T>()` both allocate.
    for pos in find_all(joined, ".collect") {
        let next = joined.as_bytes().get(pos + ".collect".len()).copied();
        if next == Some(b'(') || next == Some(b':') {
            out.push((pos, ".collect()"));
        }
    }
    out.extend(find_all(joined, ".clone()").into_iter().map(|p| (p, ".clone()")));
    // String formatting and boxing allocate every iteration just the same.
    for pos in find_all(joined, "format!") {
        if word_boundary_before(joined, pos) {
            out.push((pos, "format!"));
        }
    }
    out.extend(
        find_all(joined, ".to_string()")
            .into_iter()
            .map(|p| (p, ".to_string()")),
    );
    for pos in find_all(joined, "Box::new") {
        if word_boundary_before(joined, pos) {
            out.push((pos, "Box::new"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("t.rs"), src);
        let mut out = Vec::new();
        HotLoopAlloc.check(&file, &mut out);
        out
    }

    const TAG: &str = "// analyze: hot-path\n";

    #[test]
    fn untagged_file_is_ignored() {
        let f = run("fn f(n: usize) {\n    for _ in 0..n {\n        let v = vec![0.0; 8];\n        let _ = v;\n    }\n}\n");
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn flags_all_four_patterns_in_loops() {
        let src = format!(
            "{TAG}fn f(n: usize, xs: &[f64]) {{\n\
             \x20   for _ in 0..n {{\n\
             \x20       let a: Vec<f64> = Vec::new();\n\
             \x20       let b = vec![0.0; 8];\n\
             \x20       let c: Vec<f64> = xs.iter().copied().collect();\n\
             \x20       let d = b.clone();\n\
             \x20       let _ = (a, c, d);\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert_eq!(f.len(), 4, "got {f:?}");
        assert!(f.iter().all(|x| x.level == Level::Warn));
        let msgs: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
        for pat in ["Vec::new", "vec![", ".collect()", ".clone()"] {
            assert!(msgs.iter().any(|m| m.contains(pat)), "missing {pat}");
        }
    }

    #[test]
    fn turbofish_collect_and_while_and_loop_bodies() {
        let src = format!(
            "{TAG}fn f(mut n: usize) {{\n\
             \x20   while n > 0 {{\n\
             \x20       let _ = (0..n).collect::<Vec<_>>();\n\
             \x20       n -= 1;\n\
             \x20   }}\n\
             \x20   loop {{\n\
             \x20       let _: Vec<f64> = Vec::new();\n\
             \x20       break;\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert_eq!(f.len(), 2, "got {f:?}");
    }

    #[test]
    fn allocations_outside_loops_are_clean() {
        let src = format!(
            "{TAG}fn f(xs: &[f64]) -> Vec<f64> {{\n\
             \x20   let mut out: Vec<f64> = xs.to_vec();\n\
             \x20   let extra = vec![1.0];\n\
             \x20   out.extend(extra.iter().copied());\n\
             \x20   out\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let src = format!(
            "{TAG}struct S;\n\
             impl Clone for S {{\n\
             \x20   fn clone(&self) -> S {{\n\
             \x20       let _ = vec![0u8; 2];\n\
             \x20       S\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "impl-for block misread as loop: {f:?}");
    }

    #[test]
    fn loop_header_allocation_is_clean() {
        let src = format!(
            "{TAG}fn f(xs: &Vec<f64>) {{\n\
             \x20   for x in xs.clone() {{\n\
             \x20       let _ = x;\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "header clone runs once, got {f:?}");
    }

    #[test]
    fn pragma_and_test_code_suppress() {
        // Suppression is the driver's job now, so route through analyze_file.
        let src = format!(
            "{TAG}fn f(n: usize) {{\n\
             \x20   for _ in 0..n {{\n\
             \x20       // lint: allow(HOT_LOOP_ALLOC) -- bounded by accepted centers, not data size\n\
             \x20       let _ = vec![0.0; 4];\n\
             \x20   }}\n\
             }}\n\
             #[cfg(test)]\n\
             mod tests {{\n\
             \x20   fn t(n: usize) {{\n\
             \x20       for _ in 0..n {{\n\
             \x20           let _ = vec![0.0; 4];\n\
             \x20       }}\n\
             \x20   }}\n\
             }}\n"
        );
        let file = SourceFile::scan(Path::new("t.rs"), &src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(HotLoopAlloc)];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn flags_format_to_string_and_box_in_loops() {
        let src = format!(
            "{TAG}fn f(n: usize) {{\n\
             \x20   for i in 0..n {{\n\
             \x20       let a = format!(\"step {{i}}\");\n\
             \x20       let b = i.to_string();\n\
             \x20       let c = Box::new(i);\n\
             \x20       let _ = (a, b, c);\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert_eq!(f.len(), 3, "got {f:?}");
        let msgs: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
        for pat in ["format!", ".to_string()", "Box::new"] {
            assert!(msgs.iter().any(|m| m.contains(pat)), "missing {pat}");
        }
    }

    #[test]
    fn format_and_box_outside_loops_are_clean() {
        let src = format!(
            "{TAG}fn f(code: u8) -> String {{\n\
             \x20   let header = format!(\"code={{code}}\");\n\
             \x20   let boxed = Box::new(code);\n\
             \x20   let _ = boxed;\n\
             \x20   header.to_string()\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn closure_body_inside_loop_is_still_the_loop_body() {
        // Block-tree spans nest: an allocation inside a closure that is
        // itself inside a loop body is still per-iteration work.
        let src = format!(
            "{TAG}fn f(n: usize, xs: &[Vec<f64>]) {{\n\
             \x20   for i in 0..n {{\n\
             \x20       let _ = xs.iter().map(|x| x.clone()).count();\n\
             \x20       let _ = i;\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert_eq!(f.len(), 1, "got {f:?}");
        assert!(f[0].message.contains(".clone()"));
    }
}
