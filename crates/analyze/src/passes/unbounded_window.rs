//! UNBOUNDED_WINDOW — growable collections without an eviction bound in
//! streaming files.
//!
//! The online-adaptation contract (PR 10) is that every sample store on a
//! long-lived streaming path is O(capacity) forever: the sliding window
//! evicts oldest-first on every push past its bound. A `.push(...)` /
//! `.insert(...)` / `.extend(...)` on a growable collection with no
//! eviction or cap call anywhere in an enclosing block is the classic slow
//! leak — it passes every test (tests run minutes, deployments run months)
//! and only shows up as an OOM kill in week six.
//!
//! The pass is opt-in per file: it only runs on files carrying the
//! `// analyze: streaming` marker comment, so batch training code that
//! legitimately accumulates into a `Vec` is not flooded with findings. A
//! growth call is bounded when any block on its ancestor chain (innermost
//! statement block up through the `impl`) contains an eviction/cap call —
//! `.pop_front()`, `.truncate()`, `.drain()`, … — so a `push` in one method
//! is covered by the eviction its sibling method performs on the same
//! store. Collections that are genuinely bounded some other way (split
//! buffers capped by the window they copy from, say) are suppressed the
//! usual way with `// lint: allow(UNBOUNDED_WINDOW) -- reason`.

use std::collections::BTreeSet;

use super::{find_all, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct UnboundedWindow;

const ID: &str = "UNBOUNDED_WINDOW";

/// The file tag that opts a file into this pass.
pub const STREAMING_TAG: &str = "streaming";

/// Calls that grow a collection. Matched literally (trailing `(` included)
/// so `.push(` does not also hit `.push_back(`.
const GROWTH_CALLS: &[&str] = &[
    ".push(",
    ".push_back(",
    ".push_front(",
    ".insert(",
    ".extend(",
    ".extend_from_slice(",
    ".append(",
];

/// Calls that evict, cap, or shrink a collection; any one of them in an
/// enclosing block bounds the growth site.
const EVICTION_CALLS: &[&str] = &[
    ".pop(",
    ".pop_front(",
    ".pop_back(",
    ".truncate(",
    ".drain(",
    ".clear(",
    ".remove(",
    ".split_off(",
    ".retain(",
    ".swap_remove(",
    ".dedup(",
];

impl LintPass for UnboundedWindow {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "flags collection growth calls with no eviction/cap call in an \
         enclosing block, in files tagged `// analyze: streaming`"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !file.has_tag(STREAMING_TAG) {
            return;
        }
        let joined = file.joined_code();
        let mut seen = BTreeSet::new();
        for &growth in GROWTH_CALLS {
            for pos in find_all(joined, growth) {
                let lineno = file.line_of(pos);
                let Some(l) = file.lines.get(lineno - 1) else {
                    continue;
                };
                if l.in_test {
                    continue;
                }
                if !seen.insert((pos, growth)) {
                    continue;
                }
                if bounded_by_ancestor(file, pos) {
                    continue;
                }
                let shown = growth.trim_end_matches('(');
                findings.push(Finding {
                    file: file.path.clone(),
                    line: lineno,
                    lint: ID,
                    message: format!(
                        "`{shown}(...)` grows a collection in a streaming \
                         file with no eviction or cap call (.pop_front/\
                         .truncate/.drain/...) in any enclosing block; bound \
                         the window (suppress with a pragma if the growth is \
                         capped another way)"
                    ),
                    level: Level::Warn,
                });
            }
        }
    }
}

/// Does any block on the ancestor chain of `pos` — innermost block out to
/// the top-level item — contain an eviction/cap call? Checking the whole
/// ancestor span (not just the growth site's own function) means a `push`
/// in one method is bounded by the `pop_front` a sibling method of the same
/// `impl` performs on the shared store.
fn bounded_by_ancestor(file: &SourceFile, pos: usize) -> bool {
    let tree = file.block_tree();
    let mut at = tree.enclosing_at(pos);
    while let Some(block) = at.and_then(|i| tree.blocks.get(i)) {
        if EVICTION_CALLS
            .iter()
            .any(|&e| file.span_contains_call(block.body(), e))
        {
            return true;
        }
        at = block.parent;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new("t.rs"), src);
        let mut out = Vec::new();
        UnboundedWindow.check(&file, &mut out);
        out
    }

    const TAG: &str = "// analyze: streaming\n";

    #[test]
    fn untagged_file_is_ignored() {
        let f = run(
            "fn f(log: &mut Vec<f64>, x: f64) {\n\
             \x20   log.push(x);\n\
             }\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn growth_without_eviction_is_flagged() {
        let src = format!(
            "{TAG}fn observe(log: &mut Vec<f64>, x: f64) {{\n\
             \x20   log.push(x);\n\
             }}\n"
        );
        let f = run(&src);
        assert_eq!(f.len(), 1, "got {f:?}");
        assert_eq!(f[0].lint, ID);
        assert_eq!(f[0].level, Level::Warn);
        assert!(f[0].message.contains(".push(...)"), "got {}", f[0].message);
    }

    #[test]
    fn eviction_in_same_function_bounds_the_growth() {
        let src = format!(
            "{TAG}use std::collections::VecDeque;\n\
             fn observe(log: &mut VecDeque<f64>, cap: usize, x: f64) {{\n\
             \x20   while log.len() >= cap {{\n\
             \x20       log.pop_front();\n\
             \x20   }}\n\
             \x20   log.push_back(x);\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn eviction_in_sibling_method_of_same_impl_bounds_the_growth() {
        // The ancestor chain of the push reaches the impl block, whose span
        // covers the sibling method that evicts from the shared store.
        let src = format!(
            "{TAG}struct W {{ xs: Vec<f64> }}\n\
             impl W {{\n\
             \x20   fn grow(&mut self, x: f64) {{\n\
             \x20       self.xs.push(x);\n\
             \x20   }}\n\
             \x20   fn cap(&mut self, n: usize) {{\n\
             \x20       self.xs.truncate(n);\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn eviction_in_unrelated_item_does_not_bound() {
        // `other` evicts its own store, but it is no ancestor of `grow`.
        let src = format!(
            "{TAG}fn grow(xs: &mut Vec<f64>, x: f64) {{\n\
             \x20   xs.push(x);\n\
             }}\n\
             fn other(ys: &mut Vec<f64>) {{\n\
             \x20   ys.clear();\n\
             }}\n"
        );
        let f = run(&src);
        assert_eq!(f.len(), 1, "got {f:?}");
    }

    #[test]
    fn all_growth_patterns_are_recognized() {
        let src = format!(
            "{TAG}use std::collections::{{BTreeMap, VecDeque}};\n\
             fn f(v: &mut Vec<f64>, d: &mut VecDeque<f64>, m: &mut BTreeMap<u64, f64>, o: Vec<f64>) {{\n\
             \x20   v.push(1.0);\n\
             \x20   v.extend(o.iter().copied());\n\
             \x20   v.extend_from_slice(&[2.0]);\n\
             \x20   d.push_back(3.0);\n\
             \x20   d.push_front(4.0);\n\
             \x20   m.insert(0, 5.0);\n\
             \x20   let mut v2 = o;\n\
             \x20   v.append(&mut v2);\n\
             }}\n"
        );
        let f = run(&src);
        assert_eq!(f.len(), 7, "got {f:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let src = format!(
            "{TAG}#[cfg(test)]\n\
             mod tests {{\n\
             \x20   fn t(xs: &mut Vec<f64>) {{\n\
             \x20       xs.push(0.0);\n\
             \x20   }}\n\
             }}\n"
        );
        let f = run(&src);
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn pragma_suppresses_through_the_driver() {
        let src = format!(
            "{TAG}fn split(xs: &[f64]) -> Vec<f64> {{\n\
             \x20   let mut out = Vec::new();\n\
             \x20   for &x in xs {{\n\
             \x20       // lint: allow(UNBOUNDED_WINDOW) -- bounded by the input slice length\n\
             \x20       out.push(x);\n\
             \x20   }}\n\
             \x20   out\n\
             }}\n"
        );
        let file = SourceFile::scan(Path::new("t.rs"), &src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(UnboundedWindow)];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }
}
