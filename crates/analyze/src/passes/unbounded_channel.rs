//! UNBOUNDED_CHANNEL — unbounded `mpsc::channel()` in service paths.
//!
//! The serve layer's overload story is *bounded-queue admission control*:
//! every buffer between accept and answer has a fixed capacity and an
//! explicit policy (reject, drop-oldest, block) for when it fills. One
//! `mpsc::channel()` hidden behind that story reintroduces an elastic
//! buffer that absorbs overload silently until the process dies of memory
//! pressure instead of shedding load at admission — the exact failure mode
//! the `BoundedQueue` exists to prevent.
//!
//! In `serve`, `resilience`, and `parallel` source, every channel must be
//! `mpsc::sync_channel(cap)` with a documented capacity (or carry a pragma
//! explaining why backpressure is enforced upstream). The pattern matches
//! `channel(` and the turbofish `channel::<T>(` at a word boundary, which
//! skips `sync_channel` and helper names like `apply_channel` on its own.

use super::{find_all, word_boundary_before, Finding, Level, LintPass};
use crate::scanner::SourceFile;

/// See module docs.
pub struct UnboundedChannel {
    /// Path fragments this pass applies to; empty means every file.
    path_filters: Vec<&'static str>,
}

const ID: &str = "UNBOUNDED_CHANNEL";

impl Default for UnboundedChannel {
    fn default() -> Self {
        UnboundedChannel {
            path_filters: vec!["serve/src", "resilience/src", "parallel/src"],
        }
    }
}

impl UnboundedChannel {
    /// A variant with no path restriction (used by tests and fixtures).
    pub fn unrestricted() -> Self {
        UnboundedChannel {
            path_filters: Vec::new(),
        }
    }
}

impl LintPass for UnboundedChannel {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "serve/resilience/parallel paths must use mpsc::sync_channel(cap), \
         not the unbounded mpsc::channel(); elastic buffers defeat \
         bounded-queue admission control"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if !self.path_filters.is_empty() {
            let p = file.path.to_string_lossy().replace('\\', "/");
            if !self.path_filters.iter().any(|frag| p.contains(frag)) {
                return;
            }
        }
        for (idx, l) in file.lines.iter().enumerate() {
            let lineno = idx + 1;
            if l.in_test {
                continue;
            }
            let code = &l.code;
            for pat in ["channel(", "channel::<"] {
                for pos in find_all(code, pat) {
                    if !word_boundary_before(code, pos) {
                        continue;
                    }
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: lineno,
                        lint: ID,
                        message: "unbounded `mpsc::channel()` in a bounded-queue \
                                  service path; use `mpsc::sync_channel(cap)` with \
                                  a documented capacity (or a pragma saying where \
                                  backpressure is enforced)"
                            .to_string(),
                        level: Level::Deny,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::scan(Path::new(path), src);
        let mut out = Vec::new();
        UnboundedChannel::default().check(&file, &mut out);
        out
    }

    #[test]
    fn flags_unbounded_channel_in_serve() {
        let f = run_at(
            "crates/serve/src/server.rs",
            "fn session() {\n    let (tx, rx) = std::sync::mpsc::channel::<u8>();\n    let _ = (tx, rx);\n}\n",
        );
        assert_eq!(f.len(), 1, "got {f:?}");
        assert_eq!(f[0].level, Level::Deny);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn flags_plain_call_form() {
        let f = run_at(
            "crates/resilience/src/supervisor.rs",
            "use std::sync::mpsc::channel;\nfn f() {\n    let (tx, rx) = channel();\n    let _ = (tx, rx);\n}\n",
        );
        // The `use` line ends in `;`, not `(` — only the call fires.
        assert_eq!(f.len(), 1, "got {f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn sync_channel_is_clean() {
        let f = run_at(
            "crates/serve/src/server.rs",
            "fn session() {\n    let (tx, rx) = std::sync::mpsc::sync_channel::<u8>(1);\n    let _ = (tx, rx);\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn helper_names_are_not_channels() {
        let f = run_at(
            "crates/parallel/src/pool.rs",
            "fn f() {\n    apply_channel(3);\n    let c = make_channel();\n    let _ = c;\n}\n",
        );
        assert!(f.is_empty(), "got {f:?}");
    }

    #[test]
    fn out_of_scope_crates_ignored_by_default() {
        let f = run_at(
            "crates/appliance/src/bus.rs",
            "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u8>();\n    let _ = (tx, rx);\n}\n",
        );
        assert!(f.is_empty());
        let file = SourceFile::scan(
            Path::new("crates/appliance/src/bus.rs"),
            "fn f() {\n    let (tx, rx) = std::sync::mpsc::channel::<u8>();\n    let _ = (tx, rx);\n}\n",
        );
        let mut out = Vec::new();
        UnboundedChannel::unrestricted().check(&file, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn tests_and_pragmas_skipped() {
        let src = "\
fn f() {
    // lint: allow(UNBOUNDED_CHANNEL) -- producer is rate-limited by the admission queue
    let (tx, rx) = std::sync::mpsc::channel::<u8>();
    let _ = (tx, rx);
}
#[cfg(test)]
mod tests {
    fn t() {
        let (tx, rx) = std::sync::mpsc::channel::<u8>();
        let _ = (tx, rx);
    }
}
";
        let file = SourceFile::scan(Path::new("crates/serve/src/server.rs"), src);
        let passes: Vec<Box<dyn LintPass>> = vec![Box::new(UnboundedChannel::default())];
        let a = crate::analyze_file(&file, &passes);
        assert!(a.findings.is_empty(), "got {:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }
}
