//! Locks the resilience crate into the repo's own static-analysis gate:
//! `cqm-analyze` walks `crates/*/src` by convention, so this crate is
//! scanned automatically — this test makes that an explicit, local
//! guarantee (no panics/unwraps in lib code, NaN-safe comparisons) instead
//! of a property only `scripts/check.sh` enforces.

use std::path::PathBuf;

use cqm_analyze::passes::default_passes;

#[test]
fn resilience_sources_pass_cqm_analyze_deny_all() {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let report = cqm_analyze::run(&[src], &default_passes()).expect("scan resilience sources");
    assert!(report.files_scanned >= 5, "expected all modules scanned");
    assert!(
        !report.failed(true),
        "cqm-analyze findings in crates/resilience: {:#?}",
        report.findings
    );
}
