//! Deterministic network fault injection over byte streams.
//!
//! PR 2's [`crate::fault::FaultInjector`] corrupts *cue streams* between the
//! windower and the classifier; this module applies the same discipline one
//! layer down, to the *transport* the service speaks over. A
//! [`NetFaultPlan`] is a seeded, validated description of how a link
//! misbehaves; a [`ChaosStream`] wraps any `Read + Write` transport and
//! injects, on a schedule that is a pure function of `(seed, stream id,
//! operation index)`:
//!
//! | fault | effect on the stream |
//! |---|---|
//! | partial I/O | a read/write moves fewer bytes than asked (short chunk) |
//! | latency | an operation is delayed before it touches the transport |
//! | corruption | one bit of the moved chunk is flipped |
//! | reset | the operation fails `ConnectionReset`; the stream is dead |
//!
//! Because each operation derives its own RNG from the operation index,
//! replaying the same sequence of operations against the same plan
//! reproduces the identical fault schedule — the property the chaos soak's
//! replayability claim rests on, and the same contract as
//! `fault::FaultPlan` (seeded, replayable, validated up front).
//!
//! [`ChaosProxy`] puts a `ChaosStream` on a real TCP path: it listens on
//! its own port and pumps bytes between each client and a (retargetable)
//! backend through per-direction chaos streams, so an unmodified
//! client/server pair experiences scheduled network chaos. Retargeting
//! exists for warm-restart drills: restart the backend on a new port and
//! point the proxy at it mid-soak.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ResilienceError, Result};

/// Longest artificial delay a plan may configure; a fat-fingered latency
/// must not hang a soak for minutes.
pub const MAX_CHAOS_LATENCY: Duration = Duration::from_secs(1);

/// Domain-separation constant for the per-stream RNG (same idiom as
/// `fault::FaultInjector`).
const STREAM_SEED_SALT: u64 = 0xC4A0_5157_EA11_D317;

/// Mixes the operation index into the per-operation RNG seed.
const OP_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A validated, seeded description of how a link misbehaves — the
/// replayable unit of a network chaos experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    /// RNG seed; the whole schedule is a pure function of it.
    pub seed: u64,
    /// Operations at the start of every stream that are guaranteed
    /// fault-free (lets connection handshakes through so chaos lands
    /// mid-conversation, where it hurts).
    pub warmup_ops: u64,
    /// Per-operation probability that a read/write is split short.
    pub partial_p: f64,
    /// Per-operation probability of an added delay.
    pub latency_p: f64,
    /// The delay added when latency fires (capped at
    /// [`MAX_CHAOS_LATENCY`]).
    pub latency: Duration,
    /// Per-operation probability that one bit of the moved chunk flips.
    pub corrupt_p: f64,
    /// Per-operation probability of a connection reset; once a stream
    /// resets it stays dead.
    pub reset_p: f64,
}

impl NetFaultPlan {
    /// A plan that injects nothing (the identity transport).
    pub fn clean(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            warmup_ops: 0,
            partial_p: 0.0,
            latency_p: 0.0,
            latency: Duration::ZERO,
            corrupt_p: 0.0,
            reset_p: 0.0,
        }
    }

    /// Validate the probabilities and the latency bound.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] on a probability outside
    /// `[0, 1]`, a non-finite probability, or a latency beyond
    /// [`MAX_CHAOS_LATENCY`].
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("partial_p", self.partial_p),
            ("latency_p", self.latency_p),
            ("corrupt_p", self.corrupt_p),
            ("reset_p", self.reset_p),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ResilienceError::InvalidConfig(format!(
                    "{name} {p} must be a probability in [0, 1]"
                )));
            }
        }
        if self.latency > MAX_CHAOS_LATENCY {
            return Err(ResilienceError::InvalidConfig(format!(
                "chaos latency {:?} exceeds the {:?} cap",
                self.latency, MAX_CHAOS_LATENCY
            )));
        }
        Ok(())
    }
}

/// What a [`ChaosStream`] has done to its transport so far. Two streams
/// with the same plan, id and operation sequence report identical stats —
/// the replayability assertion in the unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Read operations attempted.
    pub reads: u64,
    /// Write operations attempted.
    pub writes: u64,
    /// Bytes actually read through the stream.
    pub bytes_read: u64,
    /// Bytes actually written through the stream.
    pub bytes_written: u64,
    /// Operations split short.
    pub partials: u64,
    /// Operations delayed.
    pub delays: u64,
    /// Chunks with a flipped bit.
    pub corruptions: u64,
    /// 1 once the stream has been reset.
    pub resets: u64,
}

/// The per-operation fault decisions, drawn up front in a fixed order so
/// the schedule is independent of chunk sizes.
struct OpFaults {
    reset: bool,
    delayed: bool,
    partial: bool,
    corrupt: bool,
    /// Uniform draws consumed later (chunk cut point, corrupt byte/bit) —
    /// pre-drawn so every operation consumes the same amount of
    /// randomness.
    cut: f64,
    corrupt_byte: f64,
    corrupt_bit: u32,
}

/// A fault-injecting wrapper around any `Read + Write` transport; see the
/// module docs for the fault vocabulary and the determinism contract.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    stream_seed: u64,
    warmup_ops: u64,
    plan: NetFaultPlan,
    ops: u64,
    dead: bool,
    stats: ChaosStats,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner`. `stream_id` separates the schedules of streams that
    /// share a plan (e.g. the two directions of a proxied connection).
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if the plan fails
    /// [`NetFaultPlan::validate`].
    pub fn new(inner: S, plan: &NetFaultPlan, stream_id: u64) -> Result<Self> {
        plan.validate()?;
        Ok(ChaosStream {
            inner,
            stream_seed: plan
                .seed
                .wrapping_mul(OP_SEED_MIX)
                .wrapping_add(stream_id)
                ^ STREAM_SEED_SALT,
            warmup_ops: plan.warmup_ops,
            plan: *plan,
            ops: 0,
            dead: false,
            stats: ChaosStats::default(),
        })
    }

    /// Counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Draw this operation's fault decisions. Pure in `(stream_seed, op)`:
    /// the schedule does not depend on chunk sizes or wall-clock time.
    fn decide(&mut self) -> OpFaults {
        let op = self.ops;
        self.ops += 1;
        if op < self.warmup_ops {
            return OpFaults {
                reset: false,
                delayed: false,
                partial: false,
                corrupt: false,
                cut: 0.0,
                corrupt_byte: 0.0,
                corrupt_bit: 0,
            };
        }
        let mut rng = StdRng::seed_from_u64(self.stream_seed ^ op.wrapping_mul(OP_SEED_MIX));
        OpFaults {
            reset: rng.gen_bool(self.plan.reset_p),
            delayed: rng.gen_bool(self.plan.latency_p),
            partial: rng.gen_bool(self.plan.partial_p),
            corrupt: rng.gen_bool(self.plan.corrupt_p),
            cut: rng.gen::<f64>(),
            corrupt_byte: rng.gen::<f64>(),
            corrupt_bit: rng.gen_range(0u32..8),
        }
    }

    /// Apply the pre-I/O faults shared by reads and writes; `Err` means
    /// the operation (and every later one) fails with a reset.
    fn pre_io(&mut self, faults: &OpFaults) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "chaos: stream already reset",
            ));
        }
        if faults.reset {
            self.dead = true;
            self.stats.resets += 1;
            return Err(std::io::Error::new(
                ErrorKind::ConnectionReset,
                "chaos: scheduled connection reset",
            ));
        }
        if faults.delayed {
            self.stats.delays += 1;
            std::thread::sleep(self.plan.latency);
        }
        Ok(())
    }

    /// Shrink an I/O request to the scheduled partial length (always at
    /// least one byte — a zero-length read would read as EOF).
    fn chunk_len(&mut self, faults: &OpFaults, want: usize) -> usize {
        if faults.partial && want > 1 {
            self.stats.partials += 1;
            // cut in [0,1) over 1..want keeps the schedule size-agnostic.
            1 + (faults.cut * (want - 1) as f64) as usize
        } else {
            want
        }
    }

    fn corrupt_chunk(&mut self, faults: &OpFaults, chunk: &mut [u8]) {
        if faults.corrupt && !chunk.is_empty() {
            self.stats.corruptions += 1;
            let idx = (faults.corrupt_byte * chunk.len() as f64) as usize;
            let idx = idx.min(chunk.len() - 1);
            if let Some(byte) = chunk.get_mut(idx) {
                *byte ^= 1u8 << faults.corrupt_bit;
            }
        }
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let faults = self.decide();
        self.stats.reads += 1;
        self.pre_io(&faults)?;
        let want = self.chunk_len(&faults, buf.len());
        let n = match buf.get_mut(..want) {
            Some(slice) => self.inner.read(slice)?,
            None => 0,
        };
        if let Some(chunk) = buf.get_mut(..n) {
            self.corrupt_chunk(&faults, chunk);
        }
        self.stats.bytes_read += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let faults = self.decide();
        self.stats.writes += 1;
        self.pre_io(&faults)?;
        let want = self.chunk_len(&faults, buf.len());
        let chunk = buf.get(..want).unwrap_or(buf);
        let n = if faults.corrupt && !chunk.is_empty() {
            // Corrupt a copy; the caller's buffer stays honest.
            let mut owned = chunk.to_vec();
            self.corrupt_chunk(&faults, &mut owned);
            self.inner.write(&owned)?
        } else {
            self.inner.write(chunk)?
        };
        self.stats.bytes_written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "chaos: stream already reset",
            ));
        }
        self.inner.flush()
    }
}

/// How long the proxy waits for a backend connect before giving up on the
/// proxied connection.
const PROXY_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// How long the proxy's stop path waits for its own wake-up connect.
const PROXY_STOP_TIMEOUT: Duration = Duration::from_millis(500);

/// A TCP forwarder that subjects every proxied connection to a
/// [`NetFaultPlan`]: client ⇄ proxy ⇄ backend, with an independent
/// [`ChaosStream`] schedule per direction per connection. The backend
/// address can be swapped at runtime ([`ChaosProxy::retarget`]) so a soak
/// can survive a backend restart on a new port.
pub struct ChaosProxy {
    addr: SocketAddr,
    backend: Arc<Mutex<SocketAddr>>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Clones of every live proxied socket (keyed by connection id),
    /// severed on [`ChaosProxy::stop`] so pump threads blocked on a peer
    /// that never hangs up still join.
    live: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    conns: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Bind an ephemeral local port and start forwarding to `backend`
    /// under `plan`.
    ///
    /// # Errors
    ///
    /// * [`ResilienceError::InvalidConfig`] if the plan fails validation;
    /// * [`ResilienceError::Io`] if the listener cannot be bound.
    pub fn start(backend: SocketAddr, plan: NetFaultPlan) -> Result<ChaosProxy> {
        plan.validate()?;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ResilienceError::Io(format!("binding chaos proxy: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ResilienceError::Io(format!("reading proxy address: {e}")))?;
        let backend = Arc::new(Mutex::new(backend));
        let stopping = Arc::new(AtomicBool::new(false));
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let live: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));
        let conns = Arc::new(AtomicU64::new(0));
        let acceptor = {
            let backend = Arc::clone(&backend);
            let stopping = Arc::clone(&stopping);
            let pumps = Arc::clone(&pumps);
            let live = Arc::clone(&live);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                proxy_accept_loop(&listener, &backend, &stopping, &pumps, &live, &conns, &plan);
            })
        };
        Ok(ChaosProxy {
            addr,
            backend,
            stopping,
            acceptor: Some(acceptor),
            pumps,
            live,
            conns,
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.conns.load(Ordering::Relaxed)
    }

    /// Point *new* connections at a different backend (existing pumps keep
    /// their sockets until they die — exactly what a real half-migrated
    /// network looks like).
    pub fn retarget(&self, backend: SocketAddr) {
        let mut target = self
            .backend
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *target = backend;
    }

    /// Stop accepting, sever every live proxied connection, join the
    /// worker threads.
    pub fn stop(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Wake the acceptor the same way the server does: a throwaway
        // connection it will observe the stop flag on.
        drop(TcpStream::connect_timeout(&self.addr, PROXY_STOP_TIMEOUT));
        if let Some(h) = self.acceptor.take() {
            let _joined = h.join();
        }
        // Sever every proxied socket before joining: a pump blocked on a
        // peer that never hangs up (say, a client holding its pooled
        // connection open) would otherwise park this join forever.
        {
            let mut live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
            for (_conn, socket) in live.drain(..) {
                drop(socket.shutdown(Shutdown::Both));
            }
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut pumps = self.pumps.lock().unwrap_or_else(PoisonError::into_inner);
            pumps.drain(..).collect()
        };
        for h in handles {
            let _joined = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

fn proxy_accept_loop(
    listener: &TcpListener,
    backend: &Arc<Mutex<SocketAddr>>,
    stopping: &Arc<AtomicBool>,
    pumps: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    live: &Arc<Mutex<Vec<(u64, TcpStream)>>>,
    conns: &Arc<AtomicU64>,
    plan: &NetFaultPlan,
) {
    loop {
        let client = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_accept_error) => {
                if stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stopping.load(Ordering::SeqCst) {
            return;
        }
        let conn = conns.fetch_add(1, Ordering::Relaxed);
        // Copy the target out of the lock before the blocking connect.
        let target = {
            let guard = backend.lock().unwrap_or_else(PoisonError::into_inner);
            *guard
        };
        let server = match TcpStream::connect_timeout(&target, PROXY_CONNECT_TIMEOUT) {
            Ok(stream) => stream,
            Err(_connect_error) => {
                // Backend gone (e.g. mid-restart): the client sees its
                // connection drop, exactly like a real partition.
                drop(client.shutdown(Shutdown::Both));
                continue;
            }
        };
        spawn_pumps(client, server, plan, conn, pumps, live);
    }
}

/// Start the two per-direction pump threads for one proxied connection.
/// Chaos is applied on the *read* side of each direction; from the peers'
/// perspective that covers torn, delayed, corrupted and reset traffic both
/// ways.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    plan: &NetFaultPlan,
    conn: u64,
    pumps: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    live: &Arc<Mutex<Vec<(u64, TcpStream)>>>,
) {
    // Register both sockets so `stop` can sever the connection even when
    // neither peer hangs up; pumps deregister their connection on exit so
    // the registry only ever holds live connections.
    {
        let mut registry = live.lock().unwrap_or_else(PoisonError::into_inner);
        if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
            registry.push((conn, c));
            registry.push((conn, s));
        }
    }
    let pairs = match (client.try_clone(), server.try_clone()) {
        (Ok(client_r), Ok(server_r)) => [(client_r, server, conn * 2), (server_r, client, conn * 2 + 1)],
        // A clone failure this early means the connection is already dead.
        _ => return,
    };
    let mut handles = Vec::with_capacity(2);
    for (src, dst, stream_id) in pairs {
        let plan = *plan;
        let live = Arc::clone(live);
        handles.push(std::thread::spawn(move || {
            pump(src, dst, &plan, stream_id);
            let mut registry = live.lock().unwrap_or_else(PoisonError::into_inner);
            registry.retain(|(id, _socket)| *id != stream_id / 2);
        }));
    }
    pumps
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .append(&mut handles);
}

/// Move bytes from `src` to `dst` through a [`ChaosStream`] until either
/// side dies, then sever both so the peer threads notice.
fn pump(src: TcpStream, dst: TcpStream, plan: &NetFaultPlan, stream_id: u64) {
    let mut dst = dst;
    let severed = |src: &TcpStream, dst: &TcpStream| {
        drop(src.shutdown(Shutdown::Both));
        drop(dst.shutdown(Shutdown::Both));
    };
    let mut chaos = match ChaosStream::new(src, plan, stream_id) {
        Ok(stream) => stream,
        Err(_invalid_plan) => {
            // Plans are validated at proxy start; a failure here is
            // unreachable, handled by severing rather than asserting.
            return;
        }
    };
    let mut buf = [0u8; 4096];
    loop {
        match chaos.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let chunk = match buf.get(..n) {
                    Some(chunk) => chunk,
                    None => break,
                };
                if dst.write_all(chunk).is_err() || dst.flush().is_err() {
                    break;
                }
            }
            Err(_read_error) => break,
        }
    }
    severed(chaos.get_ref(), &dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn noisy_plan(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            partial_p: 0.5,
            latency_p: 0.0,
            corrupt_p: 0.3,
            reset_p: 0.05,
            ..NetFaultPlan::clean(seed)
        }
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = NetFaultPlan::clean(1);
        p.corrupt_p = 1.5;
        assert!(p.validate().is_err());
        p.corrupt_p = f64::NAN;
        assert!(p.validate().is_err());
        p.corrupt_p = 0.0;
        p.latency = Duration::from_secs(30);
        assert!(p.validate().is_err());
        assert!(NetFaultPlan::clean(1).validate().is_ok());
        assert!(ChaosStream::new(Cursor::new(Vec::<u8>::new()), &p, 0).is_err());
    }

    #[test]
    fn clean_plan_is_the_identity_transport() {
        let data: Vec<u8> = (0..=255).collect();
        let mut stream =
            ChaosStream::new(Cursor::new(data.clone()), &NetFaultPlan::clean(7), 0).expect("chaos");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        assert_eq!(out, data);
        let mut sink = ChaosStream::new(Vec::new(), &NetFaultPlan::clean(7), 1).expect("chaos");
        sink.write_all(&data).expect("write");
        assert_eq!(sink.get_ref(), &data);
        assert_eq!(sink.stats().corruptions, 0);
        assert_eq!(sink.stats().resets, 0);
    }

    #[test]
    fn partial_io_splits_but_preserves_content() {
        let plan = NetFaultPlan {
            partial_p: 1.0,
            ..NetFaultPlan::clean(3)
        };
        let data: Vec<u8> = (0..200u8).collect();
        let mut stream = ChaosStream::new(Cursor::new(data.clone()), &plan, 0).expect("chaos");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        assert_eq!(out, data, "partial reads must not lose or reorder bytes");
        assert!(stream.stats().partials > 0);
        assert!(
            stream.stats().reads > 2,
            "forced partials must take many reads, took {}",
            stream.stats().reads
        );
    }

    #[test]
    fn corruption_flips_bits_deterministically() {
        let plan = NetFaultPlan {
            corrupt_p: 1.0,
            ..NetFaultPlan::clean(11)
        };
        let data = vec![0u8; 64];
        let read_once = || {
            let mut stream =
                ChaosStream::new(Cursor::new(data.clone()), &plan, 0).expect("chaos");
            let mut out = Vec::new();
            stream.read_to_end(&mut out).expect("read");
            (out, stream.stats())
        };
        let (a, stats_a) = read_once();
        let (b, stats_b) = read_once();
        assert_eq!(a, b, "same seed, same ops => identical corruption");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.corruptions > 0);
        assert_ne!(a, data, "corruption must actually flip something");
    }

    #[test]
    fn reset_kills_the_stream_for_good() {
        let plan = NetFaultPlan {
            reset_p: 1.0,
            ..NetFaultPlan::clean(5)
        };
        let mut stream =
            ChaosStream::new(Cursor::new(vec![1u8; 16]), &plan, 0).expect("chaos");
        let mut buf = [0u8; 8];
        let err = stream.read(&mut buf).expect_err("scheduled reset");
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
        let err = stream.read(&mut buf).expect_err("stream stays dead");
        assert_eq!(err.kind(), ErrorKind::BrokenPipe);
        assert_eq!(stream.stats().resets, 1);
    }

    #[test]
    fn warmup_ops_are_fault_free() {
        let plan = NetFaultPlan {
            warmup_ops: 3,
            reset_p: 1.0,
            ..NetFaultPlan::clean(9)
        };
        let mut stream =
            ChaosStream::new(Cursor::new(vec![7u8; 64]), &plan, 0).expect("chaos");
        let mut buf = [0u8; 4];
        for _ in 0..3 {
            assert_eq!(stream.read(&mut buf).expect("warmup read"), 4);
        }
        let err = stream.read(&mut buf).expect_err("first post-warmup op resets");
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
    }

    #[test]
    fn schedule_is_replayable_from_seed_and_differs_across_streams() {
        // The acceptance criterion's replayability claim, at the transport
        // level: identical (plan, stream id, op sequence) => identical
        // fault schedule; a different stream id => a different schedule.
        let plan = noisy_plan(42);
        let run = |stream_id: u64| {
            let mut stream =
                ChaosStream::new(Cursor::new(vec![0xA5u8; 512]), &plan, stream_id).expect("chaos");
            let mut out = Vec::new();
            let mut buf = [0u8; 32];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(_dead) => break,
                }
            }
            (out, stream.stats())
        };
        let (bytes_a, stats_a) = run(0);
        let (bytes_b, stats_b) = run(0);
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(stats_a, stats_b);
        let (_bytes_c, stats_c) = run(1);
        assert_ne!(stats_a, stats_c, "stream id must separate schedules");
    }

    #[test]
    fn proxy_forwards_and_retargets() {
        // Plain echo backend #1.
        let echo = |tag: u8| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
            let addr = listener.local_addr().expect("echo addr");
            let handle = std::thread::spawn(move || {
                while let Ok((mut stream, _)) = listener.accept() {
                    let mut buf = [0u8; 64];
                    let Ok(n) = stream.read(&mut buf) else { break };
                    if n == 0 {
                        break;
                    }
                    for b in buf.iter_mut().take(n) {
                        *b ^= tag;
                    }
                    if stream.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            });
            (addr, handle)
        };
        let (addr_a, _handle_a) = echo(0x01);
        let (addr_b, _handle_b) = echo(0x02);
        let mut proxy = ChaosProxy::start(addr_a, NetFaultPlan::clean(1)).expect("proxy");
        let exchange = |proxy_addr: SocketAddr, payload: &[u8]| {
            let mut conn =
                TcpStream::connect_timeout(&proxy_addr, Duration::from_secs(2)).expect("connect");
            conn.set_read_timeout(Some(Duration::from_secs(2)))
                .expect("timeout");
            conn.write_all(payload).expect("send");
            let mut buf = vec![0u8; payload.len()];
            conn.read_exact(&mut buf).expect("recv");
            buf
        };
        assert_eq!(exchange(proxy.local_addr(), b"hello"), b"idmmn".to_vec());
        proxy.retarget(addr_b);
        assert_eq!(exchange(proxy.local_addr(), b"hello"), b"jgnnm".to_vec());
        assert_eq!(proxy.connections(), 2);
        proxy.stop();
    }
}
