//! The degradation ladder: `Healthy → Degraded → Failsafe → Recovering`.
//!
//! Escalation is streak-driven: consecutive *fault* signals (ε quality,
//! classify errors, dropouts, timeouts, monitor drift) push the system down
//! the ladder; consecutive successes climb back up — but only through the
//! explicit `Recovering` state, and only after strictly more successes than
//! the failures that caused the demotion (hysteresis). A single fault while
//! `Recovering` demotes immediately, so a flapping source cannot oscillate
//! the system in and out of `Healthy`.

use serde::{Deserialize, Serialize};

use crate::{ResilienceError, Result};

/// The four rungs of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HealthState {
    /// Normal operation: fresh contexts served.
    Healthy,
    /// Sustained faults observed: contexts still served, consumers should
    /// treat them with suspicion (cached fallbacks appear here).
    Degraded,
    /// The pipeline cannot produce trustworthy context: consumers must fall
    /// back to their no-context behaviour.
    Failsafe,
    /// Probation on the way back up: data looks good again but the system
    /// has not yet re-earned `Healthy`.
    Recovering,
}

impl HealthState {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Failsafe => "failsafe",
            HealthState::Recovering => "recovering",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Streak thresholds for the ladder transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// Consecutive faults in `Healthy` before demotion to `Degraded`.
    pub degrade_after: usize,
    /// Consecutive faults (total streak) before `Degraded` drops to
    /// `Failsafe`; must exceed `degrade_after`.
    pub failsafe_after: usize,
    /// Consecutive successes in `Degraded`/`Failsafe` before probation
    /// (`Recovering`) begins.
    pub recover_after: usize,
    /// Consecutive successes in `Recovering` before `Healthy` is re-earned.
    pub healthy_after: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            degrade_after: 3,
            failsafe_after: 8,
            recover_after: 4,
            healthy_after: 6,
        }
    }
}

impl DegradationPolicy {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if any threshold is zero
    /// or `failsafe_after <= degrade_after` (the ladder must be ordered).
    pub fn new(
        degrade_after: usize,
        failsafe_after: usize,
        recover_after: usize,
        healthy_after: usize,
    ) -> Result<Self> {
        for (name, v) in [
            ("degrade_after", degrade_after),
            ("failsafe_after", failsafe_after),
            ("recover_after", recover_after),
            ("healthy_after", healthy_after),
        ] {
            if v == 0 {
                return Err(ResilienceError::InvalidConfig(format!(
                    "{name} must be positive"
                )));
            }
        }
        if failsafe_after <= degrade_after {
            return Err(ResilienceError::InvalidConfig(format!(
                "failsafe_after {failsafe_after} must exceed degrade_after {degrade_after}"
            )));
        }
        Ok(DegradationPolicy {
            degrade_after,
            failsafe_after,
            recover_after,
            healthy_after,
        })
    }
}

/// One recorded state change, `(tick, new_state)`.
pub type Transition = (usize, HealthState);

/// The stateful ladder: feed it per-tick success/fault signals and read the
/// current [`HealthState`].
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    policy: DegradationPolicy,
    state: HealthState,
    fault_streak: usize,
    ok_streak: usize,
    tick: usize,
    transitions: Vec<Transition>,
}

impl DegradationLadder {
    /// A fresh ladder in `Healthy`.
    pub fn new(policy: DegradationPolicy) -> Self {
        DegradationLadder {
            policy,
            state: HealthState::Healthy,
            fault_streak: 0,
            ok_streak: 0,
            tick: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The policy in force.
    pub fn policy(&self) -> &DegradationPolicy {
        &self.policy
    }

    /// Current consecutive-fault streak.
    pub fn fault_streak(&self) -> usize {
        self.fault_streak
    }

    /// All recorded state changes as `(tick, new_state)` pairs.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    fn enter(&mut self, next: HealthState) {
        if next != self.state {
            self.state = next;
            self.transitions.push((self.tick, next));
        }
    }

    /// Record a successful tick (fresh, in-domain classification).
    pub fn on_success(&mut self) -> HealthState {
        self.tick += 1;
        self.fault_streak = 0;
        self.ok_streak += 1;
        match self.state {
            HealthState::Healthy => {}
            HealthState::Degraded | HealthState::Failsafe => {
                if self.ok_streak >= self.policy.recover_after {
                    self.ok_streak = 0;
                    self.enter(HealthState::Recovering);
                }
            }
            HealthState::Recovering => {
                if self.ok_streak >= self.policy.healthy_after {
                    self.ok_streak = 0;
                    self.enter(HealthState::Healthy);
                }
            }
        }
        self.state
    }

    /// Record a faulted tick (ε, error, dropout, timeout, drift signal).
    pub fn on_fault(&mut self) -> HealthState {
        self.tick += 1;
        self.ok_streak = 0;
        self.fault_streak += 1;
        match self.state {
            HealthState::Healthy => {
                if self.fault_streak >= self.policy.degrade_after {
                    self.enter(HealthState::Degraded);
                }
            }
            HealthState::Degraded => {
                if self.fault_streak >= self.policy.failsafe_after {
                    self.enter(HealthState::Failsafe);
                }
            }
            HealthState::Failsafe => {}
            HealthState::Recovering => {
                // Probation failed: straight back down, streak restarts so a
                // persistent fault still reaches Failsafe.
                self.enter(HealthState::Degraded);
            }
        }
        self.state
    }

    /// Reset to `Healthy` with empty streaks (e.g. after a model swap).
    pub fn reset(&mut self) {
        self.state = HealthState::Healthy;
        self.fault_streak = 0;
        self.ok_streak = 0;
        self.transitions.push((self.tick, HealthState::Healthy));
    }

    /// Capture the ladder's full state for persistence.
    pub fn snapshot(&self) -> LadderSnapshot {
        LadderSnapshot {
            policy: self.policy,
            state: self.state,
            fault_streak: self.fault_streak,
            ok_streak: self.ok_streak,
            tick: self.tick,
            transitions: self.transitions.clone(),
        }
    }

    /// Rebuild a ladder from a persisted snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if the snapshot carries an
    /// invalid policy (same rules as [`DegradationPolicy::new`]).
    pub fn from_snapshot(snap: &LadderSnapshot) -> Result<Self> {
        // Revalidate: the snapshot may come from a corrupted or hand-edited
        // checkpoint.
        let policy = DegradationPolicy::new(
            snap.policy.degrade_after,
            snap.policy.failsafe_after,
            snap.policy.recover_after,
            snap.policy.healthy_after,
        )?;
        Ok(DegradationLadder {
            policy,
            state: snap.state,
            fault_streak: snap.fault_streak,
            ok_streak: snap.ok_streak,
            tick: snap.tick,
            transitions: snap.transitions.clone(),
        })
    }
}

/// Serializable snapshot of a [`DegradationLadder`] for crash-safe
/// persistence: state, streak counters, and the full transition log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderSnapshot {
    /// The policy in force.
    pub policy: DegradationPolicy,
    /// Current state.
    pub state: HealthState,
    /// Consecutive-fault streak.
    pub fault_streak: usize,
    /// Consecutive-success streak.
    pub ok_streak: usize,
    /// Ticks elapsed.
    pub tick: usize,
    /// Recorded `(tick, new_state)` transitions.
    pub transitions: Vec<Transition>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> DegradationLadder {
        DegradationLadder::new(DegradationPolicy::new(3, 8, 4, 6).unwrap())
    }

    #[test]
    fn policy_validation() {
        assert!(DegradationPolicy::new(0, 8, 4, 6).is_err());
        assert!(DegradationPolicy::new(3, 3, 4, 6).is_err());
        assert!(DegradationPolicy::new(3, 2, 4, 6).is_err());
        assert!(DegradationPolicy::new(3, 8, 0, 6).is_err());
        assert!(DegradationPolicy::new(3, 8, 4, 0).is_err());
        assert!(DegradationPolicy::new(3, 8, 4, 6).is_ok());
    }

    #[test]
    fn escalates_at_streak_bounds() {
        let mut l = ladder();
        assert_eq!(l.on_fault(), HealthState::Healthy);
        assert_eq!(l.on_fault(), HealthState::Healthy);
        assert_eq!(l.on_fault(), HealthState::Degraded); // 3rd fault
        for _ in 3..7 {
            assert_eq!(l.on_fault(), HealthState::Degraded);
        }
        assert_eq!(l.on_fault(), HealthState::Failsafe); // 8th fault
        assert_eq!(l.fault_streak(), 8);
    }

    #[test]
    fn isolated_faults_do_not_degrade() {
        let mut l = ladder();
        for _ in 0..20 {
            l.on_fault();
            l.on_fault();
            assert_eq!(l.on_success(), HealthState::Healthy);
        }
        assert!(l.transitions().is_empty());
    }

    #[test]
    fn recovery_passes_through_recovering_with_hysteresis() {
        let mut l = ladder();
        for _ in 0..8 {
            l.on_fault();
        }
        assert_eq!(l.state(), HealthState::Failsafe);
        // 4 successes -> Recovering, 6 more -> Healthy.
        for _ in 0..3 {
            assert_eq!(l.on_success(), HealthState::Failsafe);
        }
        assert_eq!(l.on_success(), HealthState::Recovering);
        for _ in 0..5 {
            assert_eq!(l.on_success(), HealthState::Recovering);
        }
        assert_eq!(l.on_success(), HealthState::Healthy);
        let states: Vec<HealthState> = l.transitions().iter().map(|&(_, s)| s).collect();
        assert_eq!(
            states,
            vec![
                HealthState::Degraded,
                HealthState::Failsafe,
                HealthState::Recovering,
                HealthState::Healthy
            ]
        );
    }

    #[test]
    fn fault_during_probation_demotes_immediately() {
        let mut l = ladder();
        for _ in 0..3 {
            l.on_fault();
        }
        for _ in 0..4 {
            l.on_success();
        }
        assert_eq!(l.state(), HealthState::Recovering);
        assert_eq!(l.on_fault(), HealthState::Degraded);
        // And a persistent fault still reaches Failsafe from here.
        for _ in 0..7 {
            l.on_fault();
        }
        assert_eq!(l.state(), HealthState::Failsafe);
    }

    #[test]
    fn flapping_source_cannot_oscillate_into_healthy() {
        // Alternate 4 ok / 4 fault forever: the ladder must never re-enter
        // Healthy (probation needs 6 clean in a row).
        let mut l = ladder();
        for _ in 0..3 {
            l.on_fault();
        }
        assert_eq!(l.state(), HealthState::Degraded);
        for _ in 0..12 {
            for _ in 0..4 {
                l.on_success();
            }
            for _ in 0..4 {
                l.on_fault();
            }
            assert_ne!(l.state(), HealthState::Healthy);
        }
    }

    #[test]
    fn reset_restores_healthy() {
        let mut l = ladder();
        for _ in 0..10 {
            l.on_fault();
        }
        l.reset();
        assert_eq!(l.state(), HealthState::Healthy);
        assert_eq!(l.fault_streak(), 0);
        assert_eq!(HealthState::Failsafe.to_string(), "failsafe");
    }
}
