//! Deterministic fault injection over window-indexed cue streams.
//!
//! A [`FaultPlan`] schedules per-channel faults over window indices; a
//! [`FaultInjector`] built from the plan corrupts any cue stream
//! deterministically (seeded, replayable). The injector operates *between*
//! the windower and the classifier — on whole cue vectors — so it composes
//! with the sample-level `cqm_sensors::noise::NoiseModel`: noise models the
//! sensor's physics, faults model the sensing *system* breaking down.
//!
//! Fault taxonomy (DESIGN.md §7):
//!
//! | fault | effect on the reading |
//! |---|---|
//! | stuck-at | channel frozen at a rail value or its last pre-fault value |
//! | dropout | whole reading missing (`None`) or one channel poisoned (NaN) |
//! | spike | large transient added with a seeded per-window probability |
//! | drift | slowly growing offset (sensor decalibration) |
//! | latency | readings delivered stale, `age` windows late |
//! | flapping | periodic dropout: on for `period`, off for `period` |

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{ResilienceError, Result};

/// What a scheduled fault does to the affected windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Channel frozen: `Some(v)` = stuck at rail `v`; `None` = stuck at the
    /// last value observed before the fault began (a frozen sensor).
    StuckAt(Option<f64>),
    /// Reading lost. With a channel selector the channel turns NaN (a
    /// poisoned field the pipeline must reject); without one the whole
    /// reading is missing.
    Dropout,
    /// Transient of the given magnitude added with probability `p` per
    /// affected window (seeded, replayable).
    Spike {
        /// Spike amplitude (added with alternating sign).
        magnitude: f64,
        /// Per-window probability of a spike.
        p: f64,
    },
    /// Slow drift: offset grows by `rate` per window from fault onset.
    Drift {
        /// Offset increment per window.
        rate: f64,
    },
    /// Delivery latency: readings arrive `windows` late (stale data). The
    /// reading's `age` field carries the staleness for TTL checks.
    Latency {
        /// Delay in windows.
        windows: usize,
    },
    /// Intermittent connectivity: alternates `period` windows delivered,
    /// `period` windows dropped, starting with a delivered stretch.
    Flapping {
        /// Half-period in windows.
        period: usize,
    },
}

/// One fault scheduled over a half-open window-index range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Affected cue channel; `None` = the whole reading.
    pub channel: Option<usize>,
    /// What happens.
    pub kind: FaultKind,
    /// First affected window index.
    pub from: usize,
    /// First index past the fault (exclusive).
    pub until: usize,
}

impl ScheduledFault {
    fn validate(&self) -> Result<()> {
        if self.from >= self.until {
            return Err(ResilienceError::InvalidConfig(format!(
                "fault range {}..{} is empty",
                self.from, self.until
            )));
        }
        match self.kind {
            FaultKind::StuckAt(Some(v)) if !v.is_finite() => Err(ResilienceError::InvalidConfig(
                format!("stuck-at value {v} must be finite"),
            )),
            FaultKind::Spike { magnitude, p } if !(magnitude.is_finite() && (0.0..=1.0).contains(&p)) => {
                Err(ResilienceError::InvalidConfig(format!(
                    "spike magnitude {magnitude} must be finite and p {p} in [0,1]"
                )))
            }
            FaultKind::Drift { rate } if !rate.is_finite() => Err(ResilienceError::InvalidConfig(
                format!("drift rate {rate} must be finite"),
            )),
            FaultKind::Latency { windows } if windows == 0 => Err(ResilienceError::InvalidConfig(
                "latency of 0 windows is not a fault".into(),
            )),
            FaultKind::Flapping { period } if period == 0 => Err(ResilienceError::InvalidConfig(
                "flapping period must be positive".into(),
            )),
            _ => Ok(()),
        }
    }

    fn active(&self, index: usize) -> bool {
        (self.from..self.until).contains(&index)
    }
}

/// A validated, seeded schedule of faults — the replayable unit of a chaos
/// experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
    seed: u64,
}

impl FaultPlan {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] for an empty range or
    /// out-of-domain fault parameters.
    pub fn new(seed: u64, faults: Vec<ScheduledFault>) -> Result<Self> {
        for f in &faults {
            f.validate()?;
        }
        Ok(FaultPlan { faults, seed })
    }

    /// A plan with no faults (the identity injector).
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            faults: Vec::new(),
            seed,
        }
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// The plan's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// First window index past every scheduled fault (when the stream is
    /// guaranteed clean again, latency tails aside).
    pub fn horizon(&self) -> usize {
        self.faults.iter().map(|f| f.until).max().unwrap_or(0)
    }
}

/// One possibly-corrupted reading emitted by the injector.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyReading {
    /// The cue vector, or `None` for a whole-reading dropout.
    pub cues: Option<Vec<f64>>,
    /// Staleness in windows (0 = fresh); nonzero under latency faults.
    pub age: usize,
    /// Whether any fault touched this reading (for scoring/diagnostics).
    pub faulted: bool,
}

/// Stateful, deterministic fault injector for one cue stream.
///
/// Feed it the clean readings in window order via [`FaultInjector::corrupt`];
/// it returns what the degraded sensing system would have delivered.
/// Rebuilding the injector from the same plan replays the identical fault
/// sequence.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    /// Held values per (fault slot) for stuck-at-last faults.
    held: Vec<Option<Vec<f64>>>,
    /// Recent clean readings for latency replay (bounded by max latency).
    history: VecDeque<Vec<f64>>,
    max_latency: usize,
    next_index: usize,
    /// Sign of the next spike (alternates for zero-mean transients).
    spike_sign: f64,
}

impl FaultInjector {
    /// Build an injector from a plan.
    pub fn new(plan: &FaultPlan) -> Self {
        let max_latency = plan
            .faults
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::Latency { windows } => Some(windows),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        FaultInjector {
            held: vec![None; plan.faults.len()],
            history: VecDeque::with_capacity(max_latency + 1),
            max_latency,
            rng: StdRng::seed_from_u64(plan.seed ^ 0xFAB1_7FA0_17C7_ED01),
            plan: plan.clone(),
            next_index: 0,
            spike_sign: 1.0,
        }
    }

    /// The window index the next [`FaultInjector::corrupt`] call expects.
    pub fn next_index(&self) -> usize {
        self.next_index
    }

    /// Corrupt the reading for the next window. Readings must be fed in
    /// window order — the injector tracks the index itself so latency and
    /// drift state stay consistent.
    pub fn corrupt(&mut self, clean: &[f64]) -> FaultyReading {
        let index = self.next_index;
        self.next_index += 1;

        // Latency history is recorded *before* corruption: a slow link
        // delivers old-but-genuine data.
        self.history.push_back(clean.to_vec());
        while self.history.len() > self.max_latency + 1 {
            self.history.pop_front();
        }

        let mut cues = clean.to_vec();
        let mut age = 0usize;
        let mut dropped = false;
        let mut faulted = false;

        for (&fault, held) in self.plan.faults.iter().zip(self.held.iter_mut()) {
            if !fault.active(index) {
                // Forget held stuck values once the fault window has passed.
                if index >= fault.until {
                    *held = None;
                }
                continue;
            }
            faulted = true;
            match fault.kind {
                FaultKind::StuckAt(value) => {
                    let frozen = match (value, &*held) {
                        (Some(v), _) => vec![v; cues.len()],
                        (None, Some(h)) => h.clone(),
                        (None, None) => {
                            let h = cues.clone();
                            *held = Some(h.clone());
                            h
                        }
                    };
                    apply_channel(&mut cues, fault.channel, |ch, _| {
                        frozen.get(ch).copied().unwrap_or(0.0)
                    });
                }
                FaultKind::Dropout => match fault.channel {
                    Some(_) => apply_channel(&mut cues, fault.channel, |_, _| f64::NAN),
                    None => dropped = true,
                },
                FaultKind::Spike { magnitude, p } => {
                    let roll: f64 = self.rng.gen();
                    if roll < p {
                        let sign = self.spike_sign;
                        self.spike_sign = -self.spike_sign;
                        apply_channel(&mut cues, fault.channel, |_, v| v + sign * magnitude);
                    }
                }
                FaultKind::Drift { rate } => {
                    let offset = rate * (index - fault.from + 1) as f64;
                    apply_channel(&mut cues, fault.channel, |_, v| v + offset);
                }
                FaultKind::Latency { windows } => {
                    age = age.max(windows);
                }
                FaultKind::Flapping { period } => {
                    let phase = (index - fault.from) / period;
                    if phase % 2 == 1 {
                        match fault.channel {
                            Some(_) => apply_channel(&mut cues, fault.channel, |_, _| f64::NAN),
                            None => dropped = true,
                        }
                    }
                }
            }
        }

        if dropped {
            return FaultyReading {
                cues: None,
                age,
                faulted: true,
            };
        }

        if age > 0 {
            // Serve the reading from `age` windows ago (stale delivery); at
            // stream start there is nothing to deliver yet.
            let n = self.history.len();
            match n.checked_sub(age + 1).and_then(|i| self.history.get(i)) {
                Some(old) => cues = old.clone(),
                None => {
                    return FaultyReading {
                        cues: None,
                        age,
                        faulted: true,
                    }
                }
            }
        }

        FaultyReading { cues: Some(cues), age, faulted }
    }

    /// Corrupt a whole stream at once (convenience for batch experiments).
    pub fn corrupt_stream(&mut self, clean: &[Vec<f64>]) -> Vec<FaultyReading> {
        clean.iter().map(|c| self.corrupt(c)).collect()
    }
}

/// Apply `f(channel, value)` to one channel or to all of them.
fn apply_channel<F: FnMut(usize, f64) -> f64>(cues: &mut [f64], channel: Option<usize>, mut f: F) {
    match channel {
        Some(ch) => {
            if let Some(v) = cues.get_mut(ch) {
                *v = f(ch, *v);
            }
        }
        None => {
            for (ch, v) in cues.iter_mut().enumerate() {
                *v = f(ch, *v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64, 10.0 + i as f64, -1.0]).collect()
    }

    fn plan(kind: FaultKind, channel: Option<usize>, from: usize, until: usize) -> FaultPlan {
        FaultPlan::new(
            7,
            vec![ScheduledFault {
                channel,
                kind,
                from,
                until,
            }],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let bad = |kind, from, until| {
            FaultPlan::new(0, vec![ScheduledFault { channel: None, kind, from, until }])
        };
        assert!(bad(FaultKind::Dropout, 5, 5).is_err());
        assert!(bad(FaultKind::StuckAt(Some(f64::NAN)), 0, 2).is_err());
        assert!(bad(FaultKind::Spike { magnitude: 1.0, p: 1.5 }, 0, 2).is_err());
        assert!(bad(FaultKind::Spike { magnitude: f64::INFINITY, p: 0.5 }, 0, 2).is_err());
        assert!(bad(FaultKind::Drift { rate: f64::NAN }, 0, 2).is_err());
        assert!(bad(FaultKind::Latency { windows: 0 }, 0, 2).is_err());
        assert!(bad(FaultKind::Flapping { period: 0 }, 0, 2).is_err());
        assert!(bad(FaultKind::Dropout, 0, 2).is_ok());
    }

    #[test]
    fn clean_plan_is_identity() {
        let mut inj = FaultInjector::new(&FaultPlan::clean(1));
        for (i, r) in inj.corrupt_stream(&stream(5)).into_iter().enumerate() {
            assert_eq!(r.cues.as_deref(), Some(&stream(5)[i][..]));
            assert_eq!(r.age, 0);
            assert!(!r.faulted);
        }
    }

    #[test]
    fn stuck_at_rail_freezes_channel() {
        let mut inj = FaultInjector::new(&plan(FaultKind::StuckAt(Some(99.0)), Some(1), 2, 4));
        let out = inj.corrupt_stream(&stream(6));
        assert_eq!(out[1].cues.as_ref().map(|c| c[1]), Some(11.0));
        assert_eq!(out[2].cues.as_ref().map(|c| c[1]), Some(99.0));
        assert_eq!(out[3].cues.as_ref().map(|c| c[1]), Some(99.0));
        assert_eq!(out[4].cues.as_ref().map(|c| c[1]), Some(14.0));
        assert!(out[2].faulted && !out[4].faulted);
    }

    #[test]
    fn stuck_at_last_holds_onset_value() {
        let mut inj = FaultInjector::new(&plan(FaultKind::StuckAt(None), None, 2, 5));
        let out = inj.corrupt_stream(&stream(6));
        // Frozen at window 2's clean values for the whole fault.
        for i in 2..5 {
            assert_eq!(out[i].cues.as_ref().map(|c| c[0]), Some(2.0));
        }
        assert_eq!(out[5].cues.as_ref().map(|c| c[0]), Some(5.0));
    }

    #[test]
    fn whole_reading_dropout_yields_none() {
        let mut inj = FaultInjector::new(&plan(FaultKind::Dropout, None, 1, 3));
        let out = inj.corrupt_stream(&stream(4));
        assert!(out[0].cues.is_some());
        assert!(out[1].cues.is_none());
        assert!(out[2].cues.is_none());
        assert!(out[3].cues.is_some());
    }

    #[test]
    fn channel_dropout_poisons_with_nan() {
        let mut inj = FaultInjector::new(&plan(FaultKind::Dropout, Some(0), 1, 2));
        let out = inj.corrupt_stream(&stream(3));
        let c = out[1].cues.as_ref().unwrap();
        assert!(c[0].is_nan());
        assert!(c[1].is_finite());
    }

    #[test]
    fn drift_grows_linearly() {
        let mut inj = FaultInjector::new(&plan(FaultKind::Drift { rate: 0.5 }, Some(0), 2, 5));
        let out = inj.corrupt_stream(&stream(5));
        assert_eq!(out[2].cues.as_ref().map(|c| c[0]), Some(2.0 + 0.5));
        assert_eq!(out[3].cues.as_ref().map(|c| c[0]), Some(3.0 + 1.0));
        assert_eq!(out[4].cues.as_ref().map(|c| c[0]), Some(4.0 + 1.5));
    }

    #[test]
    fn latency_serves_stale_readings_with_age() {
        let mut inj = FaultInjector::new(&plan(FaultKind::Latency { windows: 2 }, None, 2, 5));
        let out = inj.corrupt_stream(&stream(6));
        assert_eq!(out[2].age, 2);
        // Window 2 delivers window 0's data.
        assert_eq!(out[2].cues.as_ref().map(|c| c[0]), Some(0.0));
        assert_eq!(out[3].cues.as_ref().map(|c| c[0]), Some(1.0));
        // Past the fault: fresh again.
        assert_eq!(out[5].age, 0);
        assert_eq!(out[5].cues.as_ref().map(|c| c[0]), Some(5.0));
    }

    #[test]
    fn latency_at_stream_start_is_a_dropout() {
        let mut inj = FaultInjector::new(&plan(FaultKind::Latency { windows: 3 }, None, 0, 2));
        let out = inj.corrupt_stream(&stream(3));
        assert!(out[0].cues.is_none());
        assert!(out[1].cues.is_none());
    }

    #[test]
    fn flapping_alternates_on_and_off() {
        let mut inj = FaultInjector::new(&plan(FaultKind::Flapping { period: 2 }, None, 0, 8));
        let out = inj.corrupt_stream(&stream(8));
        let delivered: Vec<bool> = out.iter().map(|r| r.cues.is_some()).collect();
        assert_eq!(delivered, vec![true, true, false, false, true, true, false, false]);
    }

    #[test]
    fn spikes_are_seeded_and_replayable() {
        let p = plan(FaultKind::Spike { magnitude: 50.0, p: 0.5 }, Some(0), 0, 50);
        let a: Vec<FaultyReading> = FaultInjector::new(&p).corrupt_stream(&stream(50));
        let b: Vec<FaultyReading> = FaultInjector::new(&p).corrupt_stream(&stream(50));
        assert_eq!(a, b);
        let spiked = a
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                r.cues
                    .as_ref()
                    .is_some_and(|c| (c[0] - *i as f64).abs() > 1.0)
            })
            .count();
        assert!(spiked > 10 && spiked < 40, "spiked {spiked}/50");
    }

    #[test]
    fn overlapping_faults_compose() {
        let plan = FaultPlan::new(
            3,
            vec![
                ScheduledFault {
                    channel: Some(0),
                    kind: FaultKind::StuckAt(Some(5.0)),
                    from: 0,
                    until: 4,
                },
                ScheduledFault {
                    channel: Some(0),
                    kind: FaultKind::Drift { rate: 1.0 },
                    from: 0,
                    until: 4,
                },
            ],
        )
        .unwrap();
        let mut inj = FaultInjector::new(&plan);
        let out = inj.corrupt_stream(&stream(4));
        // Stuck applies first (order of the plan), drift then offsets it.
        assert_eq!(out[0].cues.as_ref().map(|c| c[0]), Some(6.0));
        assert_eq!(out[3].cues.as_ref().map(|c| c[0]), Some(9.0));
    }

    #[test]
    fn horizon_and_accessors() {
        let p = plan(FaultKind::Dropout, None, 3, 9);
        assert_eq!(p.horizon(), 9);
        assert_eq!(p.seed(), 7);
        assert_eq!(p.faults().len(), 1);
        assert_eq!(FaultPlan::clean(1).horizon(), 0);
    }
}
