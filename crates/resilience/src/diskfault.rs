//! Deterministic disk fault injection for checkpoint loads.
//!
//! [`crate::netfault`] makes the *transport* hostile; this module does the
//! same for the *storage* a warm-load reads from. A [`DiskFaultPlan`] is a
//! seeded, validated description of how reads from disk misbehave; a
//! [`DiskFaultInjector`] applies it to whole-file reads on a schedule that
//! is a pure function of `(seed, operation index)` — the same determinism
//! contract as `NetFaultPlan`, so a fleet soak that quarantines a tenant on
//! a corrupt checkpoint replays identically from its seed.
//!
//! | fault | effect on the read |
//! |---|---|
//! | corruption | one bit of the returned bytes is flipped |
//! | torn read | the file is truncated at a scheduled fraction |
//! | delay | the read sleeps before returning (a slow disk, not a bad one) |
//!
//! The injector only mutates the bytes *returned to the caller* — the file
//! on disk is never touched — so the damage model is a read-path fault
//! (bad cable, bitrot caught later, interrupted page-in), and a retry after
//! the breaker's cooldown can genuinely succeed, which is exactly the
//! HalfOpen probe semantics the model registry builds on it.

use std::io::Read;
use std::path::Path;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ResilienceError, Result};

/// Longest artificial delay a plan may configure (same rationale as
/// [`crate::netfault::MAX_CHAOS_LATENCY`]: a typo must not hang a soak).
pub const MAX_DISK_DELAY: Duration = Duration::from_secs(1);

/// Domain-separation constant so disk and network schedules drawn from the
/// same seed do not correlate.
const DISK_SEED_SALT: u64 = 0xD15C_FA17_5EED_0B57;

/// Mixes the operation index into the per-operation RNG seed.
const OP_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A validated, seeded description of how checkpoint reads misbehave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultPlan {
    /// RNG seed; the whole schedule is a pure function of it.
    pub seed: u64,
    /// Reads at the start of the schedule that are guaranteed fault-free
    /// (lets initial warm-loads through so chaos lands on the reload and
    /// swap paths, where it hurts).
    pub warmup_ops: u64,
    /// Per-read probability that one bit of the returned bytes flips.
    pub corrupt_p: f64,
    /// Per-read probability that the returned bytes are truncated.
    pub torn_p: f64,
    /// Per-read probability of an added delay.
    pub delay_p: f64,
    /// The delay added when it fires (capped at [`MAX_DISK_DELAY`]).
    pub delay: Duration,
}

impl DiskFaultPlan {
    /// A plan that injects nothing (the identity read path).
    pub fn clean(seed: u64) -> Self {
        DiskFaultPlan {
            seed,
            warmup_ops: 0,
            corrupt_p: 0.0,
            torn_p: 0.0,
            delay_p: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// Validate the probabilities and the delay bound.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] on a probability outside
    /// `[0, 1]`, a non-finite probability, or a delay beyond
    /// [`MAX_DISK_DELAY`].
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("corrupt_p", self.corrupt_p),
            ("torn_p", self.torn_p),
            ("delay_p", self.delay_p),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ResilienceError::InvalidConfig(format!(
                    "{name} {p} must be a probability in [0, 1]"
                )));
            }
        }
        if self.delay > MAX_DISK_DELAY {
            return Err(ResilienceError::InvalidConfig(format!(
                "disk delay {:?} exceeds the {:?} cap",
                self.delay, MAX_DISK_DELAY
            )));
        }
        Ok(())
    }
}

/// What an injector has done so far. Two injectors with the same plan and
/// read sequence report identical stats — the replayability assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskFaultStats {
    /// Read operations attempted.
    pub reads: u64,
    /// Reads whose bytes were truncated.
    pub torn: u64,
    /// Reads with a flipped bit.
    pub corruptions: u64,
    /// Reads that were delayed.
    pub delays: u64,
}

/// Applies a [`DiskFaultPlan`] to whole-file reads; see the module docs for
/// the fault vocabulary and the determinism contract.
#[derive(Debug)]
pub struct DiskFaultInjector {
    plan: DiskFaultPlan,
    ops: u64,
    stats: DiskFaultStats,
}

impl DiskFaultInjector {
    /// Build an injector from a validated plan.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if the plan fails
    /// [`DiskFaultPlan::validate`].
    pub fn new(plan: DiskFaultPlan) -> Result<Self> {
        plan.validate()?;
        Ok(DiskFaultInjector {
            plan,
            ops: 0,
            stats: DiskFaultStats::default(),
        })
    }

    /// Counters so far.
    pub fn stats(&self) -> DiskFaultStats {
        self.stats
    }

    /// Read the whole file at `path` through the fault schedule. The bytes
    /// on disk are never modified; only the returned copy is mutilated.
    ///
    /// # Errors
    ///
    /// Any real I/O failure from the underlying read, unchanged — injected
    /// faults corrupt or truncate the returned bytes rather than inventing
    /// I/O errors, so a CRC-guarded consumer sees exactly what a real
    /// read-path fault produces: bad bytes, caught by the envelope.
    pub fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
        let op = self.ops;
        self.ops += 1;
        self.stats.reads += 1;
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        if op < self.plan.warmup_ops {
            return Ok(bytes);
        }
        let seed = self.plan.seed ^ DISK_SEED_SALT ^ op.wrapping_mul(OP_SEED_MIX);
        let mut rng = StdRng::seed_from_u64(seed);
        // Decisions are drawn in a fixed order so the schedule never
        // depends on file sizes (same discipline as `netfault::OpFaults`).
        let delayed = rng.gen_bool(self.plan.delay_p);
        let torn = rng.gen_bool(self.plan.torn_p);
        let corrupt = rng.gen_bool(self.plan.corrupt_p);
        let cut: f64 = rng.gen();
        let corrupt_byte: f64 = rng.gen();
        let corrupt_bit: u32 = rng.gen_range(0u32..8);
        if delayed {
            self.stats.delays += 1;
            std::thread::sleep(self.plan.delay);
        }
        if torn && !bytes.is_empty() {
            self.stats.torn += 1;
            // cut in [0,1) over 0..len: a torn read can lose everything
            // down to an empty file or almost nothing.
            let keep = (cut * bytes.len() as f64) as usize;
            bytes.truncate(keep.min(bytes.len().saturating_sub(1)));
        }
        if corrupt && !bytes.is_empty() {
            self.stats.corruptions += 1;
            let idx = ((corrupt_byte * bytes.len() as f64) as usize).min(bytes.len() - 1);
            if let Some(byte) = bytes.get_mut(idx) {
                *byte ^= 1u8 << corrupt_bit;
            }
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch_file(tag: &str, bytes: &[u8]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqm_diskfault_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("blob.bin");
        std::fs::write(&path, bytes).expect("write blob");
        path
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = DiskFaultPlan::clean(1);
        p.corrupt_p = 1.5;
        assert!(p.validate().is_err());
        p.corrupt_p = f64::NAN;
        assert!(p.validate().is_err());
        p.corrupt_p = 0.0;
        p.delay = Duration::from_secs(30);
        assert!(p.validate().is_err());
        assert!(DiskFaultPlan::clean(1).validate().is_ok());
        assert!(DiskFaultInjector::new(p).is_err());
    }

    #[test]
    fn clean_plan_is_the_identity_read() {
        let data: Vec<u8> = (0..=255).collect();
        let path = scratch_file("clean", &data);
        let mut inj = DiskFaultInjector::new(DiskFaultPlan::clean(7)).expect("injector");
        for _ in 0..4 {
            assert_eq!(inj.read(&path).expect("read"), data);
        }
        assert_eq!(inj.stats().corruptions, 0);
        assert_eq!(inj.stats().torn, 0);
        std::fs::remove_dir_all(path.parent().expect("parent")).ok();
    }

    #[test]
    fn schedule_is_replayable_and_never_touches_the_file() {
        let data = vec![0xA5u8; 256];
        let path = scratch_file("replay", &data);
        let plan = DiskFaultPlan {
            corrupt_p: 0.5,
            torn_p: 0.4,
            ..DiskFaultPlan::clean(42)
        };
        let run = || {
            let mut inj = DiskFaultInjector::new(plan).expect("injector");
            let reads: Vec<Vec<u8>> = (0..16).map(|_| inj.read(&path).expect("read")).collect();
            (reads, inj.stats())
        };
        let (reads_a, stats_a) = run();
        let (reads_b, stats_b) = run();
        assert_eq!(reads_a, reads_b, "same seed, same ops => identical faults");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.torn + stats_a.corruptions > 0, "plan must actually fire");
        assert!(
            reads_a.iter().any(|r| r != &data),
            "some read must be mutilated"
        );
        // The file itself was never modified.
        assert_eq!(std::fs::read(&path).expect("reread"), data);
        std::fs::remove_dir_all(path.parent().expect("parent")).ok();
    }

    #[test]
    fn warmup_reads_are_fault_free() {
        let data = vec![3u8; 64];
        let path = scratch_file("warmup", &data);
        let plan = DiskFaultPlan {
            warmup_ops: 3,
            torn_p: 1.0,
            ..DiskFaultPlan::clean(9)
        };
        let mut inj = DiskFaultInjector::new(plan).expect("injector");
        for _ in 0..3 {
            assert_eq!(inj.read(&path).expect("warmup read"), data);
        }
        assert_ne!(inj.read(&path).expect("post-warmup read"), data);
        assert_eq!(inj.stats().torn, 1);
        std::fs::remove_dir_all(path.parent().expect("parent")).ok();
    }

    #[test]
    fn missing_file_is_a_real_io_error_not_a_fault() {
        let mut inj = DiskFaultInjector::new(DiskFaultPlan::clean(1)).expect("injector");
        let err = inj
            .read(Path::new("/nonexistent/cqm/ckpt.bin"))
            .expect_err("missing file");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
