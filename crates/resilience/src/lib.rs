//! # cqm-resilience — fault injection and graceful degradation
//!
//! The paper's central claim is that the CQM lets an appliance *survive bad
//! context*: discard low-quality classifications instead of acting on them
//! (§3). That claim is only meaningful if it still holds when the sensing
//! substrate itself misbehaves — stuck sensors, dropouts, spikes, slow
//! drift, delivery latency, intermittent flapping. This crate provides both
//! sides of that argument:
//!
//! * [`fault`] — a **deterministic fault-injection layer** wrapping any cue
//!   source. A [`fault::FaultPlan`] schedules per-channel faults over window
//!   indices; the resulting [`fault::FaultInjector`] is seeded and
//!   replayable, and composes with the sample-level `sensors::NoiseModel`
//!   (noise corrupts samples inside a window, faults corrupt the cue stream
//!   between windows).
//! * [`degrade`] — the explicit degradation state machine
//!   `Healthy → Degraded → Failsafe → Recovering` with hysteresis
//!   ([`degrade::DegradationLadder`]).
//! * [`supervisor`] — [`supervisor::SupervisedSystem`], the graceful-
//!   degradation wrapper around `cqm_core::pipeline::CqmSystem`: per-call
//!   timeout, bounded retry with backoff on transient errors, a last-good-
//!   context cache with a staleness TTL, and ε/error-streak escalation
//!   (optionally driven by `cqm_core::monitor::QualityMonitor`) into the
//!   degradation ladder.
//! * [`breaker`] — per-source [`breaker::CircuitBreaker`]s and the
//!   [`breaker::QuarantineFuser`] feeding `cqm_core::fusion`, so a flapping
//!   sensor is quarantined instead of fused into the office aggregate.
//! * [`diskfault`] — the injector discipline applied to *storage reads*:
//!   [`diskfault::DiskFaultInjector`] mutilates whole-file checkpoint reads
//!   (bit flips, torn truncation, delays) on a seed-replayable per-operation
//!   schedule, so the model registry's warm-load and quarantine paths can be
//!   driven deterministically.
//! * [`netfault`] — the same injector discipline applied to the *network*:
//!   [`netfault::ChaosStream`] wraps any `Read + Write` transport with
//!   seeded partial I/O, latency, bit corruption and connection resets on a
//!   replayable per-operation schedule, and [`netfault::ChaosProxy`] puts
//!   it on a live TCP path (with a retargetable backend for warm-restart
//!   drills) so `cqm-serve`'s chaos soak can prove exactly-once delivery
//!   under transport faults.
//!
//! The chaos suite (`tests/chaos.rs` at the workspace root) asserts, for
//! every fault class, that the supervised pipeline never panics, escalates
//! within its configured streak bound, recovers with hysteresis once the
//! fault clears, and preserves the paper's acceptance-vs-error tradeoff on
//! the surviving windows.

#![forbid(unsafe_code)]

pub mod breaker;
pub mod degrade;
pub mod diskfault;
pub mod fault;
pub mod netfault;
pub mod supervisor;

pub use breaker::{BreakerSnapshot, BreakerState, CircuitBreaker, FuserSnapshot, QuarantineFuser};
pub use degrade::{DegradationLadder, DegradationPolicy, HealthState, LadderSnapshot};
pub use diskfault::{DiskFaultInjector, DiskFaultPlan, DiskFaultStats, MAX_DISK_DELAY};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultyReading, ScheduledFault};
pub use netfault::{ChaosProxy, ChaosStats, ChaosStream, NetFaultPlan, MAX_CHAOS_LATENCY};
pub use supervisor::{
    CacheSnapshot, CueSource, Poll, Reading, ServedContext, StepFault, StepReport,
    SupervisedSystem, SupervisorConfig, SupervisorSnapshot, WindowSource,
};

/// Errors produced by the resilience layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ResilienceError {
    /// A fault plan or policy parameter was out of its valid domain.
    InvalidConfig(String),
    /// An OS-level I/O failure in the network chaos layer.
    Io(String),
    /// Propagated from the CQM core.
    Core(cqm_core::CqmError),
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            ResilienceError::Io(msg) => write!(f, "I/O failure: {msg}"),
            ResilienceError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for ResilienceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilienceError::Core(e) => Some(e),
            ResilienceError::InvalidConfig(_) | ResilienceError::Io(_) => None,
        }
    }
}

impl From<cqm_core::CqmError> for ResilienceError {
    fn from(e: cqm_core::CqmError) -> Self {
        ResilienceError::Core(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ResilienceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = ResilienceError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_none());
        let e: ResilienceError = cqm_core::CqmError::InvalidInput("dim".into()).into();
        assert!(e.to_string().contains("dim"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
