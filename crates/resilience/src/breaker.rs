//! Per-source circuit breakers feeding quality-weighted fusion.
//!
//! Fusion (`cqm_core::fusion`) already discounts a *single* bad report via
//! its quality weight, but a flapping sensor keeps injecting reports — some
//! ε, some plausible-looking garbage — faster than the weights can discount
//! them. The classical remedy is a circuit breaker per source: after
//! `trip_after` consecutive failures the source is quarantined (its reports
//! ignored outright), and after a cooldown a single probe decides whether it
//! has genuinely recovered. All timing is tick-based (one tick per fusion
//! round), so behaviour is deterministic and replayable.

use std::collections::BTreeMap;

use cqm_core::fusion::{fuse, ContextReport, FusedContext, FusionRule};
use serde::{Deserialize, Serialize};

use crate::{ResilienceError, Result};

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakerState {
    /// Source trusted; failures are being counted.
    Closed,
    /// Source quarantined; reports ignored until the cooldown elapses.
    Open,
    /// Cooldown over; the next report is a probe.
    HalfOpen,
}

impl BreakerState {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A tick-based circuit breaker for one context source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    trip_after: usize,
    cooldown: usize,
    state: BreakerState,
    failures: usize,
    cooldown_left: usize,
    trips: usize,
}

impl CircuitBreaker {
    /// Create a breaker that opens after `trip_after` consecutive failures
    /// and stays open for `cooldown` ticks before probing.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if either parameter is
    /// zero.
    pub fn new(trip_after: usize, cooldown: usize) -> Result<Self> {
        if trip_after == 0 || cooldown == 0 {
            return Err(ResilienceError::InvalidConfig(format!(
                "trip_after {trip_after} and cooldown {cooldown} must be positive"
            )));
        }
        Ok(CircuitBreaker {
            trip_after,
            cooldown,
            state: BreakerState::Closed,
            failures: 0,
            cooldown_left: 0,
            trips: 0,
        })
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times this breaker has tripped open.
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Advance one tick and report whether the source may contribute this
    /// round. While `Open` this counts down the cooldown; the tick the
    /// cooldown expires transitions to `HalfOpen` and admits a probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a good report (valid, non-ε quality).
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.failures = 0,
            BreakerState::HalfOpen => {
                // Probe succeeded: trust restored.
                self.state = BreakerState::Closed;
                self.failures = 0;
            }
            BreakerState::Open => {}
        }
    }

    /// Record a failure (ε report, missing report, poll error).
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.trip_after {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => {
                // Probe failed: back into quarantine for a full cooldown.
                self.trip();
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_left = self.cooldown;
        self.failures = 0;
        self.trips += 1;
    }

    /// Capture the breaker's full state for persistence.
    pub fn snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            trip_after: self.trip_after,
            cooldown: self.cooldown,
            state: self.state,
            failures: self.failures,
            cooldown_left: self.cooldown_left,
            trips: self.trips,
        }
    }

    /// Rebuild a breaker from a persisted snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if the snapshot carries
    /// invalid parameters (same rules as [`CircuitBreaker::new`]).
    pub fn from_snapshot(snap: &BreakerSnapshot) -> Result<Self> {
        // Revalidate: the snapshot may come from a corrupted checkpoint.
        let mut b = CircuitBreaker::new(snap.trip_after, snap.cooldown)?;
        b.state = snap.state;
        b.failures = snap.failures;
        b.cooldown_left = snap.cooldown_left;
        b.trips = snap.trips;
        Ok(b)
    }
}

/// Serializable snapshot of one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerSnapshot {
    /// Consecutive failures before the breaker opens.
    pub trip_after: usize,
    /// Ticks the breaker stays open before probing.
    pub cooldown: usize,
    /// Current state.
    pub state: BreakerState,
    /// Consecutive-failure count while `Closed`.
    pub failures: usize,
    /// Cooldown ticks remaining while `Open`.
    pub cooldown_left: usize,
    /// Times this breaker has tripped open.
    pub trips: usize,
}

/// Outcome of one quarantine-aware fusion round.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionTick {
    /// The fused context, or `None` when no trusted, non-ε report survived
    /// (the ε-only condition the raw fuser reports as an error).
    pub fused: Option<FusedContext>,
    /// Sources quarantined this round (breaker `Open`).
    pub quarantined: Vec<String>,
    /// Number of reports that actually entered the fusion vote.
    pub contributing: usize,
}

/// Fusion frontend that runs every source through its own circuit breaker
/// before the vote.
///
/// Sources are registered lazily on first sight; a source's *absence* in a
/// round (it was expected but delivered nothing) counts as a failure just
/// like an ε report does.
#[derive(Debug, Clone)]
pub struct QuarantineFuser {
    prototype: CircuitBreaker,
    rule: FusionRule,
    breakers: BTreeMap<String, CircuitBreaker>,
}

impl QuarantineFuser {
    /// Create a fuser whose per-source breakers trip after `trip_after`
    /// consecutive failures and cool down for `cooldown` ticks.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if either breaker
    /// parameter is zero.
    pub fn new(trip_after: usize, cooldown: usize, rule: FusionRule) -> Result<Self> {
        Ok(QuarantineFuser {
            prototype: CircuitBreaker::new(trip_after, cooldown)?,
            rule,
            breakers: BTreeMap::new(),
        })
    }

    /// Pre-register a source so its silence counts as failure from the first
    /// round (lazily-discovered sources only start being tracked once they
    /// report).
    pub fn register(&mut self, source: &str) {
        let proto = self.prototype.clone();
        self.breakers
            .entry(source.to_string())
            .or_insert_with(|| proto);
    }

    /// Breaker state for a source, if it is tracked.
    pub fn breaker_state(&self, source: &str) -> Option<BreakerState> {
        self.breakers.get(source).map(CircuitBreaker::state)
    }

    /// All tracked sources and their states.
    pub fn states(&self) -> Vec<(String, BreakerState)> {
        self.breakers
            .iter()
            .map(|(s, b)| (s.clone(), b.state()))
            .collect()
    }

    /// Run one fusion round: feed every tracked source's breaker, quarantine
    /// open ones, fuse the trusted survivors.
    pub fn fuse_tick(&mut self, reports: &[ContextReport]) -> FusionTick {
        let proto = self.prototype.clone();
        for r in reports {
            self.breakers
                .entry(r.source.clone())
                .or_insert_with(|| proto.clone());
        }
        let mut used: Vec<ContextReport> = Vec::new();
        let mut quarantined = Vec::new();
        for (name, breaker) in &mut self.breakers {
            if !breaker.allow() {
                quarantined.push(name.clone());
                continue;
            }
            match reports.iter().find(|r| &r.source == name) {
                Some(r) if !r.quality.is_epsilon() => {
                    breaker.on_success();
                    used.push(r.clone());
                }
                _ => breaker.on_failure(),
            }
        }
        let contributing = used.len();
        FusionTick {
            fused: fuse(&used, self.rule).ok(),
            quarantined,
            contributing,
        }
    }

    /// Capture the fuser's full state (prototype, rule, every tracked
    /// breaker) for persistence.
    pub fn snapshot(&self) -> FuserSnapshot {
        FuserSnapshot {
            prototype: self.prototype.snapshot(),
            rule: self.rule,
            breakers: self
                .breakers
                .iter()
                .map(|(name, b)| (name.clone(), b.snapshot()))
                .collect(),
        }
    }

    /// Rebuild a fuser from a persisted snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if the prototype or any
    /// tracked breaker fails revalidation.
    pub fn from_snapshot(snap: &FuserSnapshot) -> Result<Self> {
        let prototype = CircuitBreaker::from_snapshot(&snap.prototype)?;
        let mut breakers = BTreeMap::new();
        for (name, b) in &snap.breakers {
            breakers.insert(name.clone(), CircuitBreaker::from_snapshot(b)?);
        }
        Ok(QuarantineFuser {
            prototype,
            rule: snap.rule,
            breakers,
        })
    }
}

/// Serializable snapshot of a [`QuarantineFuser`] and all its per-source
/// breakers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuserSnapshot {
    /// Prototype breaker cloned for newly-seen sources.
    pub prototype: BreakerSnapshot,
    /// Fusion rule in force.
    pub rule: FusionRule,
    /// Tracked sources and their breaker states, in source-name order.
    pub breakers: Vec<(String, BreakerSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_core::classifier::ClassId;
    use cqm_core::normalize::Quality;

    fn report(source: &str, class: usize, quality: Quality) -> ContextReport {
        ContextReport {
            source: source.into(),
            class: ClassId(class),
            quality,
        }
    }

    #[test]
    fn validation() {
        assert!(CircuitBreaker::new(0, 4).is_err());
        assert!(CircuitBreaker::new(3, 0).is_err());
        assert!(CircuitBreaker::new(3, 4).is_ok());
        assert!(QuarantineFuser::new(0, 1, FusionRule::WeightedSum).is_err());
    }

    #[test]
    fn trips_only_on_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 4).unwrap();
        for _ in 0..10 {
            b.on_failure();
            b.on_failure();
            b.on_success();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        b.on_failure();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn cooldown_then_probe() {
        let mut b = CircuitBreaker::new(2, 3).unwrap();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown: 2 denied ticks, 3rd tick admits the probe.
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_full_cooldown() {
        let mut b = CircuitBreaker::new(2, 3).unwrap();
        b.on_failure();
        b.on_failure();
        for _ in 0..2 {
            assert!(!b.allow());
        }
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn flapping_source_quarantined_from_fusion() {
        let mut f = QuarantineFuser::new(2, 5, FusionRule::WeightedSum).unwrap();
        // Two steady sources agree on class 1; "flappy" reports ε forever.
        let mut quarantined_rounds = 0;
        for _ in 0..12 {
            let tick = f.fuse_tick(&[
                report("pen", 1, Quality::Value(0.8)),
                report("cup", 1, Quality::Value(0.7)),
                report("flappy", 0, Quality::Epsilon),
            ]);
            let fused = tick.fused.expect("steady sources must fuse");
            assert_eq!(fused.class, ClassId(1));
            if tick.quarantined.contains(&"flappy".to_string()) {
                quarantined_rounds += 1;
                assert_eq!(tick.contributing, 2);
            }
        }
        assert!(quarantined_rounds > 0, "flappy was never quarantined");
        assert_eq!(f.breaker_state("pen"), Some(BreakerState::Closed));
    }

    #[test]
    fn quarantined_source_readmitted_after_recovery() {
        let mut f = QuarantineFuser::new(2, 3, FusionRule::WeightedSum).unwrap();
        for _ in 0..4 {
            f.fuse_tick(&[
                report("pen", 1, Quality::Value(0.8)),
                report("cam", 0, Quality::Epsilon),
            ]);
        }
        assert_eq!(f.breaker_state("cam"), Some(BreakerState::Open));
        // cam recovers; after the cooldown its probe succeeds and it votes
        // again.
        let mut readmitted = false;
        for _ in 0..6 {
            let tick = f.fuse_tick(&[
                report("pen", 1, Quality::Value(0.8)),
                report("cam", 0, Quality::Value(0.9)),
            ]);
            if tick.contributing == 2 {
                readmitted = true;
                break;
            }
        }
        assert!(readmitted);
        assert_eq!(f.breaker_state("cam"), Some(BreakerState::Closed));
    }

    #[test]
    fn registered_sources_silence_counts_as_failure() {
        let mut f = QuarantineFuser::new(2, 3, FusionRule::WeightedSum).unwrap();
        f.register("ghost");
        for _ in 0..2 {
            f.fuse_tick(&[report("pen", 1, Quality::Value(0.8))]);
        }
        assert_eq!(f.breaker_state("ghost"), Some(BreakerState::Open));
        assert_eq!(f.breaker_state("missing"), None);
    }

    #[test]
    fn breaker_snapshot_round_trip_resumes_identically() {
        let mut a = CircuitBreaker::new(2, 3).unwrap();
        a.on_failure();
        a.on_failure();
        assert!(!a.allow()); // mid-cooldown
        let json = serde_json::to_string(&a.snapshot()).unwrap();
        let snap: BreakerSnapshot = serde_json::from_str(&json).unwrap();
        let mut b = CircuitBreaker::from_snapshot(&snap).unwrap();
        assert_eq!(a, b);
        // Both finish the cooldown and probe in lockstep.
        for _ in 0..3 {
            assert_eq!(a.allow(), b.allow());
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn breaker_snapshot_revalidates() {
        let b = CircuitBreaker::new(2, 3).unwrap();
        let mut snap = b.snapshot();
        snap.trip_after = 0;
        assert!(CircuitBreaker::from_snapshot(&snap).is_err());
    }

    #[test]
    fn fuser_snapshot_round_trip_resumes_identically() {
        let mut a = QuarantineFuser::new(2, 3, FusionRule::WeightedSum).unwrap();
        a.register("ghost");
        for _ in 0..3 {
            a.fuse_tick(&[
                report("pen", 1, Quality::Value(0.8)),
                report("cam", 0, Quality::Epsilon),
            ]);
        }
        let json = serde_json::to_string(&a.snapshot()).unwrap();
        let snap: FuserSnapshot = serde_json::from_str(&json).unwrap();
        let mut b = QuarantineFuser::from_snapshot(&snap).unwrap();
        assert_eq!(a.states(), b.states());
        // Identical future rounds produce identical ticks.
        for _ in 0..6 {
            let reports = [
                report("pen", 1, Quality::Value(0.8)),
                report("cam", 0, Quality::Value(0.9)),
            ];
            assert_eq!(a.fuse_tick(&reports), b.fuse_tick(&reports));
        }
    }

    #[test]
    fn fuser_snapshot_revalidates_every_breaker() {
        let mut f = QuarantineFuser::new(2, 3, FusionRule::WeightedSum).unwrap();
        f.register("pen");
        let mut snap = f.snapshot();
        snap.breakers[0].1.cooldown = 0;
        assert!(QuarantineFuser::from_snapshot(&snap).is_err());
    }

    #[test]
    fn all_sources_quarantined_yields_none() {
        let mut f = QuarantineFuser::new(1, 10, FusionRule::WeightedSum).unwrap();
        f.fuse_tick(&[report("a", 0, Quality::Epsilon)]);
        let tick = f.fuse_tick(&[report("a", 0, Quality::Value(0.9))]);
        assert!(tick.fused.is_none());
        assert_eq!(tick.quarantined, vec!["a".to_string()]);
        assert_eq!(tick.contributing, 0);
        assert!(BreakerState::HalfOpen.to_string().contains("half-open"));
        let states = f.states();
        assert_eq!(states.len(), 1);
    }
}
