//! `SupervisedSystem` — graceful degradation around `CqmSystem`.
//!
//! The raw pipeline (`classify → measure → filter`) is pure and fails fast;
//! a deployed appliance must instead *absorb* failure: re-poll a flapping
//! source, reject stale or poisoned readings, fall back to the last good
//! context while the fault is fresh, and make its own health explicit so
//! consumers can downgrade their behaviour. The supervisor implements that
//! contract as a per-step protocol:
//!
//! 1. poll the cue source, with bounded retry + exponential backoff on
//!    transient failures and a per-call wall-clock timeout;
//! 2. validate the reading (staleness TTL) and run the CQM pipeline on it;
//! 3. classify the outcome: ε quality, classify errors, dropouts, timeouts
//!    and monitor-level drift are *fault signals* feeding the
//!    [`DegradationLadder`]; ordinary low-quality discards are normal
//!    operation (the paper's mechanism working as intended), not faults;
//! 4. serve the result: fresh when possible, the cached last-good context
//!    while it is within TTL, or an explicit `Unavailable`.

use std::time::{Duration, Instant};

use cqm_core::classifier::{ClassId, Classifier};
use cqm_core::monitor::{MonitorSnapshot, MonitorStatus, QualityMonitor};
use cqm_core::normalize::Quality;
use cqm_core::pipeline::{CqmSystem, QualifiedClassification};
use serde::{Deserialize, Serialize};

use crate::degrade::{DegradationLadder, DegradationPolicy, HealthState, LadderSnapshot};
use crate::fault::FaultInjector;
use crate::{ResilienceError, Result};

/// One delivered cue reading.
#[derive(Debug, Clone, PartialEq)]
pub struct Reading {
    /// Window index the consumer is currently at (scoring key).
    pub index: usize,
    /// The cue vector as delivered (possibly corrupted).
    pub cues: Vec<f64>,
    /// Staleness in windows: 0 = fresh, `n` = delivered `n` windows late.
    pub age: usize,
}

/// Result of one source poll.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// A reading was delivered.
    Ready(Reading),
    /// Nothing available right now (dropout, radio silence); a retry is a
    /// fresh read attempt and may succeed.
    NotReady,
    /// The stream is over.
    Ended,
}

/// Anything the supervisor can pull cue readings from.
pub trait CueSource {
    /// One read attempt. Every call is a fresh attempt: time moves forward,
    /// so consecutive calls may serve consecutive windows.
    fn poll(&mut self) -> Poll;
}

/// A [`CueSource`] over a pre-generated window stream with a
/// [`FaultInjector`] in front — the standard chaos-test source.
#[derive(Debug, Clone)]
pub struct WindowSource {
    windows: Vec<Vec<f64>>,
    injector: FaultInjector,
    pos: usize,
}

impl WindowSource {
    /// Wrap a clean window stream with a fault injector.
    pub fn new(windows: Vec<Vec<f64>>, injector: FaultInjector) -> Self {
        WindowSource {
            windows,
            injector,
            pos: 0,
        }
    }

    /// Windows already consumed.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl CueSource for WindowSource {
    fn poll(&mut self) -> Poll {
        let Some(clean) = self.windows.get(self.pos) else {
            return Poll::Ended;
        };
        let index = self.pos;
        self.pos += 1;
        let reading = self.injector.corrupt(clean);
        match reading.cues {
            Some(cues) => Poll::Ready(Reading {
                index,
                cues,
                age: reading.age,
            }),
            None => Poll::NotReady,
        }
    }
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Extra poll/classify attempts per step after the first.
    pub max_retries: usize,
    /// Backoff before retry `k` is `backoff_base * 2^(k-1)`; zero disables
    /// sleeping (deterministic tests).
    pub backoff_base: Duration,
    /// Wall-clock budget for one whole step (poll + retries + inference);
    /// `None` disables the timeout.
    pub call_timeout: Option<Duration>,
    /// Maximum acceptable reading age in windows; older readings are
    /// rejected as faults.
    pub staleness_ttl: usize,
    /// How many steps the last-good context may be served after the stream
    /// degrades.
    pub cache_ttl: usize,
    /// Streak thresholds for the degradation ladder.
    pub policy: DegradationPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            backoff_base: Duration::ZERO,
            call_timeout: None,
            staleness_ttl: 2,
            cache_ttl: 8,
            policy: DegradationPolicy::default(),
        }
    }
}

/// Why a step counted as a fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepFault {
    /// The source had nothing to deliver, retries included.
    Dropout,
    /// The step exceeded the configured wall-clock timeout.
    Timeout,
    /// Every delivered reading was older than the staleness TTL.
    Stale,
    /// The pipeline rejected the cues (malformed input, dimension error).
    ClassifyError(String),
    /// The quality measure returned ε: the cues are outside the trained
    /// domain (the paper's "no semantically valid measure exists").
    Epsilon,
    /// The quality monitor flagged statistical drift this step.
    Drifted,
}

impl std::fmt::Display for StepFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepFault::Dropout => f.write_str("dropout"),
            StepFault::Timeout => f.write_str("timeout"),
            StepFault::Stale => f.write_str("stale"),
            StepFault::ClassifyError(msg) => write!(f, "classify error: {msg}"),
            StepFault::Epsilon => f.write_str("epsilon"),
            StepFault::Drifted => f.write_str("drifted"),
        }
    }
}

/// What the supervisor served this step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServedContext {
    /// A fresh classification straight from the pipeline.
    Fresh {
        /// Window index the reading belongs to.
        index: usize,
        /// The qualified classification (class, quality, decision).
        result: QualifiedClassification,
    },
    /// The last good (accepted) context, re-served under a fault.
    Cached {
        /// Window index the cached context was produced at.
        index: usize,
        /// Cached class.
        class: ClassId,
        /// Quality the cached classification carried.
        quality: Quality,
        /// How many steps ago the cache was filled.
        age_steps: usize,
    },
    /// Nothing servable: consumers must use their no-context fallback.
    Unavailable,
}

impl ServedContext {
    /// The class served, if any.
    pub fn class(&self) -> Option<ClassId> {
        match self {
            ServedContext::Fresh { result, .. } => Some(result.class),
            ServedContext::Cached { class, .. } => Some(*class),
            ServedContext::Unavailable => None,
        }
    }
}

/// Full accounting for one supervisor step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// What was served.
    pub served: ServedContext,
    /// Ladder state after this step.
    pub state: HealthState,
    /// The fault signal, if this step counted as one.
    pub fault: Option<StepFault>,
    /// Retries spent (0 = first attempt succeeded).
    pub retries: usize,
    /// Monitor verdict, when a monitor is attached and the step produced a
    /// fresh observation.
    pub monitor: Option<MonitorStatus>,
}

struct CachedContext {
    index: usize,
    class: ClassId,
    quality: Quality,
    age_steps: usize,
}

/// Serializable mirror of the last-good-context cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Window index the cached context was produced at.
    pub index: usize,
    /// Cached class.
    pub class: ClassId,
    /// Quality the cached classification carried.
    pub quality: Quality,
    /// How many steps ago the cache was filled.
    pub age_steps: usize,
}

/// Everything a [`SupervisedSystem`] needs to survive a restart, minus the
/// wrapped `CqmSystem` itself (the model is checkpointed separately; see the
/// `cqm-persist` crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisorSnapshot {
    /// Tuning knobs in force.
    pub config: SupervisorConfig,
    /// Degradation ladder state, streaks and transition log.
    pub ladder: LadderSnapshot,
    /// Last-good-context cache, if filled.
    pub cache: Option<CacheSnapshot>,
    /// Quality-monitor state, if a monitor is attached.
    pub monitor: Option<MonitorSnapshot>,
}

/// The graceful-degradation wrapper around [`CqmSystem`].
pub struct SupervisedSystem<C> {
    system: CqmSystem<C>,
    config: SupervisorConfig,
    ladder: DegradationLadder,
    monitor: Option<QualityMonitor>,
    cache: Option<CachedContext>,
}

impl<C: Classifier> SupervisedSystem<C> {
    /// Wrap a composed CQM system.
    pub fn new(system: CqmSystem<C>, config: SupervisorConfig) -> Self {
        SupervisedSystem {
            system,
            ladder: DegradationLadder::new(config.policy),
            config,
            monitor: None,
            cache: None,
        }
    }

    /// Attach a quality monitor whose drift verdicts feed the ladder.
    pub fn with_monitor(mut self, monitor: QualityMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// The wrapped system.
    pub fn system(&self) -> &CqmSystem<C> {
        &self.system
    }

    /// Current ladder state.
    pub fn state(&self) -> HealthState {
        self.ladder.state()
    }

    /// The ladder (streaks, transition log).
    pub fn ladder(&self) -> &DegradationLadder {
        &self.ladder
    }

    /// Forget cache, streaks and monitor history (e.g. after a model swap).
    pub fn reset(&mut self) {
        self.ladder.reset();
        self.cache = None;
        if let Some(m) = self.monitor.as_mut() {
            m.reset();
        }
    }

    fn serve_fallback(&mut self, fault: StepFault, retries: usize) -> StepReport {
        let state = self.ladder.on_fault();
        let served = match &self.cache {
            Some(c) if c.age_steps <= self.config.cache_ttl => ServedContext::Cached {
                index: c.index,
                class: c.class,
                quality: c.quality,
                age_steps: c.age_steps,
            },
            _ => ServedContext::Unavailable,
        };
        StepReport {
            served,
            state,
            fault: Some(fault),
            retries,
            monitor: None,
        }
    }

    /// Run one supervised step against `source`. Returns `None` once the
    /// source has ended.
    pub fn step(&mut self, source: &mut dyn CueSource) -> Option<StepReport> {
        // The cache ages in steps regardless of what this step produces.
        if let Some(c) = self.cache.as_mut() {
            c.age_steps = c.age_steps.saturating_add(1);
        }

        let started = Instant::now();
        let mut last_fault = StepFault::Dropout;
        let mut retries = 0usize;

        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                retries = attempt;
                let backoff = self.config.backoff_base * (1u32 << (attempt - 1).min(16)) as u32;
                if backoff > Duration::ZERO {
                    std::thread::sleep(backoff);
                }
            }
            if let Some(budget) = self.config.call_timeout {
                if started.elapsed() > budget {
                    return Some(self.serve_fallback(StepFault::Timeout, retries));
                }
            }
            match source.poll() {
                Poll::Ended => {
                    if attempt == 0 {
                        // The end-of-stream probe produced no report, so it
                        // must not count as a step: undo the cache aging so
                        // state is exactly the sum of reported steps (the
                        // crash-recovery replay invariant).
                        if let Some(c) = self.cache.as_mut() {
                            c.age_steps = c.age_steps.saturating_sub(1);
                        }
                        return None;
                    }
                    // The stream ran out mid-retry: surface the transient
                    // fault; the next step reports the end.
                    break;
                }
                Poll::NotReady => {
                    last_fault = StepFault::Dropout;
                    continue;
                }
                Poll::Ready(reading) => {
                    if reading.age > self.config.staleness_ttl {
                        last_fault = StepFault::Stale;
                        continue;
                    }
                    match self.system.classify_with_quality(&reading.cues) {
                        Err(e) => {
                            last_fault = StepFault::ClassifyError(e.to_string());
                            continue;
                        }
                        Ok(result) if result.quality.is_epsilon() => {
                            last_fault = StepFault::Epsilon;
                            continue;
                        }
                        Ok(result) => {
                            if let Some(budget) = self.config.call_timeout {
                                if started.elapsed() > budget {
                                    return Some(
                                        self.serve_fallback(StepFault::Timeout, retries),
                                    );
                                }
                            }
                            return Some(self.finish_success(reading.index, result, retries));
                        }
                    }
                }
            }
        }
        Some(self.serve_fallback(last_fault, retries))
    }

    fn finish_success(
        &mut self,
        index: usize,
        result: QualifiedClassification,
        retries: usize,
    ) -> StepReport {
        let monitor_status = self
            .monitor
            .as_mut()
            .map(|m| m.observe(result.quality, result.decision));
        if result.decision.is_accept() {
            self.cache = Some(CachedContext {
                index,
                class: result.class,
                quality: result.quality,
                age_steps: 0,
            });
        }
        let drifted = matches!(monitor_status, Some(MonitorStatus::Drifted { .. }));
        let (state, fault) = if drifted {
            (self.ladder.on_fault(), Some(StepFault::Drifted))
        } else {
            (self.ladder.on_success(), None)
        };
        StepReport {
            served: ServedContext::Fresh { index, result },
            state,
            fault,
            retries,
            monitor: monitor_status,
        }
    }

    /// Drive the source to exhaustion, collecting every step report.
    pub fn run(&mut self, source: &mut dyn CueSource) -> Vec<StepReport> {
        let mut out = Vec::new();
        while let Some(report) = self.step(source) {
            out.push(report);
        }
        out
    }

    /// Capture the supervisor's full runtime state for persistence.
    pub fn snapshot(&self) -> SupervisorSnapshot {
        SupervisorSnapshot {
            config: self.config,
            ladder: self.ladder.snapshot(),
            cache: self.cache.as_ref().map(|c| CacheSnapshot {
                index: c.index,
                class: c.class,
                quality: c.quality,
                age_steps: c.age_steps,
            }),
            monitor: self.monitor.as_ref().map(QualityMonitor::snapshot),
        }
    }

    /// Rebuild a supervisor around `system` from a persisted snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::InvalidConfig`] if the snapshot carries an
    /// invalid or internally inconsistent policy, or a core error if the
    /// monitor state fails revalidation — a corrupted or hand-edited
    /// checkpoint must surface as a typed error, never as a bad supervisor.
    pub fn restore(system: CqmSystem<C>, snap: &SupervisorSnapshot) -> Result<Self> {
        let ladder = DegradationLadder::from_snapshot(&snap.ladder)?;
        if snap.config.policy != *ladder.policy() {
            return Err(ResilienceError::InvalidConfig(
                "snapshot config.policy disagrees with ladder policy".to_string(),
            ));
        }
        let monitor = match &snap.monitor {
            Some(m) => Some(QualityMonitor::from_snapshot(m)?),
            None => None,
        };
        Ok(SupervisedSystem {
            system,
            config: snap.config,
            ladder,
            monitor,
            cache: snap.cache.as_ref().map(|c| CachedContext {
                index: c.index,
                class: c.class,
                quality: c.quality,
                age_steps: c.age_steps,
            }),
        })
    }

    /// Re-apply one journaled step's state effects without re-running
    /// inference. Crash recovery replays the journal tail through this: the
    /// recorded outcome drives the ladder, cache and monitor exactly as the
    /// original [`step`](Self::step) did, so the rebuilt supervisor lands in
    /// the same state the crashed process was in.
    pub fn apply_journaled_step(&mut self, report: &StepReport) {
        if let Some(c) = self.cache.as_mut() {
            c.age_steps = c.age_steps.saturating_add(1);
        }
        if let ServedContext::Fresh { index, result } = &report.served {
            if report.monitor.is_some() {
                if let Some(m) = self.monitor.as_mut() {
                    m.observe(result.quality, result.decision);
                }
            }
            if result.decision.is_accept() {
                self.cache = Some(CachedContext {
                    index: *index,
                    class: result.class,
                    quality: result.quality,
                    age_steps: 0,
                });
            }
        }
        if report.fault.is_some() {
            self.ladder.on_fault();
        } else {
            self.ladder.on_success();
        }
    }
}

impl<C: std::fmt::Debug> std::fmt::Debug for SupervisedSystem<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedSystem")
            .field("state", &self.ladder.state())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_core::monitor::OperatingProfile;
    use cqm_core::training::{train_cqm, CqmTrainingConfig};
    use cqm_core::Result as CoreResult;

    use crate::fault::{FaultKind, FaultPlan, ScheduledFault};

    /// Deterministic 1-D classifier: class 1 iff `cue[0] > boundary`.
    struct BoundaryClassifier {
        boundary: f64,
    }

    impl Classifier for BoundaryClassifier {
        fn classify(&self, cues: &[f64]) -> CoreResult<ClassId> {
            self.check_cues(cues)?;
            Ok(ClassId(usize::from(cues[0] > self.boundary)))
        }

        fn cue_dim(&self) -> usize {
            1
        }

        fn num_classes(&self) -> usize {
            2
        }
    }

    fn trained_system() -> CqmSystem<BoundaryClassifier> {
        let cues: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 299.0]).collect();
        let truth: Vec<ClassId> = cues
            .iter()
            .map(|c| ClassId(usize::from(c[0] > 0.45)))
            .collect();
        let clf = BoundaryClassifier { boundary: 0.5 };
        let trained = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        CqmSystem::from_trained(BoundaryClassifier { boundary: 0.5 }, &trained).unwrap()
    }

    /// Confident class-1 windows: always accepted on a clean stream.
    fn clean_windows(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![0.85 + 0.1 * (i as f64 / n as f64)]).collect()
    }

    fn source(windows: Vec<Vec<f64>>, plan: &FaultPlan) -> WindowSource {
        WindowSource::new(windows, FaultInjector::new(plan))
    }

    fn supervisor() -> SupervisedSystem<BoundaryClassifier> {
        SupervisedSystem::new(trained_system(), SupervisorConfig::default())
    }

    #[test]
    fn clean_stream_stays_healthy_and_serves_fresh() {
        let mut sup = supervisor();
        let mut src = source(clean_windows(30), &FaultPlan::clean(0));
        let reports = sup.run(&mut src);
        assert_eq!(reports.len(), 30);
        for r in &reports {
            assert!(matches!(r.served, ServedContext::Fresh { .. }));
            assert_eq!(r.state, HealthState::Healthy);
            assert_eq!(r.fault, None);
            assert_eq!(r.retries, 0);
        }
    }

    #[test]
    fn sustained_dropout_escalates_and_serves_cache_then_unavailable() {
        let mut sup = supervisor();
        // 10 clean, then dropout to the end.
        let plan = FaultPlan::new(
            1,
            vec![ScheduledFault {
                channel: None,
                kind: FaultKind::Dropout,
                from: 10,
                until: 200,
            }],
        )
        .unwrap();
        let mut src = source(clean_windows(100), &FaultPlan::clean(0));
        src.injector = FaultInjector::new(&plan);
        let reports = sup.run(&mut src);
        // Dropout steps burn 1 + max_retries windows each.
        let faulted: Vec<&StepReport> = reports.iter().filter(|r| r.fault.is_some()).collect();
        assert!(!faulted.is_empty());
        // Early faulted steps serve the cached context; eventually the TTL
        // expires and the supervisor goes Unavailable.
        assert!(matches!(faulted[0].served, ServedContext::Cached { .. }));
        let last = reports.last().unwrap();
        assert_eq!(last.served, ServedContext::Unavailable);
        // Ladder escalated all the way down.
        assert_eq!(sup.state(), HealthState::Failsafe);
    }

    #[test]
    fn recovery_after_fault_clears() {
        let mut sup = supervisor();
        let plan = FaultPlan::new(
            2,
            vec![ScheduledFault {
                channel: None,
                kind: FaultKind::Dropout,
                from: 5,
                until: 50,
            }],
        )
        .unwrap();
        let mut src = source(clean_windows(120), &plan);
        let reports = sup.run(&mut src);
        assert_eq!(sup.state(), HealthState::Healthy, "did not recover");
        let states: Vec<HealthState> =
            sup.ladder().transitions().iter().map(|&(_, s)| s).collect();
        assert!(states.contains(&HealthState::Degraded));
        assert!(states.contains(&HealthState::Recovering));
        assert_eq!(states.last(), Some(&HealthState::Healthy));
        assert!(reports.iter().any(|r| r.fault.is_some()));
    }

    #[test]
    fn stale_readings_rejected_by_ttl() {
        let mut sup = supervisor();
        let plan = FaultPlan::new(
            3,
            vec![ScheduledFault {
                channel: None,
                kind: FaultKind::Latency { windows: 5 },
                from: 10,
                until: 40,
            }],
        )
        .unwrap();
        let mut src = source(clean_windows(60), &plan);
        let reports = sup.run(&mut src);
        assert!(reports
            .iter()
            .any(|r| matches!(r.fault, Some(StepFault::Stale))));
    }

    #[test]
    fn epsilon_cues_are_fault_signals() {
        let mut sup = supervisor();
        let plan = FaultPlan::new(
            4,
            vec![ScheduledFault {
                channel: None,
                kind: FaultKind::StuckAt(Some(500.0)),
                from: 5,
                until: 30,
            }],
        )
        .unwrap();
        let mut src = source(clean_windows(40), &plan);
        let reports = sup.run(&mut src);
        let eps_or_err = reports.iter().any(|r| {
            matches!(
                r.fault,
                Some(StepFault::Epsilon) | Some(StepFault::ClassifyError(_))
            )
        });
        assert!(eps_or_err, "stuck-at-rail must surface as eps/classify fault");
        // The fault streak demoted the ladder at some point (it may have
        // legitimately recovered on the clean tail).
        assert!(sup
            .ladder()
            .transitions()
            .iter()
            .any(|&(_, s)| s == HealthState::Degraded));
    }

    #[test]
    fn nan_poisoned_channel_is_classify_error_not_panic() {
        let mut sup = supervisor();
        let plan = FaultPlan::new(
            5,
            vec![ScheduledFault {
                channel: Some(0),
                kind: FaultKind::Dropout,
                from: 0,
                until: 10,
            }],
        )
        .unwrap();
        let mut src = source(clean_windows(10), &plan);
        let reports = sup.run(&mut src);
        assert!(reports
            .iter()
            .all(|r| matches!(r.fault, Some(StepFault::ClassifyError(_)))));
    }

    #[test]
    fn timeout_fires_on_slow_source() {
        struct SlowSource {
            left: usize,
        }
        impl CueSource for SlowSource {
            fn poll(&mut self) -> Poll {
                if self.left == 0 {
                    return Poll::Ended;
                }
                self.left -= 1;
                std::thread::sleep(Duration::from_millis(20));
                Poll::NotReady
            }
        }
        let mut sup = SupervisedSystem::new(
            trained_system(),
            SupervisorConfig {
                call_timeout: Some(Duration::from_millis(5)),
                max_retries: 5,
                ..SupervisorConfig::default()
            },
        );
        let mut src = SlowSource { left: 3 };
        let report = sup.step(&mut src).unwrap();
        assert_eq!(report.fault, Some(StepFault::Timeout));
        // The timeout bounded the step: nowhere near 6 polls happened.
        assert!(src.left > 0);
    }

    #[test]
    fn retry_rides_through_single_window_flap() {
        let mut sup = supervisor();
        // period-1 flapping: every other window drops; one retry reaches the
        // next (delivered) window, so no step ever exhausts its retries. The
        // fault ends at 39 so the final window is delivered (a drop on the
        // very last window would leave that step with nothing to retry into).
        let plan = FaultPlan::new(
            6,
            vec![ScheduledFault {
                channel: None,
                kind: FaultKind::Flapping { period: 1 },
                from: 0,
                until: 39,
            }],
        )
        .unwrap();
        let mut src = source(clean_windows(40), &plan);
        let reports = sup.run(&mut src);
        assert!(reports.iter().all(|r| r.fault.is_none()));
        assert!(reports.iter().any(|r| r.retries > 0));
        assert_eq!(sup.state(), HealthState::Healthy);
    }

    #[test]
    fn monitor_drift_feeds_the_ladder() {
        // A monitor expecting high acceptance sees a discard-heavy stream:
        // drift verdicts must escalate the ladder even though every window
        // classifies without error.
        let monitor = QualityMonitor::new(
            OperatingProfile::new(1.0, 0.95).unwrap(),
            8,
            0.2,
        )
        .unwrap();
        let mut sup = SupervisedSystem::new(trained_system(), SupervisorConfig::default())
            .with_monitor(monitor);
        // Ambiguous-band windows: valid quality, mostly discarded.
        let windows: Vec<Vec<f64>> = (0..40).map(|i| vec![0.46 + 0.001 * (i % 10) as f64]).collect();
        let mut src = source(windows, &FaultPlan::clean(0));
        let reports = sup.run(&mut src);
        assert!(reports
            .iter()
            .any(|r| matches!(r.fault, Some(StepFault::Drifted))));
        assert_ne!(sup.state(), HealthState::Healthy);
    }

    #[test]
    fn reset_clears_cache_and_state() {
        let mut sup = supervisor();
        let plan = FaultPlan::new(
            7,
            vec![ScheduledFault {
                channel: None,
                kind: FaultKind::Dropout,
                from: 3,
                until: 60,
            }],
        )
        .unwrap();
        let mut src = source(clean_windows(60), &plan);
        sup.run(&mut src);
        assert_ne!(sup.state(), HealthState::Healthy);
        sup.reset();
        assert_eq!(sup.state(), HealthState::Healthy);
        // After reset the cache is gone: a fault serves Unavailable.
        let mut src2 = source(clean_windows(3), &{
            FaultPlan::new(
                8,
                vec![ScheduledFault {
                    channel: None,
                    kind: FaultKind::Dropout,
                    from: 0,
                    until: 3,
                }],
            )
            .unwrap()
        });
        let r = sup.step(&mut src2).unwrap();
        assert_eq!(r.served, ServedContext::Unavailable);
    }

    /// A faulty-but-recovering plan used by the persistence tests.
    fn bumpy_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(
            seed,
            vec![
                ScheduledFault {
                    channel: None,
                    kind: FaultKind::Dropout,
                    from: 8,
                    until: 20,
                },
                ScheduledFault {
                    channel: None,
                    kind: FaultKind::Flapping { period: 2 },
                    from: 35,
                    until: 45,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut sup = supervisor();
        let mut src = source(clean_windows(60), &bumpy_plan(11));
        sup.run(&mut src);
        let snap = sup.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: SupervisorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert!(snap.cache.is_some(), "accepted steps must fill the cache");
    }

    #[test]
    fn restore_resumes_bit_identically() {
        // Run A for 25 steps, snapshot, restore B from the snapshot, then
        // drive both over the identical remaining stream: every report must
        // match exactly (the deterministic-recovery contract).
        let mut a = supervisor();
        let mut src = source(clean_windows(80), &bumpy_plan(12));
        for _ in 0..25 {
            a.step(&mut src).unwrap();
        }
        let snap = a.snapshot();
        let mut b = SupervisedSystem::restore(trained_system(), &snap).unwrap();
        let mut src_b = src.clone();
        let rest_a = a.run(&mut src);
        let rest_b = b.run(&mut src_b);
        assert_eq!(rest_a, rest_b);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn restore_preserves_monitor_state() {
        let monitor =
            QualityMonitor::new(OperatingProfile::new(1.0, 0.95).unwrap(), 8, 0.2).unwrap();
        let mut a = SupervisedSystem::new(trained_system(), SupervisorConfig::default())
            .with_monitor(monitor);
        let windows: Vec<Vec<f64>> =
            (0..30).map(|i| vec![0.46 + 0.001 * (i % 10) as f64]).collect();
        let mut src = source(windows.clone(), &FaultPlan::clean(0));
        for _ in 0..15 {
            a.step(&mut src).unwrap();
        }
        let snap = a.snapshot();
        assert!(snap.monitor.is_some());
        let mut b = SupervisedSystem::restore(trained_system(), &snap).unwrap();
        let mut src_b = src.clone();
        assert_eq!(a.run(&mut src), b.run(&mut src_b));
    }

    #[test]
    fn restore_rejects_inconsistent_policy() {
        let sup = supervisor();
        let mut snap = sup.snapshot();
        snap.ladder.policy.failsafe_after = snap.ladder.policy.degrade_after; // invalid
        assert!(SupervisedSystem::restore(trained_system(), &snap).is_err());
        let mut snap2 = sup.snapshot();
        snap2.config.policy = DegradationPolicy::new(2, 9, 4, 6).unwrap(); // mismatch
        assert!(SupervisedSystem::restore(trained_system(), &snap2).is_err());
    }

    #[test]
    fn journal_replay_reaches_the_crashed_state() {
        // Original process: run to completion, journaling every report.
        let mut original = supervisor();
        let mut src = source(clean_windows(60), &bumpy_plan(13));
        let journal = original.run(&mut src);
        // Recovery: fresh supervisor + replayed journal tail.
        let mut recovered = supervisor();
        for report in &journal {
            recovered.apply_journaled_step(report);
        }
        assert_eq!(original.snapshot(), recovered.snapshot());
    }

    #[test]
    fn journal_replay_with_monitor_reaches_the_crashed_state() {
        let mk = || {
            let monitor =
                QualityMonitor::new(OperatingProfile::new(1.0, 0.95).unwrap(), 8, 0.2).unwrap();
            SupervisedSystem::new(trained_system(), SupervisorConfig::default())
                .with_monitor(monitor)
        };
        let mut original = mk();
        let windows: Vec<Vec<f64>> =
            (0..40).map(|i| vec![0.46 + 0.001 * (i % 10) as f64]).collect();
        let mut src = source(windows, &FaultPlan::clean(0));
        let journal = original.run(&mut src);
        let mut recovered = mk();
        for report in &journal {
            recovered.apply_journaled_step(report);
        }
        assert_eq!(original.snapshot(), recovered.snapshot());
    }

    #[test]
    fn served_context_class_accessor() {
        assert_eq!(ServedContext::Unavailable.class(), None);
        let c = ServedContext::Cached {
            index: 0,
            class: ClassId(1),
            quality: Quality::Epsilon,
            age_steps: 1,
        };
        assert_eq!(c.class(), Some(ClassId(1)));
        assert!(StepFault::Timeout.to_string().contains("timeout"));
    }
}
