//! `cqm-serve` — the CQM inference service.
//!
//! The paper's §2 pipeline answers one question — "what is the context, and
//! how much should I trust it?" — but after training, that answer has to
//! reach the appliances that act on it. This crate is the service layer in
//! between: a std-only TCP server that loads a trained classifier + quality
//! measure (optionally warm-started from a `cqm-persist` checkpoint), fields
//! concurrent classify requests over a CRC-guarded binary protocol, and
//! answers every one with the full [`QualifiedClassification`] — class,
//! quality `q`, and the filter's accept/discard verdict — so downstream
//! consumers can act on quality, not just on class.
//!
//! Layering, bottom to top:
//!
//! * [`protocol`] — length-prefixed, versioned, CRC-32-guarded frames and
//!   the request/response vocabulary. Torn and corrupt frames are typed
//!   errors, never panics, reusing the discipline of `cqm-persist`'s
//!   journal.
//! * [`queue`] — a bounded request queue with explicit admission control
//!   ([`AdmissionPolicy::Reject`] / [`AdmissionPolicy::DropOldest`] /
//!   [`AdmissionPolicy::Block`], the `EventBus` policy vocabulary applied to
//!   ingress): under overload clients get a typed `Overloaded` answer,
//!   never unbounded buffering.
//! * [`model`] — the served artifact ([`ServedModel`]) and where it comes
//!   from ([`ModelSource`]): fresh, or warm-started from a checkpoint.
//! * [`batch`] — the evaluation engine: allocation-free
//!   `ClassifierKernel`/`QualityKernel` paths, micro-batching queued
//!   requests into single kernel sweeps, bit-identical to the in-process
//!   `CqmSystem` answers.
//! * [`dedup`] — the bounded per-session exactly-once window: a retried
//!   `(session, request)` id replays the cached answer instead of
//!   executing twice.
//! * [`server`] / [`client`] — the acceptor/worker server with per-frame
//!   deadlines, dedup, a degradation ladder on admission, and graceful
//!   drain-then-checkpoint shutdown; and the blocking client with a
//!   per-call deadline budget, capped exponential backoff with seeded
//!   jitter, and idempotent retries on transient transport faults.
//!
//! [`QualifiedClassification`]: cqm_core::pipeline::QualifiedClassification
//! [`AdmissionPolicy::Reject`]: queue::AdmissionPolicy::Reject
//! [`AdmissionPolicy::DropOldest`]: queue::AdmissionPolicy::DropOldest
//! [`AdmissionPolicy::Block`]: queue::AdmissionPolicy::Block
//! [`ServedModel`]: model::ServedModel
//! [`ModelSource`]: model::ModelSource

pub mod batch;
pub mod client;
pub mod dedup;
pub mod model;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;

pub use batch::{Engine, EngineScratch};
pub use cqm_fuzzy::EvalPrecision;
pub use client::{ClientConfig, CqmClient, ServedAnswer};
pub use dedup::{Claim, DedupConfig, DedupStats, DedupWindow};
pub use model::{ModelSource, ResolvedModel, ServeCheckpoint, ServedModel};
pub use protocol::{
    Request, RequestId, Response, ServerHealth, SnapshotInfo, WireError, WireErrorKind,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use queue::{Admission, AdmissionPolicy, BoundedQueue, QueueStats};
pub use registry::{FleetConfig, FleetStats, DEFAULT_TENANT};
pub use server::{CqmServer, ServerConfig};

/// Everything that can go wrong serving or consuming the service.
#[derive(Debug)]
pub enum ServeError {
    /// An OS-level I/O failure, annotated with the operation that failed.
    Io {
        /// What the service was doing.
        op: String,
        /// The underlying error rendered to text.
        detail: String,
    },
    /// A malformed frame: torn, truncated, or failing its CRC.
    Protocol(String),
    /// A frame announced a payload larger than the protocol allows.
    FrameTooLarge {
        /// Claimed payload length.
        len: u64,
        /// The protocol's cap.
        max: u64,
    },
    /// A frame stamped with a protocol version outside this build's
    /// supported window (older than the minimum or newer than the maximum).
    ProtocolVersion {
        /// Version found in the frame header.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// An intact frame whose payload does not decode as the expected type.
    Decode(String),
    /// The peer answered with a typed error (overload, bad request, ...).
    Remote(WireError),
    /// The connection closed while a response was still owed.
    ConnectionClosed,
    /// A blocking operation ran out of time.
    Timeout(String),
    /// The client's retry budget — attempts and/or the per-call deadline —
    /// ran out. Carries the budget it exhausted and the last failure.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// Wall-clock time spent across all attempts.
        elapsed: std::time::Duration,
        /// The per-call deadline budget that bounded the attempts.
        deadline: std::time::Duration,
        /// The error the final attempt died on.
        last: Box<ServeError>,
    },
    /// The service was configured inconsistently.
    InvalidConfig(String),
    /// A failure in the underlying CQM evaluation machinery.
    Core(cqm_core::CqmError),
    /// A checkpoint load/store failure.
    Persist(cqm_persist::PersistError),
}

impl ServeError {
    pub(crate) fn io(op: impl Into<String>, e: &std::io::Error) -> Self {
        ServeError::Io {
            op: op.into(),
            detail: e.to_string(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { op, detail } => write!(f, "I/O failure while {op}: {detail}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame claims {len}-byte payload, protocol caps at {max}")
            }
            ServeError::ProtocolVersion { found, supported } => {
                write!(
                    f,
                    "frame version {found} outside the supported window (this build \
                     speaks up to {supported})"
                )
            }
            ServeError::Decode(msg) => write!(f, "payload decode failure: {msg}"),
            ServeError::Remote(e) => write!(f, "server error: {e}"),
            ServeError::ConnectionClosed => write!(f, "connection closed mid-exchange"),
            ServeError::Timeout(what) => write!(f, "timed out {what}"),
            ServeError::RetriesExhausted {
                attempts,
                elapsed,
                deadline,
                last,
            } => write!(
                f,
                "retry budget exhausted after {attempts} attempt(s) in {elapsed:?} \
                 (deadline {deadline:?}); last error: {last}"
            ),
            ServeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ServeError::Core(e) => write!(f, "evaluation failure: {e}"),
            ServeError::Persist(e) => write!(f, "persistence failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Persist(e) => Some(e),
            ServeError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<cqm_core::CqmError> for ServeError {
    fn from(e: cqm_core::CqmError) -> Self {
        ServeError::Core(e)
    }
}

impl From<cqm_persist::PersistError> for ServeError {
    fn from(e: cqm_persist::PersistError) -> Self {
        ServeError::Persist(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
