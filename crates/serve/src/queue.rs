// analyze: hot-path
//! Bounded request queue with explicit admission control.
//!
//! The server never buffers without bound: every request either fits in
//! the queue or is answered `Overloaded` right now. The three policies are
//! the `EventBus` slow-subscriber vocabulary applied to ingress:
//!
//! * [`AdmissionPolicy::Reject`] — full queue turns the new request away
//!   (the default: newest work is the cheapest to retry);
//! * [`AdmissionPolicy::DropOldest`] — full queue evicts the oldest queued
//!   request (which is answered `Overloaded`) in favour of the new one;
//! * [`AdmissionPolicy::Block`] — the producer waits up to a timeout for
//!   room, then is rejected.
//!
//! After [`BoundedQueue::close`], producers are always rejected while
//! consumers drain what was already admitted — the ordering that makes
//! drain-then-checkpoint shutdown possible: every admitted request is
//! answered before the workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// What to do with a request arriving at a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Turn the new request away.
    Reject,
    /// Evict the oldest queued request in favour of the new one.
    DropOldest,
    /// Wait up to `timeout` for room, then turn the new request away.
    Block {
        /// Longest a producer may wait for room.
        timeout: Duration,
    },
}

/// Outcome of a push under a policy.
#[derive(Debug)]
pub enum Admission<T> {
    /// The item is in the queue.
    Enqueued,
    /// The item is in the queue; the returned oldest item was evicted to
    /// make room and must still be answered (with `Overloaded`).
    Shed(T),
    /// The item was not admitted; it is handed back to the caller.
    Rejected(T),
}

/// Counters describing a queue's life so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Items admitted (including those later shed).
    pub pushed: u64,
    /// Items turned away at admission.
    pub rejected: u64,
    /// Admitted items evicted by [`AdmissionPolicy::DropOldest`].
    pub shed: u64,
    /// Deepest the queue has been.
    pub highwater: u64,
    /// Current depth.
    pub depth: u64,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Effective admission limit, `1..=capacity`. The degradation ladder
    /// lowers it under sustained overload and restores it on recovery;
    /// items already queued above a lowered limit stay queued (the limit
    /// gates admission, it never discards admitted work).
    limit: usize,
    pushed: u64,
    rejected: u64,
    shed: u64,
    highwater: u64,
}

/// A fixed-capacity MPMC queue; see the module docs for the policy
/// semantics.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
                limit: capacity.max(1),
                pushed: 0,
                rejected: 0,
                shed: 0,
                highwater: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The fixed capacity — the ceiling [`BoundedQueue::set_limit`] can
    /// never raise the effective limit above.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current effective admission limit.
    pub fn limit(&self) -> usize {
        self.lock().limit
    }

    /// Set the effective admission limit, clamped to `1..=capacity`.
    /// Raising it wakes blocked producers; lowering it never discards
    /// already-admitted items. Returns the clamped value applied.
    pub fn set_limit(&self, limit: usize) -> usize {
        let clamped = limit.clamp(1, self.capacity);
        let mut inner = self.lock();
        let raised = clamped > inner.limit;
        inner.limit = clamped;
        drop(inner);
        if raised {
            self.not_full.notify_all();
        }
        clamped
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A poisoned lock means another thread panicked while holding it;
        // the queue state itself is a plain VecDeque plus counters and is
        // sound, so recover the guard rather than propagating the panic.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn enqueue(&self, inner: &mut Inner<T>, item: T) {
        inner.items.push_back(item);
        inner.pushed += 1;
        inner.highwater = inner.highwater.max(inner.items.len() as u64);
        self.not_empty.notify_one();
    }

    /// Offer `item` under `policy`. Never blocks except under
    /// [`AdmissionPolicy::Block`], and then at most for its timeout. After
    /// [`BoundedQueue::close`], always rejects.
    pub fn push(&self, item: T, policy: &AdmissionPolicy) -> Admission<T> {
        let mut inner = self.lock();
        if inner.closed {
            inner.rejected += 1;
            return Admission::Rejected(item);
        }
        if inner.items.len() < inner.limit {
            self.enqueue(&mut inner, item);
            return Admission::Enqueued;
        }
        match policy {
            AdmissionPolicy::Reject => {
                inner.rejected += 1;
                Admission::Rejected(item)
            }
            AdmissionPolicy::DropOldest => match inner.items.pop_front() {
                Some(old) => {
                    inner.shed += 1;
                    self.enqueue(&mut inner, item);
                    Admission::Shed(old)
                }
                // len >= capacity >= 1 makes this unreachable; typed
                // fallback rather than an assertion.
                None => {
                    self.enqueue(&mut inner, item);
                    Admission::Enqueued
                }
            },
            AdmissionPolicy::Block { timeout } => {
                // lint: allow(TIME_IN_LOGIC) -- admission deadline: bounds how long a producer may park, never flows into a classified result
                let deadline = Instant::now() + *timeout;
                while inner.items.len() >= inner.limit && !inner.closed {
                    // lint: allow(TIME_IN_LOGIC) -- re-read for the condvar wait budget; timeout plumbing only
                    let now = Instant::now();
                    if now >= deadline {
                        inner.rejected += 1;
                        return Admission::Rejected(item);
                    }
                    let (guard, _timed_out) = self
                        .not_full
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    inner = guard;
                }
                if inner.closed {
                    inner.rejected += 1;
                    return Admission::Rejected(item);
                }
                self.enqueue(&mut inner, item);
                Admission::Enqueued
            }
        }
    }

    /// Block until at least one item is available (or the queue is closed
    /// and empty), then move up to `max` items into `out` (cleared first).
    /// Returns `false` only when the queue is closed and fully drained —
    /// the consumer's signal to exit. Items admitted before `close` are
    /// always delivered.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        out.clear();
        let mut inner = self.lock();
        while inner.items.is_empty() {
            if inner.closed {
                return false;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let take = max.max(1).min(inner.items.len());
        for _ in 0..take {
            match inner.items.pop_front() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        self.not_full.notify_all();
        true
    }

    /// Stop admitting; wake every waiter. Consumers drain the remainder.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.lock();
        QueueStats {
            pushed: inner.pushed,
            rejected: inner.rejected,
            shed: inner.shed,
            highwater: inner.highwater,
            depth: inner.items.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reject_policy_turns_away_at_capacity() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push(1, &AdmissionPolicy::Reject), Admission::Enqueued));
        assert!(matches!(q.push(2, &AdmissionPolicy::Reject), Admission::Enqueued));
        match q.push(3, &AdmissionPolicy::Reject) {
            Admission::Rejected(item) => assert_eq!(item, 3),
            other => panic!("expected rejection, got {other:?}"),
        }
        let s = q.stats();
        assert_eq!((s.pushed, s.rejected, s.depth), (2, 1, 2));
    }

    #[test]
    fn drop_oldest_evicts_the_head() {
        let q = BoundedQueue::new(2);
        q.push(1, &AdmissionPolicy::DropOldest);
        q.push(2, &AdmissionPolicy::DropOldest);
        match q.push(3, &AdmissionPolicy::DropOldest) {
            Admission::Shed(old) => assert_eq!(old, 1),
            other => panic!("expected shed, got {other:?}"),
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(8, &mut out));
        assert_eq!(out, vec![2, 3]);
        assert_eq!(q.stats().shed, 1);
    }

    #[test]
    fn block_policy_times_out_to_rejection() {
        let q = BoundedQueue::new(1);
        q.push(1, &AdmissionPolicy::Reject);
        let policy = AdmissionPolicy::Block {
            timeout: Duration::from_millis(30),
        };
        let t0 = Instant::now();
        match q.push(2, &policy) {
            Admission::Rejected(item) => assert_eq!(item, 2),
            other => panic!("expected timeout rejection, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn block_policy_admits_when_a_consumer_makes_room() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, &AdmissionPolicy::Reject);
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                let mut out = Vec::new();
                assert!(q.pop_batch(1, &mut out));
                out
            })
        };
        let policy = AdmissionPolicy::Block {
            timeout: Duration::from_secs(5),
        };
        assert!(matches!(q.push(2, &policy), Admission::Enqueued));
        assert_eq!(consumer.join().expect("consumer"), vec![1]);
    }

    #[test]
    fn close_drains_admitted_items_then_stops_consumers() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i, &AdmissionPolicy::Reject);
        }
        q.close();
        assert!(matches!(
            q.push(99, &AdmissionPolicy::Reject),
            Admission::Rejected(99)
        ));
        let mut out = Vec::new();
        assert!(q.pop_batch(3, &mut out));
        assert_eq!(out, vec![0, 1, 2]);
        assert!(q.pop_batch(3, &mut out));
        assert_eq!(out, vec![3, 4]);
        assert!(!q.pop_batch(3, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn pop_batch_wakes_on_close_while_waiting() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                q.pop_batch(4, &mut out)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(!consumer.join().expect("consumer"));
    }

    #[test]
    fn many_producers_one_consumer_delivers_everything_admitted() {
        let q = Arc::new(BoundedQueue::new(16));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut admitted = 0u64;
                    let policy = AdmissionPolicy::Block {
                        timeout: Duration::from_secs(5),
                    };
                    for i in 0..50u64 {
                        if matches!(q.push(p * 1000 + i, &policy), Admission::Enqueued) {
                            admitted += 1;
                        }
                    }
                    admitted
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut total = 0u64;
                let mut out = Vec::new();
                while q.pop_batch(7, &mut out) {
                    total += out.len() as u64;
                }
                total
            })
        };
        let admitted: u64 = producers
            .into_iter()
            .map(|p| p.join().expect("producer"))
            .sum();
        q.close();
        let consumed = consumer.join().expect("consumer");
        assert_eq!(admitted, 200);
        assert_eq!(consumed, admitted);
        assert_eq!(q.stats().pushed, 200);
    }

    #[test]
    fn lowered_limit_gates_admission_below_capacity() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.set_limit(2), 2);
        q.push(1, &AdmissionPolicy::Reject);
        q.push(2, &AdmissionPolicy::Reject);
        assert!(matches!(
            q.push(3, &AdmissionPolicy::Reject),
            Admission::Rejected(3)
        ));
        // Restoring the limit re-opens admission without losing anything.
        assert_eq!(q.set_limit(8), 8);
        assert!(matches!(q.push(3, &AdmissionPolicy::Reject), Admission::Enqueued));
        let mut out = Vec::new();
        assert!(q.pop_batch(8, &mut out));
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn set_limit_clamps_to_one_and_to_capacity() {
        let q = BoundedQueue::<u32>::new(4);
        assert_eq!(q.set_limit(0), 1);
        assert_eq!(q.limit(), 1);
        assert_eq!(q.set_limit(100), 4);
        assert_eq!(q.limit(), 4);
    }

    #[test]
    fn raising_the_limit_wakes_blocked_producers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.set_limit(1);
        q.push(1, &AdmissionPolicy::Reject);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let policy = AdmissionPolicy::Block {
                    timeout: Duration::from_secs(5),
                };
                matches!(q.push(2, &policy), Admission::Enqueued)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.set_limit(4);
        assert!(producer.join().expect("producer"));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn highwater_tracks_deepest_point() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i, &AdmissionPolicy::Reject);
        }
        let mut out = Vec::new();
        q.pop_batch(6, &mut out);
        assert_eq!(q.stats().highwater, 6);
        assert_eq!(q.stats().depth, 0);
    }
}
