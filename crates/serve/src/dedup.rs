//! Per-session request deduplication: the server half of exactly-once.
//!
//! The client retries a call by re-sending the *same* [`RequestId`]; this
//! window makes that retry safe. The first arrival of an id claims it and
//! executes; while it is in flight, duplicate arrivals park on a bounded
//! rendezvous channel and receive the same answer; after it completes,
//! duplicate arrivals replay the cached response verbatim. The cue vectors
//! are never evaluated twice — the soak proves it by asserting the
//! [`DedupStats::duplicate_executions`] counter stays at zero.
//!
//! Only *settled* answers are cached: classifications (fresh or degraded)
//! and `BadRequest` refusals, which are deterministic properties of the
//! request itself. Transient outcomes — `Overloaded`, `ShuttingDown`,
//! `Internal` — are deliberately **not** cached, so a retry after a
//! transient failure gets a fresh admission attempt rather than a replay
//! of the bad moment.
//!
//! Both dimensions are bounded: at most `per_session` remembered requests
//! per session and at most `max_sessions` sessions, each evicted oldest-
//! first. Eviction order lives in `VecDeque`s, never in map iteration
//! order, so behaviour is deterministic (`HASH_ITER_NONDET` discipline).

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::protocol::{RequestId, Response, WireErrorKind};

/// Bounds for the dedup window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupConfig {
    /// Remembered requests per session (clamped to at least 1).
    pub per_session: usize,
    /// Distinct sessions tracked at once (clamped to at least 1).
    pub max_sessions: usize,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            per_session: 64,
            max_sessions: 1024,
        }
    }
}

/// What the caller should do with an arriving request id.
#[derive(Debug)]
pub enum Claim {
    /// First sighting: execute the request, then [`DedupWindow::complete`].
    Execute,
    /// Already answered: send this cached response, do not execute.
    Replay(Response),
    /// The same id is executing right now on another connection: wait for
    /// its answer here instead of executing again. A receive error means
    /// the slot was evicted mid-flight (window overflow) — answer with a
    /// typed internal error.
    Wait(mpsc::Receiver<Response>),
}

/// Counters the health endpoint surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupStats {
    /// Duplicate arrivals answered from the window (replayed or parked).
    pub dedup_hits: u64,
    /// Completions that found an already-settled slot — evidence a
    /// request body was executed more than once. Exactly-once means this
    /// stays 0.
    pub duplicate_executions: u64,
}

enum Slot {
    InFlight {
        waiters: Vec<mpsc::SyncSender<Response>>,
    },
    Done(Response),
}

struct SessionWindow {
    slots: HashMap<u64, Slot>,
    /// Insertion order of request ids, oldest at the front.
    order: VecDeque<u64>,
}

struct Inner {
    sessions: HashMap<u64, SessionWindow>,
    /// Insertion order of session ids, oldest at the front.
    session_order: VecDeque<u64>,
    stats: DedupStats,
}

/// The bounded exactly-once window; see the module docs.
pub struct DedupWindow {
    inner: Mutex<Inner>,
    per_session: usize,
    max_sessions: usize,
}

/// Whether a response is a settled property of the request (cache it) or
/// a transient server condition (let a retry try again).
fn cacheable(response: &Response) -> bool {
    match response {
        Response::Classified { .. }
        | Response::ClassifiedBatch { .. }
        | Response::ClassifiedDegraded { .. } => true,
        Response::Error { error } => error.kind == WireErrorKind::BadRequest,
        Response::Snapshot { .. }
        | Response::Health { .. }
        | Response::ShuttingDown => false,
    }
}

impl DedupWindow {
    /// A window with the given bounds (each clamped to at least 1).
    pub fn new(config: DedupConfig) -> Self {
        DedupWindow {
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                session_order: VecDeque::new(),
                stats: DedupStats::default(),
            }),
            per_session: config.per_session.max(1),
            max_sessions: config.max_sessions.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // The window is counters plus plain collections; recover from a
        // poisoned lock rather than propagating a peer thread's panic.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claim `id`: decide whether the caller executes, replays, or waits.
    pub fn begin(&self, id: RequestId) -> Claim {
        let mut inner = self.lock();
        if !inner.sessions.contains_key(&id.session) {
            while inner.session_order.len() >= self.max_sessions {
                match inner.session_order.pop_front() {
                    Some(old) => {
                        inner.sessions.remove(&old);
                    }
                    None => break,
                }
            }
            inner.sessions.insert(
                id.session,
                SessionWindow {
                    slots: HashMap::new(),
                    order: VecDeque::new(),
                },
            );
            inner.session_order.push_back(id.session);
        }
        let per_session = self.per_session;
        let claim = {
            let Some(window) = inner.sessions.get_mut(&id.session) else {
                // Just inserted above; typed fallback rather than an assert.
                return Claim::Execute;
            };
            if window.slots.contains_key(&id.request) {
                match window.slots.get_mut(&id.request) {
                    Some(Slot::Done(response)) => Claim::Replay(response.clone()),
                    Some(Slot::InFlight { waiters }) => {
                        let (tx, rx) = mpsc::sync_channel::<Response>(1);
                        waiters.push(tx);
                        Claim::Wait(rx)
                    }
                    None => Claim::Execute, // contains_key said otherwise; typed fallback
                }
            } else {
                // Evict oldest ids until the new one fits. Evicting an
                // in-flight slot drops its waiters' senders; the waiters
                // observe a receive error and answer with a typed error.
                while window.order.len() >= per_session {
                    match window.order.pop_front() {
                        Some(old) => {
                            window.slots.remove(&old);
                        }
                        None => break,
                    }
                }
                window
                    .slots
                    .insert(id.request, Slot::InFlight { waiters: Vec::new() });
                window.order.push_back(id.request);
                Claim::Execute
            }
        };
        if matches!(claim, Claim::Replay(_) | Claim::Wait(_)) {
            inner.stats.dedup_hits += 1;
        }
        claim
    }

    /// Record the answer for `id` and wake any parked duplicates.
    ///
    /// Settled answers are cached for replay; transient ones clear the
    /// slot so a retry re-executes. Completing an already-settled slot
    /// increments `duplicate_executions` and keeps the first answer.
    pub fn complete(&self, id: RequestId, response: &Response) {
        let mut inner = self.lock();
        let mut parked: Vec<mpsc::SyncSender<Response>> = Vec::new();
        let mut duplicate = false;
        {
            let Some(window) = inner.sessions.get_mut(&id.session) else {
                return; // Session evicted mid-flight; requester has the answer.
            };
            if !window.slots.contains_key(&id.request) {
                return; // Slot evicted mid-flight; same reasoning.
            }
            if matches!(window.slots.get(&id.request), Some(Slot::Done(_))) {
                duplicate = true;
            } else {
                if let Some(Slot::InFlight { waiters }) = window.slots.get_mut(&id.request) {
                    parked = std::mem::take(waiters);
                }
                if cacheable(response) {
                    window.slots.insert(id.request, Slot::Done(response.clone()));
                } else {
                    window.slots.remove(&id.request);
                    window.order.retain(|r| *r != id.request);
                }
            }
        }
        if duplicate {
            inner.stats.duplicate_executions += 1;
        }
        drop(inner);
        for waiter in parked {
            // A waiter that gave up and hung up is not an error.
            let _ = waiter.try_send(response.clone());
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> DedupStats {
        self.lock().stats
    }

    /// Number of sessions currently tracked (for tests and diagnostics).
    pub fn tracked_sessions(&self) -> usize {
        self.lock().session_order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireError;
    use cqm_core::filter::Decision;
    use cqm_core::normalize::Quality;
    use cqm_core::pipeline::QualifiedClassification;
    use cqm_core::ClassId;

    fn id(session: u64, request: u64) -> RequestId {
        RequestId { session, request }
    }

    fn answer(class: usize) -> Response {
        Response::Classified {
            result: QualifiedClassification {
                class: ClassId(class),
                quality: Quality::Value(0.75),
                decision: Decision::Accept,
            },
        }
    }

    #[test]
    fn first_claim_executes_and_retry_replays_after_completion() {
        let w = DedupWindow::new(DedupConfig::default());
        assert!(matches!(w.begin(id(1, 1)), Claim::Execute));
        w.complete(id(1, 1), &answer(2));
        match w.begin(id(1, 1)) {
            Claim::Replay(Response::Classified { result }) => assert_eq!(result.class, ClassId(2)),
            other => panic!("expected replay, got {other:?}"),
        }
        let s = w.stats();
        assert_eq!((s.dedup_hits, s.duplicate_executions), (1, 0));
    }

    #[test]
    fn concurrent_duplicate_parks_and_receives_the_answer() {
        let w = DedupWindow::new(DedupConfig::default());
        assert!(matches!(w.begin(id(1, 7)), Claim::Execute));
        let rx = match w.begin(id(1, 7)) {
            Claim::Wait(rx) => rx,
            other => panic!("expected wait, got {other:?}"),
        };
        w.complete(id(1, 7), &answer(1));
        match rx.recv().expect("parked duplicate must be answered") {
            Response::Classified { result } => assert_eq!(result.class, ClassId(1)),
            other => panic!("unexpected answer {other:?}"),
        }
        assert_eq!(w.stats().dedup_hits, 1);
    }

    #[test]
    fn transient_answers_are_not_cached_so_retries_re_execute() {
        let w = DedupWindow::new(DedupConfig::default());
        assert!(matches!(w.begin(id(1, 1)), Claim::Execute));
        w.complete(
            id(1, 1),
            &Response::Error {
                error: WireError::overloaded(),
            },
        );
        // The retry gets a fresh execution, not a replayed rejection.
        assert!(matches!(w.begin(id(1, 1)), Claim::Execute));
    }

    #[test]
    fn bad_request_is_settled_and_replayed() {
        let w = DedupWindow::new(DedupConfig::default());
        assert!(matches!(w.begin(id(1, 1)), Claim::Execute));
        w.complete(
            id(1, 1),
            &Response::Error {
                error: WireError::bad_request("cue dimension"),
            },
        );
        assert!(matches!(w.begin(id(1, 1)), Claim::Replay(_)));
    }

    #[test]
    fn per_session_window_evicts_oldest_ids() {
        let w = DedupWindow::new(DedupConfig {
            per_session: 2,
            max_sessions: 8,
        });
        for r in 0..3 {
            assert!(matches!(w.begin(id(1, r)), Claim::Execute));
            w.complete(id(1, r), &answer(r as usize));
        }
        // Request 0 fell out of the window: a retry re-executes (the
        // exactly-once guarantee is bounded by the window, by design).
        assert!(matches!(w.begin(id(1, 0)), Claim::Execute));
        // Requests 1 and 2 are still remembered.
        assert!(matches!(w.begin(id(1, 2)), Claim::Replay(_)));
    }

    #[test]
    fn session_cap_evicts_the_oldest_session() {
        let w = DedupWindow::new(DedupConfig {
            per_session: 4,
            max_sessions: 2,
        });
        for s in 0..3 {
            assert!(matches!(w.begin(id(s, 1)), Claim::Execute));
            w.complete(id(s, 1), &answer(0));
        }
        assert_eq!(w.tracked_sessions(), 2);
        // Session 0 was evicted; its retry re-executes.
        assert!(matches!(w.begin(id(0, 1)), Claim::Execute));
        // Session 2 survives.
        assert!(matches!(w.begin(id(2, 1)), Claim::Replay(_)));
    }

    #[test]
    fn double_completion_is_counted_as_a_duplicate_execution() {
        let w = DedupWindow::new(DedupConfig::default());
        assert!(matches!(w.begin(id(1, 1)), Claim::Execute));
        w.complete(id(1, 1), &answer(1));
        w.complete(id(1, 1), &answer(2));
        assert_eq!(w.stats().duplicate_executions, 1);
        // The first answer wins.
        match w.begin(id(1, 1)) {
            Claim::Replay(Response::Classified { result }) => assert_eq!(result.class, ClassId(1)),
            other => panic!("expected replay of the first answer, got {other:?}"),
        }
    }

    #[test]
    fn evicted_in_flight_slot_drops_waiters_with_a_receive_error() {
        let w = DedupWindow::new(DedupConfig {
            per_session: 1,
            max_sessions: 8,
        });
        assert!(matches!(w.begin(id(1, 1)), Claim::Execute));
        let rx = match w.begin(id(1, 1)) {
            Claim::Wait(rx) => rx,
            other => panic!("expected wait, got {other:?}"),
        };
        // A second id forces the in-flight slot out of the 1-wide window.
        assert!(matches!(w.begin(id(1, 2)), Claim::Execute));
        assert!(rx.recv().is_err());
        // Completing the evicted id is a harmless no-op.
        w.complete(id(1, 1), &answer(1));
        assert_eq!(w.stats().duplicate_executions, 0);
    }
}
