// analyze: hot-path
//! The evaluation engine and the worker loop — the service's request hot
//! path.
//!
//! Every queued request is answered here through the allocation-free
//! kernel paths: [`ClassifierKernel`] for the class, [`QualityKernel`] for
//! `q`, both proven bit-identical to the plain `CqmSystem` evaluation.
//! Workers pop up to `micro_batch` queued jobs at a time and fold every
//! single-classify request in the batch into **one** kernel sweep
//! ([`ClassifierKernel::classify_batch_into`]); because the batched sweep
//! is itself bit-identical to row-wise evaluation, micro-batching is
//! invisible in the answers — only in the throughput.
//!
//! Failure containment: jobs in a micro-batch are independent requests
//! from unrelated clients, so one malformed row must not fail its batch
//! peers. The sweep is optimistic; if any row errors, the worker falls
//! back to row-wise evaluation and each job gets its own verdict.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use cqm_classify::ClassifierKernel;
use cqm_core::classifier::ClassId;
use cqm_core::pipeline::QualifiedClassification;
use cqm_core::{CqmError, QualityFilter, QualityKernel, QualityScratch};
use cqm_fuzzy::{EvalPrecision, TskScratch};

use crate::model::ServedModel;
use crate::protocol::{Response, WireError};
use crate::queue::BoundedQueue;
use crate::Result;

/// The work carried by one queued job.
#[derive(Debug)]
pub(crate) enum Work {
    /// One `Classify` request.
    One(Vec<f64>),
    /// One `ClassifyBatch` request (atomic: first error rejects it whole).
    Many(Vec<Vec<f64>>),
}

/// A queued request plus the channel its session is parked on and the
/// engine that must answer it. The engine `Arc` is pinned at admission
/// time by the model registry's routing slot, which is what makes hot
/// swaps zero-drop: a swap flips the slot for *future* admissions, while
/// every already-queued job still holds (and is answered by) the engine it
/// was admitted under — never a half-loaded one.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) work: Work,
    pub(crate) reply: mpsc::SyncSender<Response>,
    pub(crate) engine: Arc<Engine>,
}

/// Reusable per-worker evaluation state: FIS scratch, quality scratch and
/// the sweep buffers. One instance per worker thread.
#[derive(Debug, Default)]
pub struct EngineScratch {
    tsk: TskScratch,
    quality: QualityScratch,
    raw: Vec<f64>,
    classes: Vec<ClassId>,
}

impl EngineScratch {
    /// An empty scratch (sizes itself on first evaluation).
    pub fn new() -> Self {
        EngineScratch::default()
    }
}

/// The immutable evaluation core shared by all workers: classifier kernel,
/// quality kernel and the filter at the model's operating threshold.
#[derive(Debug, Clone)]
pub struct Engine {
    classifier: ClassifierKernel,
    quality: QualityKernel,
    filter: QualityFilter,
}

impl Engine {
    /// Build the kernels from a validated model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::InvalidConfig`] on an invalid stored
    /// threshold (guarded at model construction, practically unreachable).
    pub fn new(model: &ServedModel) -> Result<Engine> {
        Ok(Engine {
            classifier: model.classifier().kernel(),
            quality: model.model().measure.kernel(),
            filter: model.filter()?,
        })
    }

    /// Cue dimensionality the engine expects.
    pub fn cue_dim(&self) -> usize {
        self.classifier.cue_dim()
    }

    fn finish(
        &self,
        cues: &[f64],
        class: ClassId,
        quality_scratch: &mut QualityScratch,
    ) -> std::result::Result<QualifiedClassification, CqmError> {
        let quality = self.quality.measure_into(cues, class, quality_scratch)?;
        Ok(QualifiedClassification {
            class,
            quality,
            decision: self.filter.decide(quality),
        })
    }

    /// Answer one cue vector — class, quality, verdict — bit-identical to
    /// `CqmSystem::classify_with_quality` on the same model.
    ///
    /// # Errors
    ///
    /// Same conditions as the plain pipeline: malformed cues and
    /// uncovered-classifier inputs.
    pub fn classify_one(
        &self,
        cues: &[f64],
        scratch: &mut EngineScratch,
    ) -> std::result::Result<QualifiedClassification, CqmError> {
        self.classify_one_prec(cues, EvalPrecision::Exact, scratch)
    }

    /// [`Engine::classify_one`] under an explicit classifier precision
    /// contract (see [`EvalPrecision`]). Only the classifier sweep is ever
    /// approximated; the quality measure and filter verdict always run the
    /// exact path, so `q` stays bit-identical to the in-process pipeline
    /// at any serving precision.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::classify_one`].
    pub fn classify_one_prec(
        &self,
        cues: &[f64],
        precision: EvalPrecision,
        scratch: &mut EngineScratch,
    ) -> std::result::Result<QualifiedClassification, CqmError> {
        let class = self
            .classifier
            .classify_into_prec(cues, precision, &mut scratch.tsk)?;
        self.finish(cues, class, &mut scratch.quality)
    }

    /// Answer an atomic batch in one kernel sweep; the first failing row
    /// rejects the whole batch (matching `CqmSystem::classify_batch`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::classify_one`] for any row.
    pub fn classify_rows(
        &self,
        rows: &[Vec<f64>],
        scratch: &mut EngineScratch,
        out: &mut Vec<QualifiedClassification>,
    ) -> std::result::Result<(), CqmError> {
        self.classify_rows_prec(rows, EvalPrecision::Exact, scratch, out)
    }

    /// [`Engine::classify_rows`] under an explicit classifier precision
    /// contract; like [`Engine::classify_one_prec`], the quality measure
    /// always runs exact.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::classify_one`] for any row.
    pub fn classify_rows_prec(
        &self,
        rows: &[Vec<f64>],
        precision: EvalPrecision,
        scratch: &mut EngineScratch,
        out: &mut Vec<QualifiedClassification>,
    ) -> std::result::Result<(), CqmError> {
        out.clear();
        self.classifier.classify_batch_into_prec(
            rows,
            precision,
            &mut scratch.tsk,
            &mut scratch.raw,
            &mut scratch.classes,
        )?;
        out.reserve_exact(rows.len());
        for (row, &class) in rows.iter().zip(scratch.classes.iter()) {
            let qc = self.finish(row, class, &mut scratch.quality)?;
            out.push(qc);
        }
        Ok(())
    }

    /// Evaluate independent single-classify rows, one verdict per row.
    /// Optimistically sweeps all rows through one kernel pass; on any
    /// failure, falls back to row-wise evaluation so each row gets its own
    /// verdict and one bad row cannot fail its micro-batch peers.
    fn eval_singles(
        &self,
        rows: &[Vec<f64>],
        precision: EvalPrecision,
        scratch: &mut EngineScratch,
        out: &mut Vec<std::result::Result<QualifiedClassification, CqmError>>,
    ) {
        out.clear();
        out.reserve(rows.len());
        let swept = self
            .classifier
            .classify_batch_into_prec(
                rows,
                precision,
                &mut scratch.tsk,
                &mut scratch.raw,
                &mut scratch.classes,
            )
            .is_ok()
            && scratch.classes.len() == rows.len();
        if swept {
            for (row, &class) in rows.iter().zip(scratch.classes.iter()) {
                out.push(self.finish(row, class, &mut scratch.quality));
            }
        } else {
            for row in rows {
                out.push(self.classify_one_prec(row, precision, scratch));
            }
        }
    }
}

/// Translate an evaluation failure into wire vocabulary: input-dependent
/// failures (bad dimension, non-finite cues, input outside the rule
/// support) are the client's to fix; anything else is the server's fault.
pub(crate) fn to_wire(e: &CqmError) -> WireError {
    match e {
        CqmError::InvalidInput(_) | CqmError::Fuzzy(_) => WireError::bad_request(e.to_string()),
        other => WireError::internal(other.to_string()),
    }
}

/// One worker's life: pop micro-batches until the queue closes and is
/// drained, answer every job on its reply channel. `eval_delay` is a
/// load-shaping knob for tests and the load generator — it simulates a
/// slower model by sleeping once per popped batch.
///
/// With multi-tenant routing, jobs in one micro-batch may carry different
/// engines. Single-classify rows are still folded into combined kernel
/// sweeps, one sweep per maximal run of consecutive same-engine jobs
/// (tenant traffic tends to arrive in bursts, so runs are long in
/// practice); runs are compared by `Arc` identity, never by model
/// contents. Because the batched sweep is bit-identical to row-wise
/// evaluation, the grouping is invisible in the answers.
pub(crate) fn run_worker(
    queue: &BoundedQueue<Job>,
    micro_batch: usize,
    precision: EvalPrecision,
    eval_delay: Option<Duration>,
    rows_classified: &AtomicU64,
) {
    let mut jobs: Vec<Job> = Vec::new();
    let mut scratch = EngineScratch::new();
    let mut single_rows: Vec<Vec<f64>> = Vec::new();
    let mut single_engines: Vec<Arc<Engine>> = Vec::new();
    let mut run_results: Vec<std::result::Result<QualifiedClassification, CqmError>> = Vec::new();
    let mut single_results: Vec<std::result::Result<QualifiedClassification, CqmError>> =
        Vec::new();
    while queue.pop_batch(micro_batch, &mut jobs) {
        if let Some(delay) = eval_delay {
            std::thread::sleep(delay);
        }
        // Gather every single-classify row in this micro-batch alongside
        // the engine its lease pinned. The cue vectors are moved out (not
        // cloned) and the engine refs are `Arc` bumps, not allocations;
        // the jobs keep empty husks.
        single_rows.clear();
        single_engines.clear();
        for job in jobs.iter_mut() {
            if let Work::One(cues) = &mut job.work {
                single_rows.push(std::mem::take(cues));
                single_engines.push(Arc::clone(&job.engine));
            }
        }
        // Sweep each maximal consecutive same-engine run in one kernel
        // pass; results land in request order. `run >= 1` always (the
        // first element matches itself), so both splits are in bounds and
        // the loop strictly shrinks.
        single_results.clear();
        let mut rows_left: &[Vec<f64>] = &single_rows;
        let mut engines_left: &[Arc<Engine>] = &single_engines;
        while let Some(engine) = engines_left.first() {
            let run = engines_left
                .iter()
                .take_while(|e| Arc::ptr_eq(e, engine))
                .count();
            let (run_rows, rest_rows) = rows_left.split_at(run.min(rows_left.len()));
            engine.eval_singles(run_rows, precision, &mut scratch, &mut run_results);
            single_results.extend(run_results.drain(..));
            rows_left = rest_rows;
            let (_, rest_engines) = engines_left.split_at(run);
            engines_left = rest_engines;
        }
        let mut answered_rows = 0u64;
        let mut singles = single_results.drain(..);
        for job in jobs.drain(..) {
            let response = match job.work {
                Work::One(_) => match singles.next() {
                    Some(Ok(result)) => {
                        answered_rows += 1;
                        Response::Classified { result }
                    }
                    Some(Err(e)) => Response::Error { error: to_wire(&e) },
                    // Bookkeeping mismatch; typed rather than asserted.
                    None => Response::Error {
                        error: WireError::internal("micro-batch bookkeeping mismatch"),
                    },
                },
                Work::Many(rows) => {
                    let mut results = Vec::with_capacity(rows.len());
                    match job
                        .engine
                        .classify_rows_prec(&rows, precision, &mut scratch, &mut results)
                    {
                        Ok(()) => {
                            answered_rows += results.len() as u64;
                            Response::ClassifiedBatch { results }
                        }
                        Err(e) => Response::Error { error: to_wire(&e) },
                    }
                }
            };
            // The session may have hung up while its job was queued (dead
            // channel), or stopped waiting after a reply timeout (full
            // buffer); either way nobody is listening — never block a
            // worker on a session's single reply slot.
            let _ = job.reply.try_send(response);
        }
        rows_classified.fetch_add(answered_rows, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::tiny_model;
    use crate::queue::AdmissionPolicy;
    use cqm_core::{CqmSystem, QualityFilter};

    fn reference(model: &crate::model::ServedModel) -> CqmSystem<cqm_classify::FisClassifier> {
        CqmSystem::new(
            model.classifier().clone(),
            model.model().measure.clone(),
            QualityFilter::new(model.model().threshold).expect("filter"),
        )
        .expect("system")
    }

    fn bits(q: &QualifiedClassification) -> (usize, Option<u64>, bool) {
        (
            q.class.0,
            q.quality.value().map(f64::to_bits),
            q.decision.is_accept(),
        )
    }

    #[test]
    fn engine_matches_in_process_system_bitwise() {
        let model = tiny_model();
        let engine = Engine::new(&model).expect("engine");
        let system = reference(&model);
        let mut scratch = EngineScratch::new();
        let mut x = -0.2;
        while x <= 1.2 {
            let served = engine.classify_one(&[x], &mut scratch).expect("serve");
            let local = system.classify_with_quality(&[x]).expect("local");
            assert_eq!(bits(&served), bits(&local), "x={x}");
            x += 0.04;
        }
    }

    #[test]
    fn batch_rows_match_single_rows_bitwise() {
        let model = tiny_model();
        let engine = Engine::new(&model).expect("engine");
        let mut scratch = EngineScratch::new();
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let mut batch = Vec::new();
        engine
            .classify_rows(&rows, &mut scratch, &mut batch)
            .expect("batch");
        for (row, b) in rows.iter().zip(batch.iter()) {
            let single = engine.classify_one(row, &mut scratch).expect("single");
            assert_eq!(bits(b), bits(&single));
        }
    }

    #[test]
    fn one_bad_row_rejects_an_atomic_batch_but_not_micro_batch_peers() {
        let model = tiny_model();
        let engine = Engine::new(&model).expect("engine");
        let mut scratch = EngineScratch::new();
        let mut out = Vec::new();
        let rows = vec![vec![0.1], vec![f64::NAN], vec![0.9]];
        assert!(engine.classify_rows(&rows, &mut scratch, &mut out).is_err());
        // The same rows as independent singles: good rows still answer.
        let mut results = Vec::new();
        engine.eval_singles(&rows, EvalPrecision::Exact, &mut scratch, &mut results);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn worker_answers_every_admitted_job_then_exits_on_close() {
        let model = tiny_model();
        let engine = Arc::new(Engine::new(&model).expect("engine"));
        let queue = BoundedQueue::new(32);
        let rows_classified = AtomicU64::new(0);
        let mut receivers = Vec::new();
        for i in 0..10 {
            let (tx, rx) = mpsc::sync_channel(1);
            let work = if i % 3 == 0 {
                Work::Many(vec![vec![0.2], vec![0.8]])
            } else {
                Work::One(vec![i as f64 / 9.0])
            };
            assert!(matches!(
                queue.push(
                    Job {
                        work,
                        reply: tx,
                        engine: Arc::clone(&engine)
                    },
                    &AdmissionPolicy::Reject
                ),
                crate::queue::Admission::Enqueued
            ));
            receivers.push(rx);
        }
        queue.close();
        run_worker(&queue, 4, EvalPrecision::Exact, None, &rows_classified);
        for rx in receivers {
            let resp = rx.try_recv().expect("every admitted job is answered");
            assert!(matches!(
                resp,
                Response::Classified { .. } | Response::ClassifiedBatch { .. }
            ));
        }
        // 6 singles + 4 batches x 2 rows
        assert_eq!(rows_classified.load(Ordering::Relaxed), 14);
    }

    #[test]
    fn mixed_engine_micro_batch_routes_each_single_to_its_own_engine() {
        // Two engines from bit-distinct models interleaved in one
        // micro-batch: every answer must match the in-process system of
        // the engine its job carried, proving run-grouping never crosses
        // tenants.
        let model_a = tiny_model();
        let model_b = {
            let m = tiny_model();
            let mut cqm = m.model().clone();
            cqm.threshold = 0.25;
            crate::model::ServedModel::new(m.classifier().clone(), cqm).expect("model b")
        };
        let engine_a = Arc::new(Engine::new(&model_a).expect("engine a"));
        let engine_b = Arc::new(Engine::new(&model_b).expect("engine b"));
        let sys_a = reference(&model_a);
        let sys_b = reference(&model_b);
        let queue = BoundedQueue::new(32);
        let rows_classified = AtomicU64::new(0);
        let mut receivers = Vec::new();
        let mut cues = Vec::new();
        for i in 0..12 {
            let x = 0.1 + (i as f64) * 0.07;
            let (tx, rx) = mpsc::sync_channel(1);
            let engine = if i % 3 == 0 { &engine_b } else { &engine_a };
            assert!(matches!(
                queue.push(
                    Job {
                        work: Work::One(vec![x]),
                        reply: tx,
                        engine: Arc::clone(engine)
                    },
                    &AdmissionPolicy::Reject
                ),
                crate::queue::Admission::Enqueued
            ));
            receivers.push(rx);
            cues.push((x, i % 3 == 0));
        }
        queue.close();
        run_worker(&queue, 12, EvalPrecision::Exact, None, &rows_classified);
        for (rx, (x, is_b)) in receivers.into_iter().zip(cues) {
            let resp = rx.try_recv().expect("answered");
            let Response::Classified { result } = resp else {
                panic!("expected Classified, got {resp:?}");
            };
            let sys = if is_b { &sys_b } else { &sys_a };
            let local = sys.classify_with_quality(&[x]).expect("local");
            assert_eq!(bits(&result), bits(&local), "x={x} is_b={is_b}");
        }
        assert_eq!(rows_classified.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn bounded_precision_keeps_quality_exact_and_classes_stable() {
        let model = tiny_model();
        let engine = Engine::new(&model).expect("engine");
        let system = reference(&model);
        let mut scratch = EngineScratch::new();
        let mut x = -0.2;
        while x <= 1.2 {
            let served = engine
                .classify_one_prec(&[x], EvalPrecision::BoundedUlp, &mut scratch)
                .expect("serve");
            let local = system.classify_with_quality(&[x]).expect("local");
            // The quality measure always runs exact, so q is bit-identical
            // even at bounded precision; on this well-separated testbed the
            // sub-ULP classifier drift never crosses a rounding boundary.
            assert_eq!(bits(&served), bits(&local), "x={x}");
            x += 0.04;
        }
    }

    #[test]
    fn bounded_precision_worker_answers_match_engine_path() {
        let model = tiny_model();
        let engine = Arc::new(Engine::new(&model).expect("engine"));
        let queue = BoundedQueue::new(16);
        let rows_classified = AtomicU64::new(0);
        let mut receivers = Vec::new();
        let xs: Vec<f64> = (0..9).map(|i| 0.05 + i as f64 * 0.11).collect();
        for &x in &xs {
            let (tx, rx) = mpsc::sync_channel(1);
            assert!(matches!(
                queue.push(
                    Job {
                        work: Work::One(vec![x]),
                        reply: tx,
                        engine: Arc::clone(&engine)
                    },
                    &AdmissionPolicy::Reject
                ),
                crate::queue::Admission::Enqueued
            ));
            receivers.push(rx);
        }
        queue.close();
        run_worker(&queue, 4, EvalPrecision::BoundedUlp, None, &rows_classified);
        let mut scratch = EngineScratch::new();
        for (rx, x) in receivers.into_iter().zip(xs) {
            let resp = rx.try_recv().expect("answered");
            let Response::Classified { result } = resp else {
                panic!("expected Classified, got {resp:?}");
            };
            let want = engine
                .classify_one_prec(&[x], EvalPrecision::BoundedUlp, &mut scratch)
                .expect("engine path");
            assert_eq!(bits(&result), bits(&want), "x={x}");
        }
    }

    #[test]
    fn uncovered_input_is_bad_request_not_internal() {
        let model = tiny_model();
        let engine = Engine::new(&model).expect("engine");
        let mut scratch = EngineScratch::new();
        let err = engine
            .classify_one(&[1.0e6], &mut scratch)
            .expect_err("outside support");
        assert_eq!(
            to_wire(&err).kind,
            crate::protocol::WireErrorKind::BadRequest
        );
    }
}
