//! The served artifact and where it comes from.
//!
//! A server holds one [`ServedModel`]: the trained FIS classifier plus the
//! [`CqmModel`] bundle (quality measure + operating threshold). Models are
//! validated at construction — cue dimensions must agree and the threshold
//! must build a filter — so a server never starts on an inconsistent
//! artifact.
//!
//! Warm start reuses `cqm-persist`'s checkpoint machinery verbatim: a
//! [`ServeCheckpoint`] is an ordinary CRC-guarded checkpoint envelope whose
//! payload is the model plus a monotone sequence number. A server given
//! [`ModelSource::WarmStart`] refuses to run without one; given
//! [`ModelSource::WarmStartOr`] it falls back to the provided fresh model
//! on a missing file (but still refuses a *corrupt* one — silently serving
//! a fallback when the checkpoint is damaged would hide exactly the fault
//! the CRC exists to surface).

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use cqm_classify::FisClassifier;
use cqm_core::classifier::Classifier;
use cqm_core::model::CqmModel;
use cqm_core::QualityFilter;
use cqm_persist::CheckpointHandle;

use crate::{Result, ServeError};

/// Everything a server needs to answer classify+quality requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedModel {
    classifier: FisClassifier,
    model: CqmModel,
}

impl ServedModel {
    /// Bundle a classifier with its quality model, validating consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if the cue dimensions
    /// disagree or the model's threshold cannot build a filter.
    pub fn new(classifier: FisClassifier, model: CqmModel) -> Result<Self> {
        if classifier.cue_dim() != model.measure.cue_dim() {
            return Err(ServeError::InvalidConfig(format!(
                "classifier expects {} cues, quality measure expects {}",
                classifier.cue_dim(),
                model.measure.cue_dim()
            )));
        }
        model
            .filter()
            .map_err(|e| ServeError::InvalidConfig(format!("model threshold: {e}")))?;
        Ok(ServedModel { classifier, model })
    }

    /// The classifier half.
    pub fn classifier(&self) -> &FisClassifier {
        &self.classifier
    }

    /// The quality-model half.
    pub fn model(&self) -> &CqmModel {
        &self.model
    }

    /// Cue dimensionality `n` both halves agree on.
    pub fn cue_dim(&self) -> usize {
        self.classifier.cue_dim()
    }

    /// Number of context classes the classifier can emit.
    pub fn num_classes(&self) -> usize {
        self.classifier.num_classes()
    }

    /// The runtime filter at the model's operating threshold.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] on an invalid stored
    /// threshold (guarded at construction, so practically unreachable).
    pub fn filter(&self) -> Result<QualityFilter> {
        self.model
            .filter()
            .map_err(|e| ServeError::InvalidConfig(format!("model threshold: {e}")))
    }
}

/// The checkpoint payload a server writes on shutdown and warm-starts
/// from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCheckpoint {
    /// Monotone generation counter: 0 means "never checkpointed"; each
    /// graceful shutdown writes `seq + 1`.
    pub seq: u64,
    /// The model that was being served.
    pub model: ServedModel,
}

/// Where a server's model comes from.
#[derive(Debug, Clone)]
pub enum ModelSource {
    /// Serve this model; start at sequence 0.
    Fresh(ServedModel),
    /// Load the checkpoint at this path; refuse to start without it.
    WarmStart(PathBuf),
    /// Load the checkpoint if present, otherwise serve the fallback. A
    /// *corrupt* checkpoint is still an error, never silently skipped.
    WarmStartOr {
        /// Checkpoint location.
        path: PathBuf,
        /// Model to serve when no checkpoint exists yet.
        fallback: Box<ServedModel>,
    },
}

/// A resolved source: the model to serve plus its provenance.
#[derive(Debug, Clone)]
pub struct ResolvedModel {
    /// The model to serve.
    pub model: ServedModel,
    /// Sequence of the checkpoint it came from (0 for fresh).
    pub seq: u64,
    /// Whether it came from a checkpoint.
    pub warm_started: bool,
}

impl ModelSource {
    /// Resolve to a concrete model, reading the checkpoint when asked.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Persist`] on a missing ([`WarmStart`]) or corrupt
    ///   (both warm variants) checkpoint;
    /// * [`ServeError::InvalidConfig`] if the loaded model fails
    ///   validation.
    ///
    /// [`WarmStart`]: ModelSource::WarmStart
    pub fn resolve(self) -> Result<ResolvedModel> {
        match self {
            ModelSource::Fresh(model) => Ok(ResolvedModel {
                model,
                seq: 0,
                warm_started: false,
            }),
            ModelSource::WarmStart(path) => {
                let ck: ServeCheckpoint = CheckpointHandle::new(path).load()?;
                Ok(ResolvedModel {
                    // Re-validate: the CRC proves integrity, not semantic
                    // consistency of a hand-edited artifact.
                    model: ServedModel::new(ck.model.classifier, ck.model.model)?,
                    seq: ck.seq,
                    warm_started: true,
                })
            }
            ModelSource::WarmStartOr { path, fallback } => {
                match CheckpointHandle::new(path).try_load::<ServeCheckpoint>()? {
                    Some(ck) => Ok(ResolvedModel {
                        model: ServedModel::new(ck.model.classifier, ck.model.model)?,
                        seq: ck.seq,
                        warm_started: true,
                    }),
                    None => Ok(ResolvedModel {
                        model: *fallback,
                        seq: 0,
                        warm_started: false,
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use cqm_core::model::MODEL_VERSION;
    use cqm_core::QualityMeasure;
    use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};

    /// A hand-built two-class model over one cue in [0, 1]: class 0 near
    /// 0, class 1 near 1; quality high when cue and class agree.
    pub fn tiny_model() -> ServedModel {
        let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).expect("gaussian");
        let class_fis = TskFis::new(vec![
            TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).expect("rule"),
            TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).expect("rule"),
        ])
        .expect("class fis");
        let classifier = FisClassifier::from_fis(class_fis, 2).expect("classifier");
        let quality_fis = TskFis::new(vec![
            TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
            TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
            TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
            TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
        ])
        .expect("quality fis");
        let measure = QualityMeasure::new(quality_fis).expect("measure");
        let model = CqmModel {
            version: MODEL_VERSION,
            measure,
            threshold: 0.5,
            note: "tiny test model".into(),
        };
        ServedModel::new(classifier, model).expect("served model")
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::tiny_model;
    use super::*;
    use cqm_persist::PersistError;
    use std::fs;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqm_serve_model_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn construction_validates_cue_dims() {
        let m = tiny_model();
        assert_eq!(m.cue_dim(), 1);
        assert_eq!(m.num_classes(), 2);
        // A quality measure over 2 cues cannot pair with a 1-cue classifier.
        let other = tiny_model();
        let mismatched = CqmModel {
            measure: {
                use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};
                let g = |mu: f64| MembershipFunction::gaussian(mu, 0.3).expect("gaussian");
                cqm_core::QualityMeasure::new(
                    TskFis::new(vec![TskRule::new(
                        vec![g(0.0), g(0.0), g(0.0)],
                        vec![0.0, 0.0, 0.0, 1.0],
                    )
                    .expect("rule")])
                    .expect("fis"),
                )
                .expect("measure")
            },
            ..other.model().clone()
        };
        assert!(matches!(
            ServedModel::new(other.classifier().clone(), mismatched),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn fresh_source_resolves_cold() {
        let r = ModelSource::Fresh(tiny_model()).resolve().expect("resolve");
        assert_eq!(r.seq, 0);
        assert!(!r.warm_started);
    }

    #[test]
    fn warm_start_round_trips_through_checkpoint() {
        let dir = scratch_dir("warm");
        let path = dir.join("serve.ckpt");
        let ck = ServeCheckpoint {
            seq: 3,
            model: tiny_model(),
        };
        CheckpointHandle::new(&path).save(&ck).expect("save");
        let r = ModelSource::WarmStart(path).resolve().expect("resolve");
        assert_eq!(r.seq, 3);
        assert!(r.warm_started);
        assert_eq!(r.model, tiny_model());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_warm_start_refuses_missing_checkpoint() {
        let dir = scratch_dir("strict");
        let err = ModelSource::WarmStart(dir.join("absent.ckpt"))
            .resolve()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Persist(PersistError::NoCheckpoint(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_start_or_falls_back_on_missing_but_not_on_corrupt() {
        let dir = scratch_dir("fallback");
        let path = dir.join("serve.ckpt");
        let source = || ModelSource::WarmStartOr {
            path: path.clone(),
            fallback: Box::new(tiny_model()),
        };
        let r = source().resolve().expect("fallback resolve");
        assert!(!r.warm_started);
        assert_eq!(r.seq, 0);
        // Now a corrupt checkpoint: fallback must NOT paper over it.
        CheckpointHandle::new(&path)
            .save(&ServeCheckpoint {
                seq: 1,
                model: tiny_model(),
            })
            .expect("save");
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            source().resolve().unwrap_err(),
            ServeError::Persist(PersistError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
