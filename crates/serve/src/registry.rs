//! The model registry: tenant-keyed routing slots with bulkhead isolation,
//! checkpoint-backed LRU eviction/warm-load, and zero-drop hot swap.
//!
//! One [`ModelRegistry`] sits between session admission and the worker
//! queue. Every classify request names a tenant (default: the
//! [`DEFAULT_TENANT`] slot) and is admitted through that tenant's **slot**,
//! a tiny state machine (DESIGN.md §13):
//!
//! ```text
//!            warm-load ok                      swap ok (atomic flip)
//!   Cold ──────────────────▶ Active ◀────────────────────────┐
//!    ▲  ╲ load failed          │  ╲                          │
//!    │   ╲ (breaker trips)     │   ╲ LRU eviction            │ candidate
//!    │    ▼                    │    ▼ (checkpoint-backed)    │ validated
//!    │  Quarantined ◀──────────┘   Cold                      │ beside live
//!    │      │    probe failed                                │ model
//!    │      │ breaker cooldown: HalfOpen reload probe ───────┘
//!    └──────┴── probe ok
//! ```
//!
//! **Bulkheads.** Each slot has its own in-flight budget and its own
//! [`CircuitBreaker`]. A hot tenant is shed with a typed
//! `Overloaded` answer *before* touching the shared queue; a tenant whose
//! checkpoint fails to load is quarantined behind its breaker and answered
//! `TenantQuarantined` until a cooldown-gated reload probe succeeds — or a
//! fully verified hot swap repairs the checkpoint and closes the breaker.
//! Neither path touches any other tenant's slot, the shared queue, or the
//! global degradation ladder — peers keep answering bit-identically to the
//! in-process pipeline.
//!
//! **Zero-drop hot swap.** [`ModelRegistry::swap`] builds the candidate
//! engine *beside* the live one, validates it (construction revalidation +
//! a bit-exact replay probe against a pinned cue set), persists it to the
//! checkpoint store, re-reads and re-decodes what was persisted (the CRC
//! catches torn/corrupt writes — and, in drills, injected read faults),
//! and only then flips the routing slot under the lock. In-flight jobs
//! hold the old engine `Arc` and finish on it; requests admitted after the
//! flip get the new one. No request is dropped and none is ever answered
//! by a half-loaded model: an engine is reachable from a slot only after
//! it has fully validated. Any validation failure re-persists the
//! last-good model and leaves routing untouched.
//!
//! **Fault-tolerant warm-load.** Cold-slot loads read through an optional
//! seeded [`DiskFaultInjector`], so torn, corrupt and slow checkpoint
//! reads are first-class, replayable test inputs. Loads happen *outside*
//! the registry lock (a slow disk for tenant A must not block tenant B's
//! admission); concurrent requests for the still-loading tenant are shed
//! with retryable `Overloaded` answers.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use cqm_core::{CqmSystem, QualityFilter};
use cqm_persist::{decode_checkpoint_bytes, CheckpointStore, PersistError};
use cqm_resilience::diskfault::{DiskFaultInjector, DiskFaultPlan};
use cqm_resilience::CircuitBreaker;

use crate::batch::{Engine, EngineScratch};
use crate::model::{ServeCheckpoint, ServedModel};
use crate::protocol::{WireError, WireErrorKind};
use crate::{Result, ServeError};

/// The tenant a request without an explicit key routes to.
pub const DEFAULT_TENANT: &str = "default";

/// Fleet behavior knobs, carried by `ServerConfig`.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Most models held live at once; beyond this, the least-recently-used
    /// idle slot is evicted back to its checkpoint (only when a store is
    /// configured — eviction without a way back would lose models).
    pub max_active: usize,
    /// Per-tenant in-flight request budget (the bulkhead): requests beyond
    /// it are shed with `Overloaded` before touching the shared queue.
    pub per_tenant_inflight: usize,
    /// Checkpoint-load failures before a tenant's breaker opens.
    pub breaker_trip_after: usize,
    /// Breaker cooldown in admission ticks before a reload probe.
    pub breaker_cooldown: usize,
    /// Tenant-keyed checkpoint directory; `None` disables warm-load,
    /// eviction and swap persistence (an in-memory-only fleet).
    pub store_dir: Option<PathBuf>,
    /// Seeded read-fault injection for checkpoint loads (drills only).
    pub disk_faults: Option<DiskFaultPlan>,
    /// Pinned cue set replayed through every swap candidate: the candidate
    /// engine's answers must be bit-identical to a fresh in-process
    /// `CqmSystem` on the same model, or the swap rolls back.
    pub probe_cues: Vec<Vec<f64>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            max_active: 64,
            per_tenant_inflight: 32,
            breaker_trip_after: 1,
            breaker_cooldown: 8,
            store_dir: None,
            disk_faults: None,
            probe_cues: Vec::new(),
        }
    }
}

/// Registry counters, surfaced through `ServerHealth`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Tenants known to the registry (all slot states).
    pub tenants: u64,
    /// Tenants currently quarantined.
    pub tenants_quarantined: u64,
    /// Models loaded from the checkpoint store (cold → active).
    pub warm_loads: u64,
    /// Active models evicted back to their checkpoints.
    pub evictions: u64,
    /// Hot swaps that flipped a routing slot.
    pub swaps: u64,
    /// Swaps that failed validation and rolled back to last-good.
    pub swap_rollbacks: u64,
    /// Requests shed by a per-tenant admission budget.
    pub tenant_overloads: u64,
    /// Requests answered `TenantQuarantined`.
    pub quarantined_answers: u64,
}

/// One tenant's routing slot.
#[derive(Debug)]
enum SlotState {
    /// Model live in memory; requests route to `engine`.
    Active {
        engine: Arc<Engine>,
        model: ServedModel,
    },
    /// Known tenant, model on disk only; first admission warm-loads it.
    Cold,
    /// A warm-load is in progress on another thread (outside the lock);
    /// concurrent same-tenant requests are shed with retryable
    /// `Overloaded`.
    Loading,
    /// Checkpoint failed to load; the breaker gates reload probes.
    Quarantined { reason: String },
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    /// Checkpoint generation this slot last loaded or persisted.
    seq: u64,
    breaker: CircuitBreaker,
    inflight: usize,
    /// LRU clock value of the last admission.
    touched: u64,
}

#[derive(Debug, Default)]
struct Counters {
    warm_loads: u64,
    evictions: u64,
    swaps: u64,
    swap_rollbacks: u64,
    tenant_overloads: u64,
    quarantined_answers: u64,
}

#[derive(Debug)]
struct Inner {
    slots: BTreeMap<String, Slot>,
    /// Monotone LRU clock; bumped per admission.
    clock: u64,
    stats: Counters,
}

/// What `admit` decided while the lock was held; loads happen after.
enum Admitted {
    /// Route to this engine.
    Ready(Arc<Engine>, u64),
    /// Slot moved to `Loading`; caller must run the load and install the
    /// outcome.
    MustLoad,
}

/// The tenant router; see the module docs.
#[derive(Debug)]
pub(crate) struct ModelRegistry {
    inner: Mutex<Inner>,
    /// The injector has its own lock so a fault-delayed read never holds
    /// the routing lock (the whole point of loading outside it).
    injector: Mutex<Option<DiskFaultInjector>>,
    store: Option<CheckpointStore>,
    max_active: usize,
    per_tenant_inflight: usize,
    breaker_trip_after: usize,
    breaker_cooldown: usize,
    probe_cues: Vec<Vec<f64>>,
    version_rejections: AtomicU64,
}

impl ModelRegistry {
    /// Build the registry: open the store (creating the directory), seed a
    /// Cold slot for every checkpoint already on disk, arm the injector.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidConfig`] on zero budgets or an invalid
    ///   disk-fault plan;
    /// * [`ServeError::Persist`] if the store directory cannot be opened
    ///   or listed.
    pub(crate) fn new(config: FleetConfig) -> Result<Self> {
        if config.max_active == 0 || config.per_tenant_inflight == 0 {
            return Err(ServeError::InvalidConfig(
                "fleet budgets must be at least 1".into(),
            ));
        }
        let store = match &config.store_dir {
            Some(dir) => Some(CheckpointStore::new(dir)?),
            None => None,
        };
        let injector = match config.disk_faults {
            Some(plan) => Some(
                DiskFaultInjector::new(plan)
                    .map_err(|e| ServeError::InvalidConfig(e.to_string()))?,
            ),
            None => None,
        };
        let mut slots = BTreeMap::new();
        if let Some(store) = &store {
            for key in store.list_keys()? {
                slots.insert(
                    key,
                    Slot {
                        state: SlotState::Cold,
                        seq: 0,
                        breaker: new_breaker(config.breaker_trip_after, config.breaker_cooldown)?,
                        inflight: 0,
                        touched: 0,
                    },
                );
            }
        }
        Ok(ModelRegistry {
            inner: Mutex::new(Inner {
                slots,
                clock: 0,
                stats: Counters::default(),
            }),
            injector: Mutex::new(injector),
            store,
            max_active: config.max_active,
            per_tenant_inflight: config.per_tenant_inflight,
            breaker_trip_after: config.breaker_trip_after,
            breaker_cooldown: config.breaker_cooldown,
            probe_cues: config.probe_cues,
            version_rejections: AtomicU64::new(0),
        })
    }

    /// Install (or replace) a tenant's model directly, persisting it to the
    /// store when one is configured so the slot is eviction-safe. This is
    /// the *cold* path — server start and explicit installs; live
    /// replacements go through [`ModelRegistry::swap`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidConfig`] on a bad tenant key;
    /// * [`ServeError::Persist`] if persisting to the store fails (the
    ///   slot is not installed in that case).
    pub(crate) fn install(&self, tenant: &str, model: ServedModel, seq: u64) -> Result<()> {
        let engine = Arc::new(Engine::new(&model)?);
        if let Some(store) = &self.store {
            let handle = store.handle(tenant)?;
            handle.save(&ServeCheckpoint {
                seq,
                model: model.clone(),
            })?;
        } else {
            cqm_persist::validate_key(tenant)?;
        }
        let mut guard = self.lock_inner();
        let inner = &mut *guard;
        let slot = ensure_slot(
            &mut inner.slots,
            tenant,
            self.breaker_trip_after,
            self.breaker_cooldown,
        )?;
        slot.state = SlotState::Active { engine, model };
        slot.seq = seq;
        self.evict_over_capacity(inner);
        Ok(())
    }

    /// The live model and checkpoint generation for `tenant`, if its slot
    /// is Active (used for the shutdown checkpoint).
    pub(crate) fn current(&self, tenant: &str) -> Option<(ServedModel, u64)> {
        let inner = self.lock_inner();
        match inner.slots.get(tenant) {
            Some(Slot {
                state: SlotState::Active { model, .. },
                seq,
                ..
            }) => Some((model.clone(), *seq)),
            _ => None,
        }
    }

    /// Counters for `ServerHealth`.
    pub(crate) fn stats(&self) -> FleetStats {
        let inner = self.lock_inner();
        FleetStats {
            tenants: inner.slots.len() as u64,
            tenants_quarantined: inner
                .slots
                .values()
                .filter(|s| matches!(s.state, SlotState::Quarantined { .. }))
                .count() as u64,
            warm_loads: inner.stats.warm_loads,
            evictions: inner.stats.evictions,
            swaps: inner.stats.swaps,
            swap_rollbacks: inner.stats.swap_rollbacks,
            tenant_overloads: inner.stats.tenant_overloads,
            quarantined_answers: inner.stats.quarantined_answers,
        }
    }

    /// Connections refused for speaking an unsupported protocol version
    /// (owned here so the whole fleet-health story lives in one place).
    pub(crate) fn note_version_rejection(&self) {
        self.version_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// See [`ModelRegistry::note_version_rejection`].
    pub(crate) fn version_rejections(&self) -> u64 {
        self.version_rejections.load(Ordering::Relaxed)
    }

    /// Admit one request for `tenant`: route it to an engine, warm-loading
    /// the model if the slot is cold. The returned [`Lease`] holds the
    /// engine `Arc` (so eviction and swaps can never unmap an engine with
    /// work in flight) and releases the tenant's in-flight budget on drop.
    ///
    /// # Errors
    ///
    /// All typed for the wire, none fatal to the server:
    /// * `BadRequest` — invalid or unknown tenant key;
    /// * `Overloaded` — per-tenant budget exhausted, or a warm-load is in
    ///   progress (both retryable);
    /// * `TenantQuarantined` — checkpoint failed to load and the breaker
    ///   has not cleared a reload probe;
    /// * `Internal` — engine construction failed on a decoded model.
    pub(crate) fn admit(&self, tenant: &str) -> std::result::Result<Lease<'_>, WireError> {
        if cqm_persist::validate_key(tenant).is_err() {
            return Err(WireError::bad_request(format!(
                "invalid tenant key {tenant:?}"
            )));
        }
        match self.admit_locked(tenant)? {
            Admitted::Ready(engine, seq) => Ok(Lease {
                registry: self,
                key: tenant.to_string(),
                engine,
                seq,
            }),
            Admitted::MustLoad => {
                // The slot is parked in Loading; run the disk read outside
                // the routing lock, then install the outcome.
                let loaded = self.load_from_store(tenant);
                self.finish_load(tenant, loaded)
            }
        }
    }

    /// Zero-drop hot swap; see the module docs for the full protocol.
    /// Returns the new checkpoint generation. The target may be Active
    /// (routing flips atomically), Cold (the checkpoint advances and the
    /// next warm-load serves the new generation), or Quarantined (the
    /// verified candidate *is* the repair: the breaker closes and the
    /// tenant rejoins through a normal warm-load).
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidConfig`] if the tenant is unknown,
    ///   mid-warm-load (transient; retry), or the candidate fails
    ///   construction or the replay probe (routing is untouched);
    /// * [`ServeError::Persist`] if persisting or re-verifying the new
    ///   checkpoint fails — for an Active or Cold target the last-good
    ///   model is re-persisted and routing is untouched; a quarantined
    ///   target stays quarantined, since there is no trustworthy
    ///   last-good to restore (`swap_rollbacks` counts both).
    pub(crate) fn swap(&self, tenant: &str, model: ServedModel) -> Result<u64> {
        // 1. Build and validate the candidate beside the live model.
        let engine = Arc::new(Engine::new(&model)?);
        self.replay_probe(&engine, &model)?;
        // 2. Read the generation being replaced. An Active slot gives it
        //    directly; a Cold (evicted) slot is an equally valid target —
        //    its generation lives in its checkpoint, which also supplies
        //    the rollback payload (a failed store read aborts here, with
        //    nothing persisted yet). A Quarantined slot has no readable
        //    last-good at all, but the candidate must survive the full
        //    validation battery — strictly stronger evidence than the
        //    warm-load that failed — so the swap doubles as the repair.
        //    Loading is a transient conflict the caller may retry.
        enum Target {
            Live(ServedModel, u64),
            Cold(u64),
            Repair(u64),
        }
        let target = {
            let inner = self.lock_inner();
            match inner.slots.get(tenant) {
                Some(Slot {
                    state: SlotState::Active { model, .. },
                    seq,
                    ..
                }) => Target::Live(model.clone(), *seq),
                Some(Slot {
                    state: SlotState::Cold,
                    seq,
                    ..
                }) => Target::Cold(*seq),
                Some(Slot {
                    state: SlotState::Quarantined { .. },
                    seq,
                    ..
                }) => Target::Repair(*seq),
                Some(Slot {
                    state: SlotState::Loading,
                    ..
                }) => {
                    return Err(ServeError::InvalidConfig(format!(
                        "swap target {tenant:?} is warm-loading; retry"
                    )));
                }
                None => {
                    return Err(ServeError::InvalidConfig(format!(
                        "swap target {tenant:?} has no live model"
                    )));
                }
            }
        };
        let (last_good, old_seq) = match target {
            Target::Live(model, seq) => (Some(model), seq),
            Target::Cold(slot_seq) => {
                let ck = self.load_from_store(tenant)?;
                (Some(ck.model), ck.seq.max(slot_seq))
            }
            Target::Repair(seq) => (None, seq),
        };
        let new_seq = old_seq + 1;
        // 3. Persist the candidate, then prove the store round-trips it.
        if let Some(store) = &self.store {
            let handle = store.handle(tenant)?;
            handle.save(&ServeCheckpoint {
                seq: new_seq,
                model: model.clone(),
            })?;
            if let Err(e) = self.reload_verify(tenant, new_seq, &model) {
                // Roll back to last-good on disk; routing never moved. A
                // quarantined target has nothing trustworthy to restore:
                // the unverified candidate stays on disk (no worse than
                // the corrupt bytes it replaced) and the slot stays
                // quarantined.
                let rollback = match &last_good {
                    Some(old_model) => handle.save(&ServeCheckpoint {
                        seq: old_seq,
                        model: old_model.clone(),
                    }),
                    None => Ok(()),
                };
                let mut inner = self.lock_inner();
                inner.stats.swap_rollbacks += 1;
                drop(inner);
                return match rollback {
                    Ok(()) => Err(e),
                    // The rollback write itself failed: surface that, it
                    // is the more urgent fault.
                    Err(re) => Err(ServeError::Persist(re)),
                };
            }
        }
        // 4. Atomic flip: future admissions route to the new engine;
        //    in-flight jobs keep their old Arc and finish on it. A slot
        //    that is not Active (evicted during validation, or the repair
        //    of a quarantine) is not forced live past the LRU budget: the
        //    verified checkpoint already carries the new generation, so
        //    the next warm-load serves it.
        let mut guard = self.lock_inner();
        let inner = &mut *guard;
        let slot = ensure_slot(
            &mut inner.slots,
            tenant,
            self.breaker_trip_after,
            self.breaker_cooldown,
        )?;
        match &slot.state {
            SlotState::Active { .. } => {
                slot.state = SlotState::Active { engine, model };
                slot.seq = new_seq;
            }
            SlotState::Quarantined { .. } => {
                // The verified checkpoint replaces the corrupt one: close
                // the breaker and rejoin through the warm-load path.
                slot.breaker.on_success();
                slot.state = SlotState::Cold;
                slot.seq = new_seq;
            }
            SlotState::Cold => {
                slot.seq = new_seq;
            }
            // A concurrent warm-load is mid-read; it installs whichever
            // generation its read returns, and the checkpoint already
            // carries the new one for every load after it.
            SlotState::Loading => {}
        }
        inner.stats.swaps += 1;
        Ok(new_seq)
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The under-lock half of admission. Returns `MustLoad` with the slot
    /// parked in `Loading` when a warm-load is needed.
    fn admit_locked(&self, tenant: &str) -> std::result::Result<Admitted, WireError> {
        let mut guard = self.lock_inner();
        let inner = &mut *guard;
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.slots.contains_key(tenant) {
            // Unknown to the map — but the store is the source of truth,
            // so probe the disk before refusing (a tenant whose checkpoint
            // appeared after startup is admissible).
            let on_disk = match &self.store {
                Some(store) => store.exists(tenant).unwrap_or(false),
                None => false,
            };
            if !on_disk {
                return Err(WireError::bad_request(format!(
                    "unknown tenant {tenant:?}"
                )));
            }
            let breaker = new_breaker(self.breaker_trip_after, self.breaker_cooldown)
                .map_err(|e| WireError::internal(e.to_string()))?;
            inner.slots.insert(
                tenant.to_string(),
                Slot {
                    state: SlotState::Cold,
                    seq: 0,
                    breaker,
                    inflight: 0,
                    touched: clock,
                },
            );
        }
        let per_tenant_inflight = self.per_tenant_inflight;
        let stats = &mut inner.stats;
        let Some(slot) = inner.slots.get_mut(tenant) else {
            return Err(WireError::internal("slot vanished under the lock"));
        };
        slot.touched = clock;
        match &slot.state {
            SlotState::Active { engine, .. } => {
                if slot.inflight >= per_tenant_inflight {
                    stats.tenant_overloads += 1;
                    return Err(WireError {
                        kind: WireErrorKind::Overloaded,
                        detail: format!("tenant {tenant:?} admission budget exhausted"),
                    });
                }
                let engine = Arc::clone(engine);
                let seq = slot.seq;
                slot.inflight += 1;
                Ok(Admitted::Ready(engine, seq))
            }
            SlotState::Loading => {
                stats.tenant_overloads += 1;
                Err(WireError {
                    kind: WireErrorKind::Overloaded,
                    detail: format!("tenant {tenant:?} model is warm-loading"),
                })
            }
            SlotState::Quarantined { reason } => {
                // The breaker gates reload probes: each shed answer ticks
                // the cooldown; once it grants, retry the load (HalfOpen).
                let reason = reason.clone();
                if slot.breaker.allow() {
                    slot.state = SlotState::Loading;
                    Ok(Admitted::MustLoad)
                } else {
                    stats.quarantined_answers += 1;
                    Err(WireError::tenant_quarantined(tenant, reason))
                }
            }
            SlotState::Cold => {
                if self.store.is_none() {
                    return Err(WireError::bad_request(format!(
                        "unknown tenant {tenant:?}"
                    )));
                }
                slot.state = SlotState::Loading;
                Ok(Admitted::MustLoad)
            }
        }
    }

    /// Read and decode `tenant`'s checkpoint, through the injector when
    /// one is armed. Runs with no registry lock held.
    fn load_from_store(&self, tenant: &str) -> Result<ServeCheckpoint> {
        let Some(store) = &self.store else {
            return Err(ServeError::InvalidConfig("no checkpoint store".into()));
        };
        let path = store.path(tenant)?;
        let mut injector = self
            .injector
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let ck: ServeCheckpoint = match injector.as_mut() {
            Some(inj) => {
                let bytes = inj
                    .read(&path)
                    .map_err(|e| PersistError::io("reading tenant checkpoint", &e))?;
                decode_checkpoint_bytes(&bytes)?
            }
            None => store.handle(tenant)?.load()?,
        };
        drop(injector);
        // Re-validate semantics, not just integrity (same discipline as
        // ModelSource::resolve).
        let model = ServedModel::new(ck.model.classifier().clone(), ck.model.model().clone())?;
        Ok(ServeCheckpoint {
            seq: ck.seq,
            model,
        })
    }

    /// Install a finished load (or quarantine the tenant on failure) and
    /// answer the admission that triggered it.
    fn finish_load(
        &self,
        tenant: &str,
        loaded: Result<ServeCheckpoint>,
    ) -> std::result::Result<Lease<'_>, WireError> {
        let mut guard = self.lock_inner();
        let inner = &mut *guard;
        let per_tenant_inflight = self.per_tenant_inflight;
        let stats = &mut inner.stats;
        let Some(slot) = inner.slots.get_mut(tenant) else {
            return Err(WireError::internal("loading slot vanished"));
        };
        match loaded.and_then(|ck| Ok((Arc::new(Engine::new(&ck.model)?), ck))) {
            Ok((engine, ck)) => {
                slot.breaker.on_success();
                slot.state = SlotState::Active {
                    engine: Arc::clone(&engine),
                    model: ck.model,
                };
                slot.seq = ck.seq;
                let seq = ck.seq;
                // The load itself counts as this request's admission.
                if slot.inflight >= per_tenant_inflight {
                    stats.tenant_overloads += 1;
                    return Err(WireError {
                        kind: WireErrorKind::Overloaded,
                        detail: format!("tenant {tenant:?} admission budget exhausted"),
                    });
                }
                slot.inflight += 1;
                stats.warm_loads += 1;
                self.evict_over_capacity(inner);
                Ok(Lease {
                    registry: self,
                    key: tenant.to_string(),
                    engine,
                    seq,
                })
            }
            Err(e) => {
                let reason = e.to_string();
                slot.breaker.on_failure();
                slot.state = SlotState::Quarantined {
                    reason: reason.clone(),
                };
                stats.quarantined_answers += 1;
                Err(WireError::tenant_quarantined(tenant, reason))
            }
        }
    }

    /// Drop least-recently-used idle Active slots back to Cold until the
    /// live count fits `max_active`. Only store-backed slots are evicted
    /// (there is no way back otherwise), and never one with work in
    /// flight — zero-drop beats strict capacity, so the count may briefly
    /// overshoot under load.
    fn evict_over_capacity(&self, inner: &mut Inner) {
        if self.store.is_none() {
            return;
        }
        loop {
            let active = inner
                .slots
                .values()
                .filter(|s| matches!(s.state, SlotState::Active { .. }))
                .count();
            if active <= self.max_active {
                return;
            }
            let victim = inner
                .slots
                .iter()
                .filter(|(_, s)| matches!(s.state, SlotState::Active { .. }) && s.inflight == 0)
                .min_by_key(|(_, s)| s.touched)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { return };
            if let Some(slot) = inner.slots.get_mut(&key) {
                slot.state = SlotState::Cold;
            }
            inner.stats.evictions += 1;
        }
    }

    /// Replay the pinned cue set through the candidate engine and a fresh
    /// in-process `CqmSystem` of the same model; any bitwise difference
    /// fails the swap. Probes that error on *both* sides identically (e.g.
    /// a probe cue outside the candidate's rule support) pass — the probe
    /// asserts agreement, not coverage.
    fn replay_probe(&self, engine: &Engine, model: &ServedModel) -> Result<()> {
        if self.probe_cues.is_empty() {
            return Ok(());
        }
        let system = CqmSystem::new(
            model.classifier().clone(),
            model.model().measure.clone(),
            QualityFilter::new(model.model().threshold).map_err(ServeError::Core)?,
        )
        .map_err(ServeError::Core)?;
        let mut scratch = EngineScratch::new();
        for (i, cues) in self.probe_cues.iter().enumerate() {
            let served = engine.classify_one(cues, &mut scratch);
            let local = system.classify_with_quality(cues);
            let agree = match (&served, &local) {
                (Ok(a), Ok(b)) => {
                    a.class == b.class
                        && a.quality.value().map(f64::to_bits)
                            == b.quality.value().map(f64::to_bits)
                        && a.decision.is_accept() == b.decision.is_accept()
                }
                (Err(_), Err(_)) => true,
                _ => false,
            };
            if !agree {
                return Err(ServeError::InvalidConfig(format!(
                    "swap candidate failed replay probe at cue {i}: engine and \
                     in-process answers diverge"
                )));
            }
        }
        Ok(())
    }

    /// Prove the just-persisted checkpoint round-trips: read it back
    /// (through the injector when armed), decode, and demand the expected
    /// generation and bit-identical model.
    fn reload_verify(&self, tenant: &str, seq: u64, model: &ServedModel) -> Result<()> {
        let back = self.load_from_store(tenant)?;
        if back.seq != seq || back.model != *model {
            return Err(ServeError::Persist(PersistError::Corrupt(format!(
                "reloaded checkpoint for {tenant:?} does not match what was written \
                 (got seq {}, want {seq})",
                back.seq
            ))));
        }
        Ok(())
    }

    fn release(&self, tenant: &str) {
        let mut inner = self.lock_inner();
        if let Some(slot) = inner.slots.get_mut(tenant) {
            slot.inflight = slot.inflight.saturating_sub(1);
        }
    }
}

fn new_breaker(trip_after: usize, cooldown: usize) -> Result<CircuitBreaker> {
    CircuitBreaker::new(trip_after, cooldown).map_err(|e| ServeError::InvalidConfig(e.to_string()))
}

fn ensure_slot<'a>(
    slots: &'a mut BTreeMap<String, Slot>,
    tenant: &str,
    trip_after: usize,
    cooldown: usize,
) -> Result<&'a mut Slot> {
    if !slots.contains_key(tenant) {
        cqm_persist::validate_key(tenant)?;
        slots.insert(
            tenant.to_string(),
            Slot {
                state: SlotState::Cold,
                seq: 0,
                breaker: new_breaker(trip_after, cooldown)?,
                inflight: 0,
                touched: 0,
            },
        );
    }
    slots
        .get_mut(tenant)
        .ok_or_else(|| ServeError::InvalidConfig("slot vanished".into()))
}

/// One admitted request's claim on an engine. Dropping it releases the
/// tenant's in-flight budget; the engine `Arc` keeps the model alive even
/// if the slot is evicted or swapped while the request is in flight.
#[derive(Debug)]
pub(crate) struct Lease<'a> {
    registry: &'a ModelRegistry,
    key: String,
    pub(crate) engine: Arc<Engine>,
    #[allow(dead_code)]
    pub(crate) seq: u64,
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.registry.release(&self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::tiny_model;
    use crate::protocol::WireErrorKind;
    use cqm_persist::CheckpointHandle;
    use std::time::Duration;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cqm_registry_{tag}_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn model_with_threshold(t: f64) -> ServedModel {
        let m = tiny_model();
        let mut cqm = m.model().clone();
        cqm.threshold = t;
        ServedModel::new(m.classifier().clone(), cqm).expect("model")
    }

    fn stored_registry(dir: &PathBuf, config: FleetConfig) -> ModelRegistry {
        ModelRegistry::new(FleetConfig {
            store_dir: Some(dir.clone()),
            ..config
        })
        .expect("registry")
    }

    #[test]
    fn unknown_tenant_is_bad_request() {
        let registry = ModelRegistry::new(FleetConfig::default()).expect("registry");
        let err = registry.admit("nobody").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadRequest);
        let err = registry.admit("bad key!").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadRequest);
    }

    #[test]
    fn install_then_admit_routes_and_budget_sheds() {
        let registry = ModelRegistry::new(FleetConfig {
            per_tenant_inflight: 2,
            ..FleetConfig::default()
        })
        .expect("registry");
        registry.install("a", tiny_model(), 0).expect("install");
        let l1 = registry.admit("a").expect("first");
        let l2 = registry.admit("a").expect("second");
        let err = registry.admit("a").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Overloaded);
        assert_eq!(registry.stats().tenant_overloads, 1);
        drop(l1);
        let l3 = registry.admit("a").expect("slot freed by drop");
        drop(l2);
        drop(l3);
        assert_eq!(registry.stats().tenants, 1);
    }

    #[test]
    fn warm_load_from_store_and_lru_eviction() {
        let dir = scratch_dir("lru");
        // Pre-populate the store with three tenants, then cap at 2 live.
        let seed = stored_registry(&dir, FleetConfig::default());
        for (i, key) in ["a", "b", "c"].iter().enumerate() {
            seed.install(key, model_with_threshold(0.3 + i as f64 * 0.1), 1)
                .expect("install");
        }
        drop(seed);
        let registry = stored_registry(
            &dir,
            FleetConfig {
                max_active: 2,
                ..FleetConfig::default()
            },
        );
        assert_eq!(registry.stats().tenants, 3);
        drop(registry.admit("a").expect("load a"));
        drop(registry.admit("b").expect("load b"));
        assert_eq!(registry.stats().warm_loads, 2);
        assert_eq!(registry.stats().evictions, 0);
        // Loading c evicts the LRU (a), and a comes back on demand.
        drop(registry.admit("c").expect("load c"));
        assert_eq!(registry.stats().evictions, 1);
        drop(registry.admit("a").expect("reload a"));
        assert_eq!(registry.stats().warm_loads, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_never_claims_a_slot_with_work_in_flight() {
        let dir = scratch_dir("inflight");
        let seed = stored_registry(&dir, FleetConfig::default());
        for key in ["a", "b", "c"] {
            seed.install(key, tiny_model(), 1).expect("install");
        }
        drop(seed);
        let registry = stored_registry(
            &dir,
            FleetConfig {
                max_active: 1,
                ..FleetConfig::default()
            },
        );
        let lease_a = registry.admit("a").expect("a");
        // b overflows capacity, but a is busy: the count overshoots
        // rather than dropping a's engine out from under it.
        let lease_b = registry.admit("b").expect("b");
        assert_eq!(registry.stats().evictions, 0);
        drop(lease_a);
        drop(registry.admit("c").expect("c"));
        // Now a was idle and LRU: evicted.
        assert!(registry.stats().evictions >= 1);
        drop(lease_b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_quarantines_only_that_tenant_then_recovers() {
        let dir = scratch_dir("quarantine");
        let seed = stored_registry(&dir, FleetConfig::default());
        seed.install("good", tiny_model(), 1).expect("install");
        seed.install("bad", tiny_model(), 1).expect("install");
        drop(seed);
        // Corrupt bad's checkpoint on disk.
        let bad_path = dir.join("bad.ckpt");
        let mut bytes = std::fs::read(&bad_path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&bad_path, &bytes).expect("write");
        let registry = stored_registry(
            &dir,
            FleetConfig {
                breaker_trip_after: 1,
                breaker_cooldown: 3,
                ..FleetConfig::default()
            },
        );
        let err = registry.admit("bad").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::TenantQuarantined);
        // The peer is untouched.
        drop(registry.admit("good").expect("good keeps serving"));
        assert_eq!(registry.stats().tenants_quarantined, 1);
        // Repair the file; the breaker's cooldown gates the reload probe,
        // then the tenant recovers.
        let seed = stored_registry(&dir, FleetConfig::default());
        seed.install("bad", tiny_model(), 2).expect("repair");
        drop(seed);
        let mut recovered = false;
        for _ in 0..16 {
            match registry.admit("bad") {
                Ok(lease) => {
                    assert_eq!(lease.seq, 2);
                    recovered = true;
                    break;
                }
                Err(e) => assert!(matches!(
                    e.kind,
                    WireErrorKind::TenantQuarantined | WireErrorKind::Overloaded
                )),
            }
        }
        assert!(recovered, "repaired tenant must leave quarantine");
        assert_eq!(registry.stats().tenants_quarantined, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swap_flips_routing_and_inflight_leases_keep_the_old_engine() {
        let dir = scratch_dir("swap");
        let registry = stored_registry(
            &dir,
            FleetConfig {
                probe_cues: vec![vec![0.1], vec![0.5], vec![0.9]],
                ..FleetConfig::default()
            },
        );
        registry.install("t", model_with_threshold(0.5), 0).expect("install");
        let before = registry.admit("t").expect("before swap");
        let new_seq = registry
            .swap("t", model_with_threshold(0.25))
            .expect("swap");
        assert_eq!(new_seq, 1);
        let after = registry.admit("t").expect("after swap");
        // The in-flight lease still holds the pre-swap engine.
        assert!(!Arc::ptr_eq(&before.engine, &after.engine));
        // A cue with quality between the thresholds decides differently
        // on the two engines — proving which model answers which lease.
        let mut scratch = EngineScratch::new();
        // The decision boundary: quality is exactly 0.5 there, which the
        // old threshold (0.5, strict) rejects and the new (0.25) accepts.
        let x = [0.5];
        let old = before.engine.classify_one(&x, &mut scratch).expect("old");
        let new = after.engine.classify_one(&x, &mut scratch).expect("new");
        assert_eq!(
            old.quality.value().map(f64::to_bits),
            new.quality.value().map(f64::to_bits),
            "same model weights, same quality"
        );
        assert!(new.decision.is_accept() && !old.decision.is_accept());
        assert_eq!(registry.stats().swaps, 1);
        // The new generation is on disk: a cold restart serves it.
        drop(before);
        drop(after);
        let reborn = stored_registry(&dir, FleetConfig::default());
        let lease = reborn.admit("t").expect("warm restart");
        assert_eq!(lease.seq, 1);
        drop(lease);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swap_candidate_failing_validation_leaves_routing_untouched() {
        let dir = scratch_dir("swapfail");
        let registry = stored_registry(&dir, FleetConfig::default());
        registry.install("t", tiny_model(), 0).expect("install");
        // A candidate whose model halves disagree cannot even construct —
        // ServedModel::new guards it — so sabotage differently: swap on a
        // tenant with no live slot.
        let err = registry.swap("ghost", tiny_model()).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
        let lease = registry.admit("t").expect("t unaffected");
        assert_eq!(lease.seq, 0);
        drop(lease);
        assert_eq!(registry.stats().swaps, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swap_on_a_cold_slot_advances_the_checkpoint_generation() {
        let dir = scratch_dir("swapcold");
        let registry = stored_registry(
            &dir,
            FleetConfig {
                max_active: 1,
                probe_cues: vec![vec![0.1], vec![0.5], vec![0.9]],
                ..FleetConfig::default()
            },
        );
        registry.install("a", model_with_threshold(0.5), 0).expect("install a");
        // b claims the only live slot; a is evicted to Cold.
        registry.install("b", model_with_threshold(0.5), 0).expect("install b");
        // Swapping the evicted tenant validates and persists the new
        // generation without forcing it live past the LRU budget.
        let new_seq = registry
            .swap("a", model_with_threshold(0.25))
            .expect("cold swap");
        assert_eq!(new_seq, 1);
        assert_eq!(registry.stats().swaps, 1);
        // The next warm-load serves the swapped generation.
        let lease = registry.admit("a").expect("warm-load a");
        assert_eq!(lease.seq, 1);
        let mut scratch = EngineScratch::new();
        let ans = lease
            .engine
            .classify_one(&[0.5], &mut scratch)
            .expect("answer");
        assert!(
            ans.decision.is_accept(),
            "the swapped-in threshold 0.25 accepts q = 0.5"
        );
        drop(lease);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swap_repairs_a_quarantined_tenant() {
        let dir = scratch_dir("swaprepair");
        let seed = stored_registry(&dir, FleetConfig::default());
        seed.install("t", model_with_threshold(0.5), 1).expect("install");
        drop(seed);
        // Corrupt the checkpoint, then quarantine the tenant on first load.
        let path = dir.join("t.ckpt");
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        let registry = stored_registry(
            &dir,
            FleetConfig {
                breaker_trip_after: 1,
                // A cooldown far longer than the test: no reload probe
                // will fire, so only the swap can clear the quarantine.
                breaker_cooldown: 1 << 20,
                probe_cues: vec![vec![0.1], vec![0.5], vec![0.9]],
                ..FleetConfig::default()
            },
        );
        let err = registry.admit("t").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::TenantQuarantined);
        assert_eq!(registry.stats().tenants_quarantined, 1);
        // The fully verified candidate is the repair: the checkpoint
        // round-trips, the breaker closes, the tenant rejoins.
        let new_seq = registry
            .swap("t", model_with_threshold(0.25))
            .expect("repair swap");
        assert_eq!(registry.stats().tenants_quarantined, 0);
        let lease = registry.admit("t").expect("repaired tenant serves");
        assert_eq!(lease.seq, new_seq);
        let mut scratch = EngineScratch::new();
        let ans = lease
            .engine
            .classify_one(&[0.5], &mut scratch)
            .expect("answer");
        assert!(
            ans.decision.is_accept(),
            "the repaired generation (threshold 0.25) accepts q = 0.5"
        );
        drop(lease);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_faults_quarantine_then_breaker_probe_recovers() {
        let dir = scratch_dir("faults");
        let seed = stored_registry(&dir, FleetConfig::default());
        seed.install("t", tiny_model(), 1).expect("install");
        drop(seed);
        // Every read torn for the first post-warmup op; later ops clean
        // (torn_p 1.0 but only op 0 past warmup... use a plan where op 0
        // is always torn and warmup 0, then rely on per-op draws: with
        // torn_p = 1.0 every read is torn, so recovery needs the injector
        // replaced — instead use a high-but-not-certain rate and iterate).
        let registry = stored_registry(
            &dir,
            FleetConfig {
                disk_faults: Some(DiskFaultPlan {
                    torn_p: 0.7,
                    ..DiskFaultPlan::clean(1234)
                }),
                breaker_trip_after: 1,
                breaker_cooldown: 1,
                ..FleetConfig::default()
            },
        );
        let mut outcomes = Vec::new();
        for _ in 0..32 {
            match registry.admit("t") {
                Ok(lease) => {
                    outcomes.push("ok");
                    drop(lease);
                }
                Err(e) => outcomes.push(match e.kind {
                    WireErrorKind::TenantQuarantined => "quarantined",
                    WireErrorKind::Overloaded => "overloaded",
                    _ => "other",
                }),
            }
        }
        assert!(
            outcomes.contains(&"quarantined"),
            "70% torn reads must quarantine at least once: {outcomes:?}"
        );
        assert!(
            outcomes.contains(&"ok"),
            "a clean read after cooldown must recover the tenant: {outcomes:?}"
        );
        assert!(!outcomes.contains(&"other"), "{outcomes:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_checkpoint_read_does_not_block_peer_tenants() {
        let dir = scratch_dir("slow");
        let seed = stored_registry(&dir, FleetConfig::default());
        seed.install("slow", tiny_model(), 1).expect("install");
        seed.install("fast", tiny_model(), 1).expect("install");
        drop(seed);
        let registry = Arc::new(stored_registry(
            &dir,
            FleetConfig {
                disk_faults: Some(DiskFaultPlan {
                    delay_p: 1.0,
                    delay: Duration::from_millis(300),
                    ..DiskFaultPlan::clean(7)
                }),
                ..FleetConfig::default()
            },
        ));
        // Warm "fast" up first so its slot is Active (one slow read).
        drop(registry.admit("fast").expect("prime fast"));
        let r2 = Arc::clone(&registry);
        let slow_loader = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            let lease = r2.admit("slow");
            (t0.elapsed(), lease.map(|l| l.seq).map_err(|e| e.kind))
        });
        // Give the loader a moment to park the slot in Loading.
        std::thread::sleep(Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        let fast = registry.admit("fast");
        let fast_elapsed = t0.elapsed();
        assert!(fast.is_ok(), "active peer must admit during a slow load");
        drop(fast);
        assert!(
            fast_elapsed < Duration::from_millis(150),
            "peer admission waited {fast_elapsed:?} on another tenant's disk"
        );
        let (slow_elapsed, slow_result) = slow_loader.join().expect("join");
        assert!(slow_elapsed >= Duration::from_millis(250));
        assert_eq!(slow_result, Ok(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tmp_sibling_from_a_crashed_swap_recovers_last_good() {
        let dir = scratch_dir("tornswap");
        let seed = stored_registry(&dir, FleetConfig::default());
        seed.install("t", tiny_model(), 1).expect("install");
        drop(seed);
        // A crash mid-swap leaves a torn temp sibling; the main file is
        // still the last-good generation.
        std::fs::write(dir.join("t.ckpt.tmp"), b"half a checkpoint").expect("torn tmp");
        let registry = stored_registry(&dir, FleetConfig::default());
        let lease = registry.admit("t").expect("last-good recovers");
        assert_eq!(lease.seq, 1);
        drop(lease);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_handle_sees_what_registry_persisted() {
        // The registry's store format is the plain ServeCheckpoint
        // envelope — interoperable with CheckpointHandle.
        let dir = scratch_dir("interop");
        let registry = stored_registry(&dir, FleetConfig::default());
        registry.install("t", tiny_model(), 5).expect("install");
        let ck: ServeCheckpoint = CheckpointHandle::new(dir.join("t.ckpt"))
            .load()
            .expect("load");
        assert_eq!(ck.seq, 5);
        assert_eq!(ck.model, tiny_model());
        std::fs::remove_dir_all(&dir).ok();
    }
}
