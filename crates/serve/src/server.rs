//! The TCP server: acceptor, sessions, worker pool, graceful shutdown.
//!
//! Thread architecture:
//!
//! * one **acceptor** thread owns the listener and spawns a session thread
//!   per connection;
//! * one **runtime** thread hosts a [`WorkerPool`] whose scoped threads
//!   *are* the worker loops ([`run_worker`]) — they pop micro-batches from
//!   the bounded queue until it closes and drains;
//! * each **session** thread speaks the frame protocol with one client,
//!   enqueues classification jobs, and parks on a reply channel. Sessions
//!   poll with a short read timeout, so an idle connection notices
//!   shutdown within one tick.
//!
//! Shutdown ordering (see DESIGN.md §10): mark draining (sessions answer
//! `ShuttingDown` to new work) → close the queue (workers finish what was
//! admitted, then exit) → unblock and join the acceptor → join workers and
//! sessions → write the checkpoint. Every admitted request is answered
//! before the checkpoint is written; nothing is dropped silently.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use cqm_core::pipeline::QualifiedClassification;
use cqm_fuzzy::EvalPrecision;
use cqm_parallel::WorkerPool;
use cqm_persist::CheckpointHandle;
use cqm_resilience::degrade::{DegradationLadder, DegradationPolicy, HealthState};

use crate::batch::{run_worker, Job, Work};
use crate::dedup::{Claim, DedupConfig, DedupWindow};
use crate::model::{ModelSource, ServeCheckpoint, ServedModel};
use crate::protocol::{
    read_frame_within, write_frame, FrameRead, Request, RequestId, Response, ServerHealth,
    SnapshotInfo, WireError,
};
use crate::queue::{Admission, AdmissionPolicy, BoundedQueue};
use crate::registry::{FleetConfig, ModelRegistry, DEFAULT_TENANT};
use crate::{Result, ServeError};

/// How often an idle session wakes to check for shutdown.
const SESSION_POLL: Duration = Duration::from_millis(50);

/// Longest a session waits for a worker to answer an admitted job. Workers
/// answer every admitted job, so this only fires if a worker died — it
/// converts a hung client into a typed internal error.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads evaluating requests (clamped to at least 1).
    pub workers: usize,
    /// Bounded queue capacity (clamped to at least 1).
    pub queue_capacity: usize,
    /// What happens to requests arriving at a full queue.
    pub admission: AdmissionPolicy,
    /// Most jobs a worker folds into one kernel sweep (clamped to at
    /// least 1).
    pub micro_batch: usize,
    /// Classifier evaluation precision for served answers (DESIGN.md §9).
    /// The default, [`EvalPrecision::Exact`], is bit-identical to the
    /// in-process pipeline; [`EvalPrecision::BoundedUlp`] opts the
    /// classifier sweeps into the bounded fast-`exp` lanes. The quality
    /// measure and swap-validation probes always evaluate exactly.
    pub precision: EvalPrecision,
    /// Where to write the shutdown checkpoint; `None` disables it.
    pub checkpoint: Option<PathBuf>,
    /// Artificial per-micro-batch evaluation delay — a load-shaping knob
    /// for overload tests and the load generator. `None` in production.
    pub eval_delay: Option<Duration>,
    /// Overall budget for reading one frame once its first byte arrived —
    /// the slow-loris defense. `None` leaves only the stall-count backstop.
    pub frame_deadline: Option<Duration>,
    /// Socket write timeout for responses; a peer that stops draining its
    /// receive buffer is cut off rather than parking the session forever.
    pub write_timeout: Option<Duration>,
    /// Bounds of the exactly-once dedup window.
    pub dedup: DedupConfig,
    /// Degradation ladder driven by admission outcomes: sustained overload
    /// tightens the effective queue limit, Failsafe serves typed last-good
    /// answers. `None` disables the ladder (admission behaves as PR 5).
    pub ladder: Option<DegradationPolicy>,
    /// Multi-tenant fleet knobs: per-tenant bulkheads, the LRU model
    /// capacity, the checkpoint store, and swap validation (DESIGN.md §13).
    pub fleet: FleetConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 256,
            admission: AdmissionPolicy::Reject,
            micro_batch: 16,
            precision: EvalPrecision::default(),
            checkpoint: None,
            eval_delay: None,
            frame_deadline: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            dedup: DedupConfig::default(),
            ladder: None,
            fleet: FleetConfig::default(),
        }
    }
}

/// State shared by acceptor, sessions and workers.
struct Shared {
    /// The tenant router: every classify admission passes through it and
    /// comes back with an engine lease (or a typed bulkhead answer).
    registry: ModelRegistry,
    queue: BoundedQueue<Job>,
    admission: AdmissionPolicy,
    /// Set first during shutdown: sessions refuse new work, the acceptor
    /// stops accepting.
    draining: AtomicBool,
    /// Signalled when somebody (a client's `Shutdown` request, or the
    /// owner) asks the server to stop; `join` waits on it.
    stop_requested: Mutex<bool>,
    stop_cv: Condvar,
    requests: AtomicU64,
    rows_classified: AtomicU64,
    session_errors: AtomicU64,
    degraded_served: AtomicU64,
    snapshot: SnapshotInfo,
    workers: usize,
    /// The exactly-once window; every Classify/ClassifyBatch id passes
    /// through it.
    dedup: DedupWindow,
    /// Admission-driven degradation ladder; `None` when not configured.
    ladder: Option<Mutex<DegradationLadder>>,
    /// Last fresh single classification, served (typed as degraded) in
    /// Failsafe instead of a bare rejection.
    last_good: Mutex<Option<QualifiedClassification>>,
    frame_deadline: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Feed one admission outcome into the ladder (if any) and map the
    /// resulting state onto the queue's effective limit. Returns the state
    /// after the event. The ladder lock is released before touching the
    /// queue, so no lock is ever held across another lock or a notify.
    fn ladder_event(&self, success: bool) -> Option<HealthState> {
        let ladder = self.ladder.as_ref()?;
        let state = {
            let mut guard = ladder.lock().unwrap_or_else(PoisonError::into_inner);
            if success {
                guard.on_success()
            } else {
                guard.on_fault()
            }
        };
        let cap = self.queue.capacity();
        let limit = match state {
            HealthState::Healthy => cap,
            HealthState::Degraded | HealthState::Recovering => (cap / 2).max(1),
            HealthState::Failsafe => 1,
        };
        self.queue.set_limit(limit);
        Some(state)
    }

    fn ladder_name(&self) -> Option<String> {
        let ladder = self.ladder.as_ref()?;
        let guard = ladder.lock().unwrap_or_else(PoisonError::into_inner);
        Some(guard.state().name().to_string())
    }

    /// The Failsafe answer: the last fresh classification, if any, typed
    /// as degraded on the wire.
    fn degraded_answer(&self) -> Option<Response> {
        let cached = self
            .last_good
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let result = cached?;
        self.degraded_served.fetch_add(1, Ordering::Relaxed);
        Some(Response::ClassifiedDegraded { result })
    }

    fn remember_good(&self, result: &QualifiedClassification) {
        let mut guard = self
            .last_good
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *guard = Some(result.clone());
    }

    fn request_stop(&self) {
        let mut stop = self
            .stop_requested
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *stop = true;
        self.stop_cv.notify_all();
    }

    fn wait_for_stop(&self) {
        let mut stop = self
            .stop_requested
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*stop {
            stop = self
                .stop_cv
                .wait(stop)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn health(&self) -> ServerHealth {
        let qs = self.queue.stats();
        let ds = self.dedup.stats();
        let fleet = self.registry.stats();
        ServerHealth {
            requests: self.requests.load(Ordering::Relaxed),
            rows_classified: self.rows_classified.load(Ordering::Relaxed),
            rejected: qs.rejected,
            shed: qs.shed,
            queue_highwater: qs.highwater,
            session_errors: self.session_errors.load(Ordering::Relaxed),
            dedup_hits: ds.dedup_hits,
            duplicate_executions: ds.duplicate_executions,
            degraded_served: self.degraded_served.load(Ordering::Relaxed),
            ladder: self.ladder_name(),
            workers: self.workers,
            draining: self.draining(),
            tenants: fleet.tenants,
            tenants_quarantined: fleet.tenants_quarantined,
            warm_loads: fleet.warm_loads,
            evictions: fleet.evictions,
            swaps: fleet.swaps,
            swap_rollbacks: fleet.swap_rollbacks,
            tenant_overloads: fleet.tenant_overloads,
            quarantined_answers: fleet.quarantined_answers,
            version_rejections: self.registry.version_rejections(),
        }
    }
}

/// A running server. Dropping it performs a full graceful shutdown; call
/// [`CqmServer::shutdown`] to get the final health and checkpoint result
/// explicitly.
pub struct CqmServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    runtime: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    checkpoint: Option<CheckpointHandle>,
    model: ServedModel,
    start_seq: u64,
    finished: bool,
}

impl CqmServer {
    /// Resolve the model, bind the listener, start workers and acceptor.
    ///
    /// # Errors
    ///
    /// * model resolution failures (see [`ModelSource::resolve`]);
    /// * [`ServeError::Io`] if the address cannot be bound.
    pub fn start(source: ModelSource, config: ServerConfig) -> Result<CqmServer> {
        let resolved = source.resolve()?;
        let registry = ModelRegistry::new(config.fleet)?;
        registry.install(DEFAULT_TENANT, resolved.model.clone(), resolved.seq)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::io(format!("binding {}", config.addr), &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::io("reading bound address", &e))?;

        let workers = config.workers.max(1);
        let micro_batch = config.micro_batch.max(1);
        let snapshot = SnapshotInfo {
            checkpoint_seq: resolved.seq,
            warm_started: resolved.warm_started,
            cue_dim: resolved.model.cue_dim(),
            num_classes: resolved.model.num_classes(),
            threshold: resolved.model.model().threshold,
            note: resolved.model.model().note.clone(),
        };
        let shared = Arc::new(Shared {
            registry,
            queue: BoundedQueue::new(config.queue_capacity),
            admission: config.admission,
            draining: AtomicBool::new(false),
            stop_requested: Mutex::new(false),
            stop_cv: Condvar::new(),
            requests: AtomicU64::new(0),
            rows_classified: AtomicU64::new(0),
            session_errors: AtomicU64::new(0),
            degraded_served: AtomicU64::new(0),
            snapshot,
            workers,
            dedup: DedupWindow::new(config.dedup),
            ladder: config
                .ladder
                .map(|policy| Mutex::new(DegradationLadder::new(policy))),
            last_good: Mutex::new(None),
            frame_deadline: config.frame_deadline,
            write_timeout: config.write_timeout,
        });

        let runtime = {
            let shared = Arc::clone(&shared);
            let eval_delay = config.eval_delay;
            let precision = config.precision;
            std::thread::spawn(move || {
                // The pool's scoped threads are the worker loops: one
                // chunk per worker, each blocking on the queue until it
                // closes and drains.
                let pool = WorkerPool::new(workers);
                pool.run_chunks(workers, 1, |_chunk| {
                    run_worker(
                        &shared.queue,
                        micro_batch,
                        precision,
                        eval_delay,
                        &shared.rows_classified,
                    );
                });
            })
        };

        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let sessions = Arc::clone(&sessions);
            std::thread::spawn(move || accept_loop(&listener, &shared, &sessions))
        };

        Ok(CqmServer {
            addr,
            shared,
            acceptor: Some(acceptor),
            runtime: Some(runtime),
            sessions,
            checkpoint: config.checkpoint.map(CheckpointHandle::new),
            model: resolved.model,
            start_seq: resolved.seq,
            finished: false,
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current load counters.
    pub fn health(&self) -> ServerHealth {
        self.shared.health()
    }

    /// Install (or replace, *without* swap validation) a tenant's model.
    /// This is the cold-provisioning path: the model is persisted to the
    /// fleet store (when one is configured) and the slot flips immediately.
    /// For a validated, zero-drop replacement of a live model use
    /// [`CqmServer::swap_model`].
    ///
    /// # Errors
    ///
    /// See [`FleetConfig`]: invalid tenant key, or a store write failure.
    pub fn install_model(&self, tenant: &str, model: ServedModel) -> Result<()> {
        self.shared.registry.install(tenant, model, 0)
    }

    /// Zero-drop hot swap of `tenant`'s live model: the candidate is built
    /// and validated beside the live engine (construction revalidation, a
    /// bit-exact replay probe over `FleetConfig::probe_cues`, persist +
    /// reload verification), then the routing slot flips atomically.
    /// In-flight requests finish on the old engine; no request is dropped
    /// and none is answered by a half-loaded model. A tenant evicted to
    /// its checkpoint is an equally valid target: the new generation is
    /// validated and persisted, and the next warm-load serves it. A
    /// quarantined tenant is repaired by a successful swap — the verified
    /// checkpoint replaces the corrupt one and its breaker closes.
    /// Returns the new checkpoint generation.
    ///
    /// # Errors
    ///
    /// Any validation or persistence failure rolls back to last-good and
    /// leaves routing untouched; see `ModelRegistry::swap` in
    /// `registry.rs` for the variants.
    pub fn swap_model(&self, tenant: &str, model: ServedModel) -> Result<u64> {
        self.shared.registry.swap(tenant, model)
    }

    /// Block until a client's `Shutdown` request (or a concurrent
    /// [`CqmServer::shutdown`]) stops the server, then finish the drain
    /// and return the final health.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Persist`] if the shutdown checkpoint cannot
    /// be written; the drain itself always completes.
    pub fn join(mut self) -> Result<ServerHealth> {
        self.shared.wait_for_stop();
        self.finish()
    }

    /// Drain and stop now: refuse new work, answer everything admitted,
    /// tear down the threads, write the checkpoint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmServer::join`].
    pub fn shutdown(mut self) -> Result<ServerHealth> {
        self.shared.request_stop();
        self.finish()
    }

    fn finish(&mut self) -> Result<ServerHealth> {
        if self.finished {
            return Ok(self.shared.health());
        }
        self.finished = true;
        // 1. No new work: sessions answer ShuttingDown, acceptor stops.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.request_stop();
        // 2. Workers drain every admitted job, then exit.
        self.shared.queue.close();
        // 3. The acceptor is parked in accept(); a throwaway connection
        //    wakes it so it can observe the draining flag. A failed
        //    connect only means the listener is already gone. Bounded, so
        //    a pathological network stack cannot park shutdown forever.
        drop(TcpStream::connect_timeout(
            &self.addr,
            Duration::from_secs(2),
        ));
        if let Some(h) = self.acceptor.take() {
            let _joined = h.join();
        }
        if let Some(h) = self.runtime.take() {
            let _joined = h.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut sessions = self
                .sessions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sessions.drain(..).collect()
        };
        for h in handles {
            let _joined = h.join();
        }
        // 4. Only now — with every answer delivered — write the
        //    checkpoint the next instance warm-starts from. The default
        //    tenant's *current* slot is what the next instance should
        //    serve, so a hot swap survives the restart; the boot model is
        //    only a fallback if that slot was evicted mid-drain.
        if let Some(handle) = &self.checkpoint {
            let (model, seq) = self
                .shared
                .registry
                .current(DEFAULT_TENANT)
                .unwrap_or((self.model.clone(), self.start_seq));
            let ck = ServeCheckpoint {
                seq: seq + 1,
                model,
            };
            handle.save(&ck)?;
        }
        Ok(self.shared.health())
    }
}

impl Drop for CqmServer {
    fn drop(&mut self) {
        // Best-effort graceful shutdown for servers dropped without an
        // explicit call; Drop cannot propagate the checkpoint error.
        if !self.finished {
            let _result = self.finish();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining() {
                    // The shutdown self-connect (or a late client); the
                    // connection is dropped unanswered.
                    break;
                }
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || run_session(stream, &shared));
                sessions
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(_accept_error) => {
                // Transient accept failures (e.g. aborted handshake) are
                // not fatal; leave only when shutting down.
                if shared.draining() {
                    break;
                }
            }
        }
    }
}

fn run_session(mut stream: TcpStream, shared: &Shared) {
    if let Err(e) = session(&mut stream, shared) {
        shared.session_errors.fetch_add(1, Ordering::Relaxed);
        // Best-effort typed goodbye: tell the client *why* before closing.
        // The transport may already be gone, in which case there is nobody
        // left to tell and the counter above is the only trace.
        let goodbye = match &e {
            // Version negotiation: a frame from an older (or newer) build
            // gets the typed refusal immediately — no retries, no parsing
            // of a payload we do not understand.
            ServeError::ProtocolVersion { found, .. } => {
                shared.registry.note_version_rejection();
                Response::Error {
                    error: WireError::unsupported_version(*found),
                }
            }
            _ => Response::Error {
                error: WireError::bad_request(format!("closing connection: {e}")),
            },
        };
        if write_frame(&mut stream, &goodbye).is_err() {
            // Connection unusable; already counted.
        }
    }
}

/// Speak the protocol with one client until EOF, shutdown, or a protocol
/// error (which the caller turns into a typed goodbye).
fn session(stream: &mut TcpStream, shared: &Shared) -> Result<()> {
    stream
        .set_read_timeout(Some(SESSION_POLL))
        .map_err(|e| ServeError::io("configuring session socket", &e))?;
    stream
        .set_write_timeout(shared.write_timeout)
        .map_err(|e| ServeError::io("configuring session socket", &e))?;
    // One reply channel per session: a session has at most one job in
    // flight, so the channel is reused across requests. Capacity 1 — one
    // slot for that single in-flight answer; workers `try_send`, so a
    // stale reply arriving after `await_reply` timed out is dropped by the
    // full buffer (and `submit` drains any leftover before the next job)
    // instead of accumulating or being mistaken for the next answer.
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Response>(1);
    loop {
        match read_frame_within::<_, Request>(stream, shared.frame_deadline)? {
            FrameRead::Idle => {
                if shared.draining() {
                    return Ok(());
                }
            }
            FrameRead::Eof => return Ok(()),
            FrameRead::Frame(request) => {
                let response = handle_request(request, shared, &reply_tx, &reply_rx);
                write_frame(stream, &response)?;
            }
        }
    }
}

fn handle_request(
    request: Request,
    shared: &Shared,
    reply_tx: &mpsc::SyncSender<Response>,
    reply_rx: &mpsc::Receiver<Response>,
) -> Response {
    match request {
        Request::Classify { id, tenant, cues } => {
            with_dedup(shared, id, || {
                submit(shared, tenant.as_deref(), Work::One(cues), reply_tx, reply_rx)
            })
        }
        Request::ClassifyBatch { id, tenant, rows } => {
            with_dedup(shared, id, || {
                submit(shared, tenant.as_deref(), Work::Many(rows), reply_tx, reply_rx)
            })
        }
        Request::Snapshot => Response::Snapshot {
            info: shared.snapshot.clone(),
        },
        Request::Health => Response::Health {
            health: shared.health(),
        },
        Request::Shutdown => {
            shared.request_stop();
            Response::ShuttingDown
        }
    }
}

/// Route one classify request through the exactly-once window: first
/// arrival executes, concurrent duplicates park for the same answer,
/// later duplicates replay the cache.
fn with_dedup(shared: &Shared, id: RequestId, run: impl FnOnce() -> Response) -> Response {
    match shared.dedup.begin(id) {
        Claim::Execute => {
            let response = run();
            shared.dedup.complete(id, &response);
            response
        }
        Claim::Replay(response) => response,
        Claim::Wait(rx) => match rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(response) => response,
            // The executing arrival's slot was evicted (window overflow)
            // or it never completed; answer typed rather than hanging.
            Err(_) => Response::Error {
                error: WireError::internal("duplicate request lost its executing twin"),
            },
        },
    }
}

fn submit(
    shared: &Shared,
    tenant: Option<&str>,
    work: Work,
    reply_tx: &mpsc::SyncSender<Response>,
    reply_rx: &mpsc::Receiver<Response>,
) -> Response {
    if shared.draining() {
        return Response::Error {
            error: WireError::shutting_down(),
        };
    }
    // The bulkhead: admit through the tenant's slot first. A typed shed
    // here (Overloaded / TenantQuarantined / BadRequest) is that tenant's
    // private problem — it never touches the shared queue or the global
    // ladder, so peers are unaffected. The lease pins the engine for the
    // whole exchange and releases the tenant budget when this fn returns.
    let lease = match shared.registry.admit(tenant.unwrap_or(DEFAULT_TENANT)) {
        Ok(lease) => lease,
        Err(error) => return Response::Error { error },
    };
    // A previous job may have answered after its `await_reply` timed out;
    // clear the slot so this job cannot receive the stale response.
    while reply_rx.try_recv().is_ok() {}
    let job = Job {
        work,
        reply: reply_tx.clone(),
        engine: Arc::clone(&lease.engine),
    };
    match shared.queue.push(job, &shared.admission) {
        Admission::Enqueued => {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            settle(shared, await_reply(reply_rx))
        }
        Admission::Shed(evicted) => {
            // The evicted job's session is parked on its reply channel;
            // complete it with the typed overload answer. A dead or full
            // channel only means that session already gave up.
            let _ = evicted.reply.try_send(Response::Error {
                error: WireError::overloaded(),
            });
            shared.requests.fetch_add(1, Ordering::Relaxed);
            settle(shared, await_reply(reply_rx))
        }
        Admission::Rejected(job) => {
            let state = shared.ladder_event(false);
            // In Failsafe a rejected *single* classify is served the
            // last-good answer, typed as degraded; batches and cold
            // caches still get the honest overload error.
            if state == Some(HealthState::Failsafe) {
                if let Work::One(_) = &job.work {
                    if let Some(degraded) = shared.degraded_answer() {
                        return degraded;
                    }
                }
            }
            Response::Error {
                error: WireError::overloaded(),
            }
        }
    }
}

/// Post-process an answered job: remember fresh singles for Failsafe and
/// feed the ladder (success for served classifications, fault for
/// overload/internal outcomes).
fn settle(shared: &Shared, response: Response) -> Response {
    match &response {
        Response::Classified { result } => {
            shared.remember_good(result);
            shared.ladder_event(true);
        }
        Response::ClassifiedBatch { .. } => {
            shared.ladder_event(true);
        }
        Response::Error { error } => match error.kind {
            crate::protocol::WireErrorKind::Overloaded
            | crate::protocol::WireErrorKind::Internal => {
                shared.ladder_event(false);
            }
            // A bad request is the client's fault, not server pressure;
            // per-tenant sheds never reach here (submit returns them
            // before the queue), but an explicit no-op keeps the bulkhead
            // invariant — tenant trouble must not move the global ladder.
            crate::protocol::WireErrorKind::BadRequest
            | crate::protocol::WireErrorKind::ShuttingDown
            | crate::protocol::WireErrorKind::UnsupportedVersion
            | crate::protocol::WireErrorKind::TenantQuarantined => {}
        },
        _ => {}
    }
    response
}

fn await_reply(reply_rx: &mpsc::Receiver<Response>) -> Response {
    match reply_rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(response) => response,
        Err(mpsc::RecvTimeoutError::Timeout) => Response::Error {
            error: WireError::internal("worker did not answer within the reply timeout"),
        },
        Err(mpsc::RecvTimeoutError::Disconnected) => Response::Error {
            error: WireError::shutting_down(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, CqmClient};
    use crate::model::test_support::tiny_model;

    fn quick_client(addr: SocketAddr) -> CqmClient {
        CqmClient::connect(addr, ClientConfig::default()).expect("connect")
    }

    #[test]
    fn serves_classify_and_introspection_then_shuts_down() {
        let server = CqmServer::start(
            ModelSource::Fresh(tiny_model()),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("start");
        let mut client = quick_client(server.local_addr());

        let one = client.classify(&[0.9]).expect("classify");
        assert_eq!(one.class.0, 1);
        let many = client
            .classify_batch(&[vec![0.1], vec![0.9]])
            .expect("batch");
        assert_eq!(many.len(), 2);
        assert_eq!(many[0].class.0, 0);

        let info = client.snapshot().expect("snapshot");
        assert_eq!(info.cue_dim, 1);
        assert!(!info.warm_started);
        let health = client.health().expect("health");
        assert_eq!(health.requests, 2);
        assert_eq!(health.rows_classified, 3);

        let final_health = server.shutdown().expect("shutdown");
        assert_eq!(final_health.rows_classified, 3);
        assert!(final_health.draining);
    }

    #[test]
    fn bad_cues_get_typed_errors_not_disconnects() {
        let server = CqmServer::start(ModelSource::Fresh(tiny_model()), ServerConfig::default())
            .expect("start");
        let mut client = quick_client(server.local_addr());
        let err = client.classify(&[0.1, 0.2]).expect_err("dim mismatch");
        assert!(matches!(
            err,
            ServeError::Remote(WireError {
                kind: crate::protocol::WireErrorKind::BadRequest,
                ..
            })
        ));
        // The connection survives a bad request.
        assert!(client.classify(&[0.5]).is_ok());
        server.shutdown().expect("shutdown");
    }

    #[test]
    fn client_shutdown_request_stops_join() {
        let server = CqmServer::start(ModelSource::Fresh(tiny_model()), ServerConfig::default())
            .expect("start");
        let addr = server.local_addr();
        let stopper = std::thread::spawn(move || {
            let mut client = quick_client(addr);
            client.shutdown().expect("shutdown request");
        });
        let health = server.join().expect("join");
        stopper.join().expect("stopper");
        assert!(health.draining);
    }
}
