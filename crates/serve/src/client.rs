//! The blocking client: timeouts, typed errors, retry-on-`Overloaded`.
//!
//! One [`CqmClient`] owns one connection and one in-flight request at a
//! time (the protocol is strictly request/response per connection; open
//! more clients for more concurrency). Two failure families are kept
//! apart deliberately:
//!
//! * [`ServeError::Remote`] — the server answered, with a typed refusal.
//!   `Overloaded` is the retryable one, and [`CqmClient::classify`] /
//!   [`CqmClient::classify_batch`] retry it with a fixed backoff up to
//!   [`ClientConfig::retries`] times before giving up.
//! * Everything else — timeouts, torn frames, closed connections — is a
//!   transport failure; the connection is not trustworthy afterwards and
//!   the client does not retry on its own.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cqm_core::pipeline::QualifiedClassification;

use crate::protocol::{
    read_frame, write_frame, FrameRead, Request, Response, ServerHealth, SnapshotInfo,
    WireErrorKind,
};
use crate::{Result, ServeError};

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Longest to wait for the TCP connect.
    pub connect_timeout: Duration,
    /// Per-call read/write timeout.
    pub io_timeout: Duration,
    /// Retries after an `Overloaded` answer (0 = give up immediately).
    pub retries: u32,
    /// Fixed pause between overload retries.
    pub retry_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            retries: 3,
            retry_backoff: Duration::from_millis(25),
        }
    }
}

/// A connected client; see the module docs for the failure model.
pub struct CqmClient {
    stream: TcpStream,
    config: ClientConfig,
}

impl CqmClient {
    /// Connect with the configured timeouts.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the connection cannot be established
    /// or the timeouts cannot be set.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)
            .map_err(|e| ServeError::io(format!("connecting to {addr}"), &e))?;
        stream
            .set_read_timeout(Some(config.io_timeout))
            .map_err(|e| ServeError::io("configuring read timeout", &e))?;
        stream
            .set_write_timeout(Some(config.io_timeout))
            .map_err(|e| ServeError::io("configuring write timeout", &e))?;
        Ok(CqmClient { stream, config })
    }

    /// One request/response exchange.
    ///
    /// # Errors
    ///
    /// Transport failures ([`ServeError::Io`] / [`ServeError::Protocol`] /
    /// [`ServeError::Timeout`] / [`ServeError::ConnectionClosed`]); a
    /// server-side [`Response::Error`] is returned as `Ok` here and mapped
    /// by the typed wrappers.
    fn call(&mut self, request: &Request) -> Result<Response> {
        write_frame(&mut self.stream, request)?;
        match read_frame::<_, Response>(&mut self.stream)? {
            FrameRead::Frame(response) => Ok(response),
            FrameRead::Eof => Err(ServeError::ConnectionClosed),
            FrameRead::Idle => Err(ServeError::Timeout("waiting for the response".into())),
        }
    }

    /// Run `request`, retrying typed `Overloaded` answers with backoff.
    fn call_retrying(&mut self, request: &Request) -> Result<Response> {
        let mut attempts_left = self.config.retries;
        loop {
            let response = self.call(request)?;
            let Response::Error { error } = &response else {
                return Ok(response);
            };
            if error.kind != WireErrorKind::Overloaded || attempts_left == 0 {
                return Ok(response);
            }
            attempts_left -= 1;
            std::thread::sleep(self.config.retry_backoff);
        }
    }

    /// Classify one cue vector.
    ///
    /// # Errors
    ///
    /// Transport failures as for [`CqmClient::call`], or
    /// [`ServeError::Remote`] once overload retries are exhausted or for
    /// any non-retryable refusal.
    pub fn classify(&mut self, cues: &[f64]) -> Result<QualifiedClassification> {
        let request = Request::Classify {
            cues: cues.to_vec(),
        };
        match self.call_retrying(&request)? {
            Response::Classified { result } => Ok(result),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("Classified", &other)),
        }
    }

    /// Classify a batch atomically; all rows answer or the batch fails.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::classify`].
    pub fn classify_batch(&mut self, rows: &[Vec<f64>]) -> Result<Vec<QualifiedClassification>> {
        let request = Request::ClassifyBatch {
            rows: rows.to_vec(),
        };
        match self.call_retrying(&request)? {
            Response::ClassifiedBatch { results } => Ok(results),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("ClassifiedBatch", &other)),
        }
    }

    /// Describe the served model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::classify`] (no overload retries —
    /// introspection is never queued).
    pub fn snapshot(&mut self) -> Result<SnapshotInfo> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshot { info } => Ok(info),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    /// Read the server's load counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::snapshot`].
    pub fn health(&mut self) -> Result<ServerHealth> {
        match self.call(&Request::Health)? {
            Response::Health { health } => Ok(health),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("Health", &other)),
        }
    }

    /// Ask the server to drain and stop. The acknowledgement only means
    /// the drain has begun; the server's owner observes completion via
    /// `CqmServer::join`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::snapshot`].
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
