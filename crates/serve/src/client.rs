//! The blocking client: deadlines, idempotent retries, typed errors.
//!
//! One [`CqmClient`] owns one connection and one in-flight request at a
//! time (the protocol is strictly request/response per connection; open
//! more clients for more concurrency). Every call runs under one
//! per-call deadline budget ([`ClientConfig::call_deadline`]) that covers
//! connects, reconnects, I/O and backoff sleeps together — a retry never
//! gets a fresh clock, it inherits whatever the budget has left.
//!
//! Three failure families are kept apart deliberately:
//!
//! * **Typed overload** — the server answered `Overloaded`. Retried with
//!   capped exponential backoff and seeded decorrelated jitter, up to
//!   [`ClientConfig::retries`] extra attempts within the deadline; on
//!   exhaustion the last typed answer is returned (so callers still see
//!   [`ServeError::Remote`]).
//! * **Transient transport faults** — resets, torn frames, timeouts,
//!   corrupt payloads. The connection is poisoned and, for *idempotent*
//!   requests, the call reconnects (with the connect budget shrunk to the
//!   remaining deadline) and retries under the same backoff schedule.
//!   Classify requests are idempotent **because** they carry a
//!   client-assigned [`RequestId`] the retry reuses: the server's dedup
//!   window turns a re-send of an already-executed request into a replay,
//!   never a second execution. On exhaustion the call fails with
//!   [`ServeError::RetriesExhausted`], carrying the budget it spent and
//!   the last underlying error.
//! * **Settled refusals** — `BadRequest` and friends. Never retried.
//!
//! `Shutdown` is the one non-idempotent request; it is sent exactly once
//! and any transport failure is surfaced as-is.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cqm_core::pipeline::QualifiedClassification;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::protocol::{
    encode_frame, read_frame_within, FrameRead, Request, RequestId, Response, ServerHealth,
    SnapshotInfo, WireErrorKind,
};
use crate::{Result, ServeError};

/// Distinguishes client instances within one process so their default
/// session ids never collide (two clients sharing a session id would
/// collide in the server's dedup window).
static NEXT_CLIENT: AtomicU64 = AtomicU64::new(1);

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Longest to wait for the initial TCP connect. Reconnects inside a
    /// call get `min(connect_timeout, remaining deadline)`.
    pub connect_timeout: Duration,
    /// Per-attempt read/write timeout, further clamped to the remaining
    /// call deadline.
    pub io_timeout: Duration,
    /// Extra attempts after the first (0 = one attempt, no retries).
    pub retries: u32,
    /// First backoff sleep; also the floor of every later sleep.
    pub backoff_base: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub backoff_cap: Duration,
    /// Overall wall-clock budget for one logical call, shared by every
    /// attempt, reconnect and backoff sleep within it.
    pub call_deadline: Duration,
    /// Whether transient transport faults on idempotent requests are
    /// retried (typed `Overloaded` answers are always retried).
    pub retry_transport: bool,
    /// Session half of the [`RequestId`] this client stamps on classify
    /// requests. `None` derives a process-unique id.
    pub session_id: Option<u64>,
    /// Seed for the backoff jitter; fixed seed → replayable sleeps.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            call_deadline: Duration::from_secs(60),
            retry_transport: true,
            session_id: None,
            seed: 0xC0FF_EE00_D15E_A5E5,
        }
    }
}

/// A classification as served over the wire, carrying the degradation
/// flag: `degraded` means the server was in Failsafe and replayed its
/// last-good answer instead of evaluating the cues — trust accordingly.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedAnswer {
    /// Class, quality and filter verdict.
    pub result: QualifiedClassification,
    /// Whether this is a Failsafe last-good answer rather than a fresh
    /// evaluation of the submitted cues.
    pub degraded: bool,
}

/// A connected client; see the module docs for the failure model.
pub struct CqmClient {
    addr: SocketAddr,
    /// `None` after a transport fault poisoned the connection; the next
    /// attempt reconnects within the remaining deadline.
    stream: Option<TcpStream>,
    config: ClientConfig,
    session: u64,
    next_request: u64,
    rng: StdRng,
    last_attempts: u32,
}

/// Transport failures that may be transient: worth a retry when the
/// request is idempotent. Settled answers (`Remote`) and local
/// misconfiguration are not in this family.
fn transient(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Io { .. }
            | ServeError::Protocol(_)
            | ServeError::Timeout(_)
            | ServeError::ConnectionClosed
            | ServeError::Decode(_)
    )
}

impl CqmClient {
    /// Connect with the configured timeouts.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the connection cannot be established
    /// or the timeouts cannot be set.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<Self> {
        let session = config.session_id.unwrap_or_else(|| {
            // Process id ‖ counter: unique across concurrent clients on
            // one host without consulting clocks or entropy.
            (u64::from(std::process::id()) << 32)
                | (NEXT_CLIENT.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF)
        });
        let rng = StdRng::seed_from_u64(config.seed ^ session);
        let mut client = CqmClient {
            addr,
            stream: None,
            config,
            session,
            next_request: 0,
            rng,
            last_attempts: 0,
        };
        client.reconnect(client.config.connect_timeout)?;
        Ok(client)
    }

    /// The session half of the ids this client stamps on requests.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Attempts the most recent retried call consumed (1 = first try
    /// succeeded). Diagnostic for benches and tests.
    pub fn last_attempts(&self) -> u32 {
        self.last_attempts
    }

    fn reconnect(&mut self, budget: Duration) -> Result<()> {
        let stream = TcpStream::connect_timeout(&self.addr, budget.max(Duration::from_millis(1)))
            .map_err(|e| ServeError::io(format!("connecting to {}", self.addr), &e))?;
        self.stream = Some(stream);
        Ok(())
    }

    /// One pre-encoded request/response exchange within `remaining` of
    /// the call deadline; reconnects first if the connection is poisoned.
    /// Any transport failure poisons the connection before propagating.
    fn exchange(&mut self, frame: &[u8], remaining: Duration) -> Result<Response> {
        if self.stream.is_none() {
            let budget = self.config.connect_timeout.min(remaining);
            self.reconnect(budget)?;
        }
        let io_budget = self
            .config
            .io_timeout
            .min(remaining)
            .max(Duration::from_millis(1));
        let outcome = {
            let Some(stream) = self.stream.as_mut() else {
                return Err(ServeError::ConnectionClosed); // reconnect just set it; typed fallback
            };
            stream
                .set_read_timeout(Some(io_budget))
                .and_then(|()| stream.set_write_timeout(Some(io_budget)))
                .map_err(|e| ServeError::io("configuring call timeouts", &e))
                .and_then(|()| {
                    use std::io::Write;
                    stream
                        .write_all(frame)
                        .and_then(|()| stream.flush())
                        .map_err(|e| ServeError::io("writing frame", &e))?;
                    // The io budget also caps the whole response frame: a
                    // corrupted length prefix otherwise leaves the client
                    // stalling for bytes the server never sent, and only
                    // the 100-stall backstop would end it.
                    match read_frame_within::<_, Response>(stream, Some(io_budget))? {
                        FrameRead::Frame(response) => Ok(response),
                        FrameRead::Eof => Err(ServeError::ConnectionClosed),
                        FrameRead::Idle => {
                            Err(ServeError::Timeout("waiting for the response".into()))
                        }
                    }
                })
        };
        if outcome.is_err() {
            // The exchange may have died mid-frame; nothing more can be
            // trusted on this connection.
            self.stream = None;
        }
        outcome
    }

    /// Next decorrelated-jitter sleep: uniform in
    /// `[base, min(cap, prev * 3)]`, the AWS "decorrelated jitter"
    /// schedule — exponential in expectation, seeded and replayable here.
    fn next_backoff(&mut self, prev: Duration) -> Duration {
        let base = self.config.backoff_base.max(Duration::from_millis(1));
        let cap = self.config.backoff_cap.max(base);
        let ceiling = (prev * 3).clamp(base, cap);
        let span = ceiling.saturating_sub(base);
        let unit: f64 = self.rng.gen();
        base + span.mul_f64(unit.clamp(0.0, 1.0))
    }

    /// Run `request` under the call deadline, retrying typed overloads
    /// and (when `idempotent`) transient transport faults.
    fn call_retrying(&mut self, request: &Request, idempotent: bool) -> Result<Response> {
        // Encode once, outside the retry loop: a request the protocol
        // cannot represent (say, a NaN cue) is a deterministic local
        // failure — retrying it would only re-fail — and every retry
        // re-sends byte-identical frames.
        let frame = encode_frame(request)?;
        let start = Instant::now();
        let deadline = self.config.call_deadline;
        let mut attempts = 0u32;
        let mut prev_sleep = self.config.backoff_base;
        loop {
            let remaining = deadline.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                self.last_attempts = attempts;
                return Err(ServeError::RetriesExhausted {
                    attempts,
                    elapsed: start.elapsed(),
                    deadline,
                    last: Box::new(ServeError::Timeout("call deadline exhausted".into())),
                });
            }
            attempts += 1;
            let last_error = match self.exchange(&frame, remaining) {
                Ok(Response::Error { error })
                    if error.kind == WireErrorKind::Overloaded && attempts <= self.config.retries =>
                {
                    // Typed overload: retryable, but if the budget runs
                    // out the typed answer itself is the result.
                    None
                }
                Ok(response) => {
                    self.last_attempts = attempts;
                    return Ok(response);
                }
                Err(e)
                    if idempotent
                        && self.config.retry_transport
                        && transient(&e)
                        && attempts <= self.config.retries =>
                {
                    Some(e)
                }
                Err(e) => {
                    self.last_attempts = attempts;
                    if attempts > 1 {
                        return Err(ServeError::RetriesExhausted {
                            attempts,
                            elapsed: start.elapsed(),
                            deadline,
                            last: Box::new(e),
                        });
                    }
                    return Err(e);
                }
            };
            // Back off inside the remaining budget; a sleep that would
            // cross the deadline is clamped so the final attempt still
            // happens before (not after) the budget expires.
            let sleep = self.next_backoff(prev_sleep);
            prev_sleep = sleep;
            let room = deadline.saturating_sub(start.elapsed());
            if room.is_zero() {
                self.last_attempts = attempts;
                return match last_error {
                    Some(e) => Err(ServeError::RetriesExhausted {
                        attempts,
                        elapsed: start.elapsed(),
                        deadline,
                        last: Box::new(e),
                    }),
                    None => Ok(Response::Error {
                        error: crate::protocol::WireError::overloaded(),
                    }),
                };
            }
            std::thread::sleep(sleep.min(room));
        }
    }

    fn next_id(&mut self) -> RequestId {
        self.next_request += 1;
        RequestId {
            session: self.session,
            request: self.next_request,
        }
    }

    /// Classify one cue vector, surfacing the degradation flag.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] for typed refusals (including exhausted
    /// overload retries), [`ServeError::RetriesExhausted`] when the retry
    /// budget dies on transport faults, or the transport failure itself
    /// on a non-retryable first attempt.
    pub fn classify_answer(&mut self, cues: &[f64]) -> Result<ServedAnswer> {
        self.classify_answer_for(None, cues)
    }

    /// Classify one cue vector against a named tenant's model (`None`
    /// routes to the server's default tenant), surfacing the degradation
    /// flag. Per-tenant sheds come back typed: `Overloaded` (the tenant's
    /// bulkhead budget, retried like any overload) or `TenantQuarantined`
    /// (the tenant's checkpoint failed to load — surfaced immediately as
    /// [`ServeError::Remote`]; retrying is the caller's policy decision).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::classify_answer`].
    pub fn classify_answer_for(
        &mut self,
        tenant: Option<&str>,
        cues: &[f64],
    ) -> Result<ServedAnswer> {
        let request = Request::Classify {
            id: self.next_id(),
            tenant: tenant.map(str::to_string),
            cues: cues.to_vec(),
        };
        match self.call_retrying(&request, true)? {
            Response::Classified { result } => Ok(ServedAnswer {
                result,
                degraded: false,
            }),
            Response::ClassifiedDegraded { result } => Ok(ServedAnswer {
                result,
                degraded: true,
            }),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("Classified", &other)),
        }
    }

    /// Classify one cue vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::classify_answer`], whose
    /// `degraded` flag this discards.
    pub fn classify(&mut self, cues: &[f64]) -> Result<QualifiedClassification> {
        Ok(self.classify_answer(cues)?.result)
    }

    /// Classify one cue vector against a named tenant's model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::classify_answer_for`], whose
    /// `degraded` flag this discards.
    pub fn classify_for(
        &mut self,
        tenant: Option<&str>,
        cues: &[f64],
    ) -> Result<QualifiedClassification> {
        Ok(self.classify_answer_for(tenant, cues)?.result)
    }

    /// Classify a batch atomically; all rows answer or the batch fails.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::classify_answer`].
    pub fn classify_batch(&mut self, rows: &[Vec<f64>]) -> Result<Vec<QualifiedClassification>> {
        self.classify_batch_for(None, rows)
    }

    /// Classify a batch atomically against a named tenant's model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::classify_answer_for`].
    pub fn classify_batch_for(
        &mut self,
        tenant: Option<&str>,
        rows: &[Vec<f64>],
    ) -> Result<Vec<QualifiedClassification>> {
        let request = Request::ClassifyBatch {
            id: self.next_id(),
            tenant: tenant.map(str::to_string),
            rows: rows.to_vec(),
        };
        match self.call_retrying(&request, true)? {
            Response::ClassifiedBatch { results } => Ok(results),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("ClassifiedBatch", &other)),
        }
    }

    /// Describe the served model. Read-only, so transport faults are
    /// retried like any idempotent request.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::classify_answer`].
    pub fn snapshot(&mut self) -> Result<SnapshotInfo> {
        match self.call_retrying(&Request::Snapshot, true)? {
            Response::Snapshot { info } => Ok(info),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    /// Read the server's load counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmClient::snapshot`].
    pub fn health(&mut self) -> Result<ServerHealth> {
        match self.call_retrying(&Request::Health, true)? {
            Response::Health { health } => Ok(health),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("Health", &other)),
        }
    }

    /// Ask the server to drain and stop. Not idempotent — sent exactly
    /// once, transport faults surface as-is. The acknowledgement only
    /// means the drain has begun; the server's owner observes completion
    /// via `CqmServer::join`.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ServeError::Remote`] on a typed refusal.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call_retrying(&Request::Shutdown, false)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { error } => Err(ServeError::Remote(error)),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_client(config: ClientConfig) -> (CqmClient, std::net::TcpListener) {
        // A listener that never answers: enough to exercise connect and
        // the backoff schedule without a real server. Returned so it
        // outlives the client.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = CqmClient::connect(addr, config).expect("connect");
        (client, listener)
    }

    #[test]
    fn backoff_is_capped_bounded_below_and_replayable() {
        let config = ClientConfig {
            seed: 42,
            session_id: Some(7),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            ..ClientConfig::default()
        };
        let (mut a, _la) = test_client(config.clone());
        let (mut b, _lb) = test_client(config);
        let mut prev_a = a.config.backoff_base;
        let mut prev_b = b.config.backoff_base;
        for _ in 0..32 {
            let sa = a.next_backoff(prev_a);
            let sb = b.next_backoff(prev_b);
            assert_eq!(sa, sb, "same seed must give the same schedule");
            assert!(sa >= Duration::from_millis(10));
            assert!(sa <= Duration::from_millis(80));
            prev_a = sa;
            prev_b = sb;
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let (mut a, _la) = test_client(ClientConfig {
            seed: 1,
            session_id: Some(7),
            ..ClientConfig::default()
        });
        let (mut b, _lb) = test_client(ClientConfig {
            seed: 2,
            session_id: Some(7),
            ..ClientConfig::default()
        });
        let mut prev = Duration::from_millis(10);
        let mut diverged = false;
        for _ in 0..16 {
            if a.next_backoff(prev) != b.next_backoff(prev) {
                diverged = true;
                break;
            }
            prev += Duration::from_millis(1);
        }
        assert!(diverged, "seeds 1 and 2 produced identical jitter");
    }

    #[test]
    fn default_session_ids_are_unique_per_client() {
        let (a, _la) = test_client(ClientConfig::default());
        let (b, _lb) = test_client(ClientConfig::default());
        assert_ne!(a.session_id(), b.session_id());
    }

    #[test]
    fn request_ids_increment_within_a_session() {
        let (mut c, _lc) = test_client(ClientConfig {
            session_id: Some(99),
            ..ClientConfig::default()
        });
        let first = c.next_id();
        let second = c.next_id();
        assert_eq!(first.session, 99);
        assert_eq!((first.request, second.request), (1, 2));
    }
}
