//! The wire protocol: length-prefixed, versioned, CRC-guarded frames.
//!
//! On-the-wire frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     payload length in bytes (u32)
//! 4       4     protocol version (u32)
//! 8       4     CRC-32 (IEEE) over length ‖ version ‖ payload (u32)
//! 12      n     payload: JSON of a [`Request`] or [`Response`]
//! ```
//!
//! The CRC covers the length and version fields as well as the payload, so
//! a bit flip anywhere in the frame is detected — the same discipline as
//! `cqm-persist`'s journal records, applied to a socket instead of a file.
//! Quality values ride the wire as JSON floats; the vendored `serde_json`
//! is built with `float_roundtrip`, so an `f64` survives encode → decode
//! bit-exactly (the same property the checkpoint tests prove), which is
//! what makes "served answers match in-process answers bit-for-bit" a
//! meaningful claim rather than an approximation.
//!
//! Reading distinguishes three non-frame outcomes, all typed and none a
//! panic: a clean EOF before any header byte ([`FrameRead::Eof`], the peer
//! hung up between frames), a read timeout before any header byte
//! ([`FrameRead::Idle`], nothing in flight — the server's shutdown poll
//! tick), and everything else — torn headers, truncated payloads, CRC
//! mismatches, impossible lengths — as [`ServeError`] values.

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use cqm_core::pipeline::QualifiedClassification;
use cqm_persist::crc32::Crc32;

use crate::{Result, ServeError};

/// Current protocol version, stamped into every frame.
///
/// Version history:
///
/// * **1** — PR 5: anonymous `Classify`/`ClassifyBatch` requests.
/// * **2** — PR 7: classify requests carry a client-assigned
///   [`RequestId`] so retries are idempotent; responses gained
///   [`Response::ClassifiedDegraded`] (a last-good answer served in
///   Failsafe, flagged as degraded on the wire); [`ServerHealth`] gained
///   the dedup/ladder counters.
/// * **3** — PR 8: classify requests carry an optional tenant key routed
///   through the model registry (`None` = the default tenant); errors
///   gained [`WireErrorKind::UnsupportedVersion`] and
///   [`WireErrorKind::TenantQuarantined`]; [`ServerHealth`] gained the
///   fleet counters. v2 `Classify` frames omit the tenant field, which
///   would decode as `None` here — semantically compatible — but the
///   dedup-window and degraded-answer semantics are keyed per tenant now,
///   so cross-version traffic is refused outright (see
///   [`MIN_PROTOCOL_VERSION`]) rather than half-supported.
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest protocol version this build still accepts. Frames older than
/// this (and newer than [`PROTOCOL_VERSION`]) are rejected at the header —
/// before any payload allocation — with a typed
/// [`ServeError::ProtocolVersion`], which the server answers with a
/// [`WireErrorKind::UnsupportedVersion`] goodbye instead of hanging or
/// failing the CRC.
pub const MIN_PROTOCOL_VERSION: u32 = 3;

/// Bytes before the payload: length, version, CRC.
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 4;

/// Refuse frames beyond this payload size (a corrupt or hostile length
/// field must not turn into an OOM): 16 MiB.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Consecutive mid-frame read timeouts tolerated before the peer is
/// declared gone. Only reachable on sockets with a read timeout set (the
/// server polls at ~50 ms, so this is roughly a five-second stall budget).
///
/// This counter resets on any byte of progress, so on its own it does not
/// stop a slow-loris peer trickling one byte per poll interval; the
/// overall frame deadline of [`read_frame_within`] is the real defense,
/// and this is the backstop for callers without one.
const MAX_MID_FRAME_STALLS: u32 = 100;

/// A parsed frame header, CRC not yet verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Protocol version the frame was written with.
    pub version: u32,
    /// CRC-32 over length ‖ version ‖ payload.
    pub crc: u32,
}

/// A client-assigned idempotency key: `(session, request)`.
///
/// The client owns both halves — `session` is unique per client instance,
/// `request` increments per logical call — and a retry *reuses* the id of
/// the call it retries. The server's dedup window keys on the pair, so a
/// request whose answer was lost in transit is replayed from cache rather
/// than executed twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestId {
    /// The issuing client session (unique per client instance).
    pub session: u64,
    /// Monotone per-session call counter.
    pub request: u64,
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.session, self.request)
    }
}

/// What a client asks the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Classify one cue vector.
    Classify {
        /// Idempotency key; retries reuse it.
        id: RequestId,
        /// Which tenant's model answers; `None` routes to the default
        /// tenant.
        tenant: Option<String>,
        /// The cue vector `v_C`.
        cues: Vec<f64>,
    },
    /// Classify a batch atomically: all rows answer or none do.
    ClassifyBatch {
        /// Idempotency key; retries reuse it.
        id: RequestId,
        /// Which tenant's model answers; `None` routes to the default
        /// tenant.
        tenant: Option<String>,
        /// One cue vector per row.
        rows: Vec<Vec<f64>>,
    },
    /// Describe the model being served.
    Snapshot,
    /// Report server load counters.
    Health,
    /// Ask the server to drain and stop.
    Shutdown,
}

/// What the service answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Classify`].
    Classified {
        /// Class, quality and filter verdict.
        result: QualifiedClassification,
    },
    /// Answer to [`Request::ClassifyBatch`].
    ClassifiedBatch {
        /// One result per request row, in request order.
        results: Vec<QualifiedClassification>,
    },
    /// A *degraded* answer to [`Request::Classify`]: the server is in
    /// Failsafe and serves its last known-good classification instead of
    /// evaluating. The degradation is typed on the wire — a consumer can
    /// (and should) treat this with the suspicion the quality measure
    /// exists to encode, rather than mistake it for a fresh answer.
    ClassifiedDegraded {
        /// The last fresh classification the server produced.
        result: QualifiedClassification,
    },
    /// Answer to [`Request::Snapshot`].
    Snapshot {
        /// The served model's description.
        info: SnapshotInfo,
    },
    /// Answer to [`Request::Health`].
    Health {
        /// Load counters at the time of the request.
        health: ServerHealth,
    },
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// Any request the server could not serve, with a typed reason.
    Error {
        /// Why the request failed.
        error: WireError,
    },
}

/// Why a request failed, in vocabulary a client can act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireErrorKind {
    /// The bounded queue was full and admission control rejected the
    /// request. Retryable.
    Overloaded,
    /// The request itself was unserviceable (wrong cue dimension,
    /// non-finite cues, uncovered input, malformed frame). Not retryable.
    BadRequest,
    /// The server failed internally. Not the client's fault.
    Internal,
    /// The server is draining; no new work is admitted. Not retryable on
    /// this server instance.
    ShuttingDown,
    /// The peer spoke a protocol version outside
    /// [`MIN_PROTOCOL_VERSION`]..=[`PROTOCOL_VERSION`]. Not retryable on
    /// this connection; upgrade (or downgrade) the client.
    UnsupportedVersion,
    /// The addressed tenant's model is quarantined (its checkpoint failed
    /// to load and the per-tenant breaker is open). Retryable after the
    /// breaker cooldown; peers are unaffected.
    TenantQuarantined,
}

/// A typed error shipped back over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-actionable category.
    pub kind: WireErrorKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl WireError {
    /// An admission-control rejection.
    pub fn overloaded() -> Self {
        WireError {
            kind: WireErrorKind::Overloaded,
            detail: "request queue full".into(),
        }
    }

    /// A request the server refuses on its merits.
    pub fn bad_request(detail: impl Into<String>) -> Self {
        WireError {
            kind: WireErrorKind::BadRequest,
            detail: detail.into(),
        }
    }

    /// A server-side failure.
    pub fn internal(detail: impl Into<String>) -> Self {
        WireError {
            kind: WireErrorKind::Internal,
            detail: detail.into(),
        }
    }

    /// The drain-phase refusal.
    pub fn shutting_down() -> Self {
        WireError {
            kind: WireErrorKind::ShuttingDown,
            detail: "server is draining".into(),
        }
    }

    /// The version-negotiation refusal, naming the offending version and
    /// the window this build accepts.
    pub fn unsupported_version(found: u32) -> Self {
        WireError {
            kind: WireErrorKind::UnsupportedVersion,
            detail: format!(
                "frame version {found} outside supported \
                 {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"
            ),
        }
    }

    /// The bulkhead refusal for a quarantined tenant.
    pub fn tenant_quarantined(tenant: &str, reason: impl Into<String>) -> Self {
        WireError {
            kind: WireErrorKind::TenantQuarantined,
            detail: format!("tenant {tenant:?} quarantined: {}", reason.into()),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            WireErrorKind::Overloaded => "overloaded",
            WireErrorKind::BadRequest => "bad request",
            WireErrorKind::Internal => "internal",
            WireErrorKind::ShuttingDown => "shutting down",
            WireErrorKind::UnsupportedVersion => "unsupported version",
            WireErrorKind::TenantQuarantined => "tenant quarantined",
        };
        write!(f, "{kind}: {}", self.detail)
    }
}

/// Description of the model a server is holding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Checkpoint sequence the server started from (0 = fresh).
    pub checkpoint_seq: u64,
    /// Whether the model came from a checkpoint rather than a fresh load.
    pub warm_started: bool,
    /// Cue dimensionality `n` the model expects.
    pub cue_dim: usize,
    /// Number of context classes the classifier can emit.
    pub num_classes: usize,
    /// The quality filter's operating threshold.
    pub threshold: f64,
    /// Provenance note carried by the model.
    pub note: String,
}

/// Server load counters, as answered to [`Request::Health`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerHealth {
    /// Requests admitted into the queue.
    pub requests: u64,
    /// Cue rows successfully classified.
    pub rows_classified: u64,
    /// Requests turned away by admission control.
    pub rejected: u64,
    /// Admitted requests later evicted by [`DropOldest`].
    ///
    /// [`DropOldest`]: crate::queue::AdmissionPolicy::DropOldest
    pub shed: u64,
    /// Deepest the queue has been.
    pub queue_highwater: u64,
    /// Sessions that ended on a protocol or I/O error.
    pub session_errors: u64,
    /// Retried requests answered from the dedup window instead of being
    /// re-executed.
    pub dedup_hits: u64,
    /// Requests the server executed more than once. The exactly-once
    /// invariant is precisely "this stays 0"; the chaos soak asserts it.
    pub duplicate_executions: u64,
    /// Failsafe answers served from the last-good cache, flagged as
    /// [`Response::ClassifiedDegraded`] on the wire.
    pub degraded_served: u64,
    /// Current degradation-ladder state (`"healthy"`, `"degraded"`,
    /// `"failsafe"`, `"recovering"`), or `None` when no ladder is
    /// configured.
    pub ladder: Option<String>,
    /// Worker threads evaluating requests.
    pub workers: usize,
    /// Whether the server is draining toward shutdown.
    pub draining: bool,
    /// Tenants known to the registry (active + cold + quarantined).
    pub tenants: u64,
    /// Tenants currently quarantined.
    pub tenants_quarantined: u64,
    /// Models loaded from the checkpoint store (cold → active).
    pub warm_loads: u64,
    /// Active models evicted back to their checkpoints by the LRU.
    pub evictions: u64,
    /// Hot swaps that flipped a tenant's routing slot.
    pub swaps: u64,
    /// Hot swaps that failed validation and rolled back to last-good.
    pub swap_rollbacks: u64,
    /// Requests shed by a per-tenant admission budget (the global queue
    /// counters above are untouched by these).
    pub tenant_overloads: u64,
    /// Requests answered with [`WireErrorKind::TenantQuarantined`].
    pub quarantined_answers: u64,
    /// Connections refused for speaking an unsupported protocol version.
    pub version_rejections: u64,
}

/// Encode one message as a complete frame.
///
/// # Errors
///
/// * [`ServeError::Decode`] if the message does not serialize;
/// * [`ServeError::FrameTooLarge`] if the payload exceeds
///   [`MAX_FRAME_LEN`].
pub fn encode_frame<T: Serialize>(msg: &T) -> Result<Vec<u8>> {
    encode_frame_with_version(PROTOCOL_VERSION, msg)
}

/// Encode one message as a frame stamped with an explicit `version` — the
/// cross-version test surface (build the frames an older or newer peer
/// would send) and the version-rejection goodbye path (a goodbye stamped
/// with *our* version so the peer's own header check types the mismatch).
///
/// # Errors
///
/// Same conditions as [`encode_frame`].
pub fn encode_frame_with_version<T: Serialize>(version: u32, msg: &T) -> Result<Vec<u8>> {
    let payload = serde_json::to_string(msg).map_err(|e| ServeError::Decode(e.to_string()))?;
    let payload = payload.as_bytes();
    if payload.len() as u64 > u64::from(MAX_FRAME_LEN) {
        return Err(ServeError::FrameTooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_LEN),
        });
    }
    let len_le = (payload.len() as u32).to_le_bytes();
    let version_le = version.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&len_le);
    crc.update(&version_le);
    crc.update(payload);
    let mut bytes = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    bytes.extend_from_slice(&len_le);
    bytes.extend_from_slice(&version_le);
    bytes.extend_from_slice(&crc.finalize().to_le_bytes());
    bytes.extend_from_slice(payload);
    Ok(bytes)
}

/// Parse and sanity-check a frame header.
///
/// # Errors
///
/// * [`ServeError::FrameTooLarge`] on a length beyond [`MAX_FRAME_LEN`]
///   (rejected before any allocation);
/// * [`ServeError::ProtocolVersion`] on a frame outside
///   [`MIN_PROTOCOL_VERSION`]..=[`PROTOCOL_VERSION`], in either direction.
pub fn parse_header(bytes: &[u8; FRAME_HEADER_LEN]) -> Result<FrameHeader> {
    let payload_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if payload_len > MAX_FRAME_LEN {
        return Err(ServeError::FrameTooLarge {
            len: u64::from(payload_len),
            max: u64::from(MAX_FRAME_LEN),
        });
    }
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(ServeError::ProtocolVersion {
            found: version,
            supported: PROTOCOL_VERSION,
        });
    }
    Ok(FrameHeader {
        payload_len,
        version,
        crc,
    })
}

/// Verify the CRC and decode the payload.
///
/// # Errors
///
/// * [`ServeError::Protocol`] on CRC mismatch or non-UTF-8 payload;
/// * [`ServeError::Decode`] if the intact payload is not a `T`.
pub fn decode_payload<T: Deserialize>(header: &FrameHeader, payload: &[u8]) -> Result<T> {
    let mut crc = Crc32::new();
    crc.update(&header.payload_len.to_le_bytes());
    crc.update(&header.version.to_le_bytes());
    crc.update(payload);
    let actual = crc.finalize();
    if actual != header.crc {
        return Err(ServeError::Protocol(format!(
            "frame CRC mismatch (stored {:#010x}, computed {actual:#010x})",
            header.crc
        )));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| ServeError::Protocol(format!("frame payload not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| ServeError::Decode(e.to_string()))
}

/// Write one message as a frame and flush it.
///
/// # Errors
///
/// Same conditions as [`encode_frame`], plus [`ServeError::Io`] on the
/// socket write.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<()> {
    let bytes = encode_frame(msg)?;
    w.write_all(&bytes)
        .map_err(|e| ServeError::io("writing frame", &e))?;
    w.flush().map_err(|e| ServeError::io("flushing frame", &e))
}

/// Outcome of one read attempt.
#[derive(Debug)]
pub enum FrameRead<T> {
    /// A complete, CRC-verified, decoded frame.
    Frame(T),
    /// Clean EOF before any header byte: the peer hung up between frames.
    Eof,
    /// Read timeout before any header byte: nothing in flight. Only
    /// reachable on sockets with a read timeout configured.
    Idle,
}

/// How far a fill got.
enum Fill {
    Done,
    Eof { got: usize },
    Idle,
}

/// Read exactly `buf.len()` bytes, tolerating interrupts and bounded
/// mid-frame stalls. `started` says whether earlier bytes of this frame
/// were already consumed (a timeout then is a stall, not idleness).
///
/// `deadline` is the shared per-frame deadline: it is armed from `budget`
/// the moment the first byte of the frame has been consumed (never while
/// idling between frames) and then carried across the header and payload
/// fills, so a peer cannot reset the clock with one byte of progress.
fn fill<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    started: bool,
    budget: Option<Duration>,
    deadline: &mut Option<Instant>,
) -> Result<Fill> {
    let mut got = 0usize;
    let mut stalls = 0u32;
    while got < buf.len() {
        if started || got > 0 {
            if deadline.is_none() {
                *deadline = budget.map(|b| Instant::now() + b);
            }
            if let Some(d) = *deadline {
                if Instant::now() >= d {
                    return Err(ServeError::Protocol(
                        "torn frame: per-frame deadline exceeded mid-frame".into(),
                    ));
                }
            }
        }
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(Fill::Eof { got }),
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if got == 0 && !started {
                    return Ok(Fill::Idle);
                }
                stalls += 1;
                if stalls >= MAX_MID_FRAME_STALLS {
                    return Err(ServeError::Protocol(
                        "torn frame: peer stalled mid-frame".into(),
                    ));
                }
            }
            Err(e) => return Err(ServeError::io("reading frame", &e)),
        }
    }
    Ok(Fill::Done)
}

/// Read one frame, distinguishing idle and EOF from corruption.
///
/// Equivalent to [`read_frame_within`] with no frame deadline: the only
/// stall defense is the [`MAX_MID_FRAME_STALLS`] backstop.
///
/// # Errors
///
/// * [`ServeError::Protocol`] on a torn header or payload (EOF or a stall
///   mid-frame) and on CRC mismatch;
/// * [`ServeError::FrameTooLarge`] / [`ServeError::ProtocolVersion`] /
///   [`ServeError::Decode`] as for [`parse_header`] and
///   [`decode_payload`];
/// * [`ServeError::Io`] on any other socket failure.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<FrameRead<T>> {
    read_frame_within(r, None)
}

/// Read one frame with an overall per-frame deadline — the slow-loris
/// defense.
///
/// The clock starts when the first byte of a frame arrives (idling
/// between frames costs nothing) and covers the whole frame: header and
/// payload share one budget, and byte-at-a-time progress does **not**
/// reset it, unlike the stall counter. A peer that starts a frame and
/// cannot finish it within `budget` gets a typed torn-frame error.
///
/// `budget: None` disables the deadline and behaves as [`read_frame`].
///
/// # Errors
///
/// As [`read_frame`], plus [`ServeError::Protocol`] with a
/// "deadline exceeded" detail when the budget runs out mid-frame.
pub fn read_frame_within<R: Read, T: Deserialize>(
    r: &mut R,
    budget: Option<Duration>,
) -> Result<FrameRead<T>> {
    let mut deadline: Option<Instant> = None;
    let mut header_bytes = [0u8; FRAME_HEADER_LEN];
    match fill(r, &mut header_bytes, false, budget, &mut deadline)? {
        Fill::Done => {}
        Fill::Eof { got: 0 } => return Ok(FrameRead::Eof),
        Fill::Eof { got } => {
            return Err(ServeError::Protocol(format!(
                "torn frame: EOF after {got} of {FRAME_HEADER_LEN} header bytes"
            )));
        }
        Fill::Idle => return Ok(FrameRead::Idle),
    }
    let header = match parse_header(&header_bytes) {
        Ok(header) => header,
        Err(version_err @ ServeError::ProtocolVersion { .. }) => {
            // Drain the payload before surfacing the error, leaving the
            // stream at a frame boundary. Closing the socket with unread
            // bytes resets the connection, which can destroy the typed
            // `UnsupportedVersion` goodbye still in flight to the peer.
            // The length already passed the `MAX_FRAME_LEN` cap (checked
            // before the version), so the drain is bounded; a torn drain
            // changes nothing — the version error stands either way.
            let mut remaining = u32::from_le_bytes([
                header_bytes[0],
                header_bytes[1],
                header_bytes[2],
                header_bytes[3],
            ]) as usize;
            let mut scratch = [0u8; 4096];
            while remaining > 0 {
                let take = remaining.min(scratch.len());
                let (chunk, _) = scratch.split_at_mut(take);
                match fill(r, chunk, true, budget, &mut deadline) {
                    Ok(Fill::Done) => remaining -= take,
                    Ok(_) | Err(_) => break,
                }
            }
            return Err(version_err);
        }
        Err(other) => return Err(other),
    };
    let mut payload = vec![0u8; header.payload_len as usize];
    match fill(r, &mut payload, true, budget, &mut deadline)? {
        Fill::Done => {}
        Fill::Eof { got } => {
            return Err(ServeError::Protocol(format!(
                "torn frame: EOF after {got} of {} payload bytes",
                header.payload_len
            )));
        }
        // Unreachable with started=true, but typed rather than asserted.
        Fill::Idle => {
            return Err(ServeError::Protocol(
                "torn frame: peer stalled before payload".into(),
            ));
        }
    }
    Ok(FrameRead::Frame(decode_payload(&header, &payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn rid(request: u64) -> RequestId {
        RequestId {
            session: 11,
            request,
        }
    }

    fn request() -> Request {
        Request::ClassifyBatch {
            id: rid(1),
            tenant: Some("office-7".into()),
            rows: vec![vec![0.25, 1.0 / 3.0], vec![-7.5e-3, 42.0]],
        }
    }

    fn read_one<T: Deserialize>(bytes: &[u8]) -> Result<FrameRead<T>> {
        read_frame(&mut Cursor::new(bytes))
    }

    #[test]
    fn round_trip_preserves_floats_bit_exactly() {
        let bytes = encode_frame(&request()).unwrap();
        let back = match read_one::<Request>(&bytes).unwrap() {
            FrameRead::Frame(r) => r,
            other => panic!("expected frame, got {other:?}"),
        };
        let sent = request();
        let (
            Request::ClassifyBatch { id: ia, tenant: ta, rows: a },
            Request::ClassifyBatch { id: ib, tenant: tb, rows: b },
        ) = (&sent, &back)
        else {
            panic!("variant changed in transit: {back:?}");
        };
        assert_eq!(ia, ib);
        assert_eq!(ta, tb);
        for (ra, rb) in a.iter().zip(b.iter()) {
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn clean_eof_between_frames_is_not_an_error() {
        assert!(matches!(
            read_one::<Request>(&[]).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn every_truncation_is_torn_or_eof_never_a_panic() {
        let bytes = encode_frame(&request()).unwrap();
        for keep in 1..bytes.len() {
            let r = read_one::<Request>(&bytes[..keep]);
            assert!(
                r.is_err(),
                "truncation to {keep} of {} bytes went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_frame(&request()).unwrap();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x01;
            match read_one::<Request>(&corrupted) {
                Err(_) => {}
                Ok(FrameRead::Frame(back)) => {
                    panic!("byte {i} flip went undetected, decoded {back:?}")
                }
                Ok(other) => panic!("byte {i} flip read as {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = encode_frame(&Request::Health).unwrap();
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_one::<Request>(&bytes).unwrap_err();
        assert!(matches!(err, ServeError::FrameTooLarge { .. }), "{err}");
    }

    #[test]
    fn future_version_rejected() {
        // A frame claiming a future version with a valid CRC, so the
        // version check (not the CRC) is what rejects it.
        let bytes =
            encode_frame_with_version(PROTOCOL_VERSION + 1, &Request::Health).unwrap();
        let err = read_one::<Request>(&bytes).unwrap_err();
        assert!(
            matches!(err, ServeError::ProtocolVersion { found, .. } if found == PROTOCOL_VERSION + 1),
            "{err}"
        );
    }

    #[test]
    fn below_min_version_rejected() {
        // An old v2 peer's frame: valid CRC, version below the window.
        // Rejected at the header, not as a CRC failure or a hang.
        let bytes =
            encode_frame_with_version(MIN_PROTOCOL_VERSION - 1, &Request::Health).unwrap();
        let err = read_one::<Request>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::ProtocolVersion { found, supported }
                    if found == MIN_PROTOCOL_VERSION - 1 && supported == PROTOCOL_VERSION
            ),
            "{err}"
        );
    }

    #[test]
    fn explicit_current_version_is_identical_to_default_encode() {
        let a = encode_frame(&request()).unwrap();
        let b = encode_frame_with_version(PROTOCOL_VERSION, &request()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wrong_type_payload_is_decode_error_not_panic() {
        let bytes = encode_frame(&Response::ShuttingDown).unwrap();
        let err = read_one::<Request>(&bytes).unwrap_err();
        assert!(matches!(err, ServeError::Decode(_)), "{err}");
    }

    #[test]
    fn back_to_back_frames_stream() {
        let mut bytes = encode_frame(&Request::Health).unwrap();
        bytes.extend_from_slice(&encode_frame(&Request::Snapshot).unwrap());
        let mut cursor = Cursor::new(&bytes[..]);
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            FrameRead::Frame(Request::Health)
        ));
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            FrameRead::Frame(Request::Snapshot)
        ));
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversized_message_refused_at_encode_time() {
        let rows = vec![vec![1.0 / 3.0; 1 << 16]; 16];
        let req = Request::ClassifyBatch {
            id: rid(9),
            tenant: None,
            rows,
        };
        // ~1M floats at ~19 JSON chars each ≈ 20 MB, past the 16 MiB cap.
        assert!(matches!(
            encode_frame(&req),
            Err(ServeError::FrameTooLarge { .. })
        ));
    }

    /// Yields one byte per read call, sleeping `delay` before each — a
    /// slow-loris peer that always makes progress (so the stall counter
    /// never fires) but never finishes in time.
    struct Trickle {
        bytes: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            std::thread::sleep(self.delay);
            if self.pos >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_deadline_cuts_off_a_byte_at_a_time_trickler() {
        let mut trickle = Trickle {
            bytes: encode_frame(&request()).unwrap(),
            pos: 0,
            delay: Duration::from_millis(5),
        };
        let err = read_frame_within::<_, Request>(&mut trickle, Some(Duration::from_millis(25)))
            .unwrap_err();
        assert!(
            matches!(&err, ServeError::Protocol(msg) if msg.contains("deadline")),
            "expected a deadline error, got {err}"
        );
        // Progress was made (the deadline, not the first read, cut it off)
        // but the frame never completed.
        assert!(trickle.pos > 0 && trickle.pos < trickle.bytes.len());
    }

    #[test]
    fn frame_deadline_does_not_fire_on_a_frame_that_fits_the_budget() {
        let mut trickle = Trickle {
            bytes: encode_frame(&Request::Health).unwrap(),
            pos: 0,
            delay: Duration::from_millis(0),
        };
        let got = read_frame_within::<_, Request>(&mut trickle, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(matches!(got, FrameRead::Frame(Request::Health)));
    }
}
