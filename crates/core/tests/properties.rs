//! Property-based tests for the CQM core layer.

use cqm_core::filter::{Decision, QualityFilter};
use cqm_core::fusion::{fuse, ContextReport, FusionRule};
use cqm_core::normalize::{normalize, Quality};
use cqm_core::prediction::TrendPredictor;
use cqm_core::ClassId;
use proptest::prelude::*;

proptest! {
    #[test]
    fn normalize_range_invariant(x in -100.0f64..100.0) {
        match normalize(x) {
            Quality::Value(v) => {
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!((-0.5..=1.5).contains(&x));
            }
            Quality::Epsilon => prop_assert!(!(-0.5..=1.5).contains(&x)),
        }
    }

    #[test]
    fn normalize_mirror_symmetry(x in 0.0f64..0.5) {
        // L(-x) == L(x) on the lower mirror; L(1+x) == L(1-x) on the upper
        // (up to rounding: 2-(1+x) and 1-x differ by an ulp).
        prop_assert_eq!(normalize(-x), normalize(x));
        let hi = normalize(1.0 + x).value().unwrap();
        let lo = normalize(1.0 - x).value().unwrap();
        prop_assert!((hi - lo).abs() < 1e-12);
    }

    #[test]
    fn normalize_idempotent_on_valid_values(x in 0.0f64..=1.0) {
        // Values already in [0,1] pass through unchanged, so L ∘ L = L.
        let once = normalize(x);
        if let Quality::Value(v) = once {
            prop_assert_eq!(normalize(v), once);
        }
    }

    #[test]
    fn filter_monotone_in_quality(s in 0.0f64..=1.0, q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        // If a lower quality is accepted, any higher quality must be too.
        let f = QualityFilter::new(s).unwrap();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        if f.decide(Quality::Value(lo)) == Decision::Accept {
            prop_assert_eq!(f.decide(Quality::Value(hi)), Decision::Accept);
        }
        // ε is never accepted, at any threshold.
        prop_assert_eq!(f.decide(Quality::Epsilon), Decision::Discard);
    }

    #[test]
    fn filter_outcome_accounting_conserves_samples(
        s in 0.0f64..=1.0,
        qs in prop::collection::vec((0.0f64..=1.0, any::<bool>()), 1..50),
    ) {
        let f = QualityFilter::new(s).unwrap();
        let samples: Vec<(Quality, bool)> = qs
            .iter()
            .map(|&(q, r)| (Quality::Value(q), r))
            .collect();
        let outcome = f.evaluate(&samples);
        prop_assert_eq!(outcome.total() as usize, samples.len());
        prop_assert!(outcome.discard_rate() >= 0.0 && outcome.discard_rate() <= 1.0);
    }

    #[test]
    fn fusion_winner_has_max_mass(
        reports in prop::collection::vec((0usize..4, 0.01f64..=1.0), 1..12),
    ) {
        let reports: Vec<ContextReport> = reports
            .into_iter()
            .enumerate()
            .map(|(i, (class, q))| ContextReport {
                source: format!("s{i}"),
                class: ClassId(class),
                quality: Quality::Value(q),
            })
            .collect();
        let fused = fuse(&reports, FusionRule::WeightedSum).unwrap();
        let winner_mass = fused.mass[&fused.class];
        for m in fused.mass.values() {
            prop_assert!(winner_mass >= *m - 1e-12);
        }
        prop_assert!(fused.confidence > 0.0 && fused.confidence <= 1.0);
    }

    #[test]
    fn fusion_scale_invariant_winner(
        reports in prop::collection::vec((0usize..3, 0.1f64..=1.0), 2..8),
        scale in 0.1f64..1.0,
    ) {
        // Scaling all qualities by the same factor must not change the
        // weighted-sum winner.
        let mk = |s: f64| -> Vec<ContextReport> {
            reports
                .iter()
                .enumerate()
                .map(|(i, &(class, q))| ContextReport {
                    source: format!("s{i}"),
                    class: ClassId(class),
                    quality: Quality::Value(q * s),
                })
                .collect()
        };
        let a = fuse(&mk(1.0), FusionRule::WeightedSum).unwrap();
        let b = fuse(&mk(scale), FusionRule::WeightedSum).unwrap();
        prop_assert_eq!(a.class, b.class);
    }

    #[test]
    fn trend_predictor_never_panics_on_arbitrary_streams(
        stream in prop::collection::vec((0usize..3, -0.2f64..1.2, any::<bool>()), 0..60),
    ) {
        let mut p = TrendPredictor::new(4, 0.02).unwrap();
        for (class, q, eps) in stream {
            let quality = if eps { Quality::Epsilon } else { Quality::Value(q.clamp(0.0, 1.0)) };
            let _ = p.observe(ClassId(class), quality);
        }
        // Reaching here without panic is the property.
    }
}
