//! The normalization function `L` (§2.1.3).
//!
//! The automatically constructed TSK-FIS `S~_Q` targets 0 (wrong) and 1
//! (right) but is not range-restricted; its output scatters around those
//! designated values. `L` folds the overshoot back into `[0, 1]`:
//!
//! ```text
//!        ⎧  x      if 0 ≤ x ≤ 1
//! L(x) = ⎨ −x      if −0.5 ≤ x < 0      (mirror at 0)
//!        ⎪ 2 − x   if 1 < x ≤ 1.5       (mirror at 1)
//!        ⎩  ε      otherwise
//! ```
//!
//! The mirrored reading reconstructs the two clauses whose minus signs were
//! lost in the published text; it is the only reading that satisfies the
//! paper's stated semantics ("it belongs to zero/one with an error of
//! mapping") while keeping `L`'s range inside `[0, 1]`. Values further than
//! 0.5 from both designated outputs have no semantically correct image and
//! map to the error state ε.

use serde::{Deserialize, Serialize};

/// A normalized quality measure: a value in `[0, 1]` or the error state ε.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Quality {
    /// A valid quality value `q ∈ [0, 1]`: 0 ≈ certainly wrong,
    /// 1 ≈ certainly right.
    Value(f64),
    /// The error state ε: the raw FIS output was outside `[−0.5, 1.5]`, so
    /// no semantically correct quality exists. Consumers must treat this as
    /// "discard the classification".
    Epsilon,
}

impl Quality {
    /// The contained value, if any.
    pub fn value(&self) -> Option<f64> {
        match self {
            Quality::Value(v) => Some(*v),
            Quality::Epsilon => None,
        }
    }

    /// Whether this is the error state.
    pub fn is_epsilon(&self) -> bool {
        matches!(self, Quality::Epsilon)
    }

    /// The value, or `default` for ε. Useful for conservative consumers
    /// that treat ε as zero quality.
    // lint: allow(ASSERT_DENSITY) -- the default is the caller's substitute for eps; any f64 is acceptable by design
    pub fn value_or(&self, default: f64) -> f64 {
        self.value().unwrap_or(default)
    }
}

impl std::fmt::Display for Quality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Quality::Value(v) => write!(f, "q={v:.4}"),
            Quality::Epsilon => write!(f, "q=eps"),
        }
    }
}

/// The normalization function `L: ℝ → [0, 1] ∪ {ε}` exactly per §2.1.3
/// (with the reconstructed mirror clauses — see module docs).
pub fn normalize(x: f64) -> Quality {
    let q = if x.is_nan() {
        Quality::Epsilon
    } else if (0.0..=1.0).contains(&x) {
        Quality::Value(x)
    } else if (-0.5..0.0).contains(&x) {
        Quality::Value(-x)
    } else if x > 1.0 && x <= 1.5 {
        Quality::Value(2.0 - x)
    } else {
        Quality::Epsilon
    };
    if cfg!(feature = "strict-math") {
        debug_assert!(
            q.value().map_or(true, |v| (0.0..=1.0).contains(&v)),
            "L-normalization left [0, 1]: L({x}) = {q}"
        );
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_on_unit_interval() {
        for &x in &[0.0, 0.25, 0.5, 0.81, 1.0] {
            assert_eq!(normalize(x), Quality::Value(x));
        }
    }

    #[test]
    fn mirror_below_zero() {
        assert_eq!(normalize(-0.2), Quality::Value(0.2));
        assert_eq!(normalize(-0.5), Quality::Value(0.5));
        // Just below -0.5: error state.
        assert_eq!(normalize(-0.5000001), Quality::Epsilon);
    }

    #[test]
    fn mirror_above_one() {
        assert_eq!(normalize(1.2), Quality::Value(0.8));
        assert_eq!(normalize(1.5), Quality::Value(0.5));
        assert_eq!(normalize(1.5000001), Quality::Epsilon);
    }

    #[test]
    fn epsilon_far_out() {
        assert_eq!(normalize(7.0), Quality::Epsilon);
        assert_eq!(normalize(-3.0), Quality::Epsilon);
        assert_eq!(normalize(f64::INFINITY), Quality::Epsilon);
        assert_eq!(normalize(f64::NEG_INFINITY), Quality::Epsilon);
        assert_eq!(normalize(f64::NAN), Quality::Epsilon);
    }

    #[test]
    fn range_is_unit_interval() {
        // Sweep the whole valid domain: every non-epsilon output is in
        // [0, 1].
        let mut x = -0.5;
        while x <= 1.5 {
            match normalize(x) {
                Quality::Value(v) => assert!((0.0..=1.0).contains(&v), "x={x} v={v}"),
                Quality::Epsilon => panic!("unexpected epsilon at {x}"),
            }
            x += 0.001;
        }
    }

    #[test]
    fn continuity_at_seams() {
        // L is continuous at 0 and 1 (mirror folds meet the identity).
        let eps = 1e-9;
        let at = |x: f64| normalize(x).value().unwrap();
        assert!((at(-eps) - at(eps)).abs() < 1e-8);
        assert!((at(1.0 - eps) - at(1.0 + eps)).abs() < 1e-8);
    }

    #[test]
    fn semantics_of_mirrors() {
        // "belongs to zero with an error of mapping": small overshoot below
        // zero stays a low quality value.
        assert!(normalize(-0.1).value().unwrap() < 0.2);
        // "belongs to one with an error": small overshoot above one stays a
        // high quality value.
        assert!(normalize(1.1).value().unwrap() > 0.8);
    }

    #[test]
    fn quality_accessors() {
        assert_eq!(Quality::Value(0.4).value(), Some(0.4));
        assert_eq!(Quality::Epsilon.value(), None);
        assert!(Quality::Epsilon.is_epsilon());
        assert!(!Quality::Value(0.0).is_epsilon());
        assert_eq!(Quality::Epsilon.value_or(0.0), 0.0);
        assert_eq!(Quality::Value(0.7).value_or(0.0), 0.7);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Quality::Value(0.5).to_string(), "q=0.5000");
        assert_eq!(Quality::Epsilon.to_string(), "q=eps");
    }

    #[test]
    fn quality_serde_round_trip() {
        for q in [Quality::Value(0.81), Quality::Epsilon] {
            let json = serde_json::to_string(&q).unwrap();
            let back: Quality = serde_json::from_str(&json).unwrap();
            assert_eq!(q, back);
        }
    }
}
