//! The black-box classifier abstraction (§2: "The context system considers
//! the recognition algorithm as a black box. This way the design is
//! applicable to all recognition algorithms.").

use serde::{Deserialize, Serialize};

use crate::{CqmError, Result};

/// Identifier of a context class (`c` in the paper). The CQM appends this —
/// as a plain numeric value — to the cue vector when forming `v_Q`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClassId(pub usize);

impl ClassId {
    /// Numeric value used as the `(n+1)`-th FIS input.
    pub fn as_f64(&self) -> f64 {
        self.0 as f64
    }
}

impl From<usize> for ClassId {
    fn from(v: usize) -> Self {
        ClassId(v)
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A black-box context classifier: cue vector in, context class out.
///
/// Implementations live in `cqm-classify` (TSK-FIS classifier, k-NN,
/// nearest centroid) and in user code; the CQM layer never inspects the
/// internals — it only combines the classifier's inputs and output into
/// `v_Q = (v_1, …, v_n, c)` (§2.1.1).
pub trait Classifier: Send + Sync {
    /// Classify one cue vector.
    ///
    /// # Errors
    ///
    /// Implementations should return [`CqmError::InvalidInput`] for
    /// mis-dimensioned or non-finite cues, and may fail on inputs outside
    /// their competence region.
    fn classify(&self, cues: &[f64]) -> Result<ClassId>;

    /// Expected cue dimensionality `n`.
    fn cue_dim(&self) -> usize;

    /// Number of context classes the classifier can emit.
    fn num_classes(&self) -> usize;

    /// Validate a cue vector against this classifier's expectations.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] on dimension mismatch or
    /// non-finite values.
    fn check_cues(&self, cues: &[f64]) -> Result<()> {
        if cues.len() != self.cue_dim() {
            return Err(CqmError::InvalidInput(format!(
                "cue vector has {} entries, classifier expects {}",
                cues.len(),
                self.cue_dim()
            )));
        }
        if cues.iter().any(|x| !x.is_finite()) {
            return Err(CqmError::InvalidInput(
                "cue vector contains non-finite values".into(),
            ));
        }
        Ok(())
    }
}

/// Blanket implementation so `Box<dyn Classifier>` is itself a classifier.
impl<T: Classifier + ?Sized> Classifier for Box<T> {
    fn classify(&self, cues: &[f64]) -> Result<ClassId> {
        (**self).classify(cues)
    }

    fn cue_dim(&self) -> usize {
        (**self).cue_dim()
    }

    fn num_classes(&self) -> usize {
        (**self).num_classes()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Deterministic 1-D test classifier: class 1 iff `cue[0] > boundary`.
    pub struct BoundaryClassifier {
        pub boundary: f64,
    }

    impl Classifier for BoundaryClassifier {
        fn classify(&self, cues: &[f64]) -> Result<ClassId> {
            self.check_cues(cues)?;
            Ok(ClassId(usize::from(cues[0] > self.boundary)))
        }

        fn cue_dim(&self) -> usize {
            1
        }

        fn num_classes(&self) -> usize {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::BoundaryClassifier;
    use super::*;

    #[test]
    fn class_id_conversions() {
        let c: ClassId = 3.into();
        assert_eq!(c.as_f64(), 3.0);
        assert_eq!(c.to_string(), "class#3");
        assert_eq!(ClassId::default(), ClassId(0));
    }

    #[test]
    fn check_cues_validates() {
        let c = BoundaryClassifier { boundary: 0.5 };
        assert!(c.check_cues(&[0.3]).is_ok());
        assert!(c.check_cues(&[0.3, 0.4]).is_err());
        assert!(c.check_cues(&[f64::NAN]).is_err());
    }

    #[test]
    fn boxed_classifier_delegates() {
        let boxed: Box<dyn Classifier> = Box::new(BoundaryClassifier { boundary: 0.5 });
        assert_eq!(boxed.cue_dim(), 1);
        assert_eq!(boxed.num_classes(), 2);
        assert_eq!(boxed.classify(&[0.9]).unwrap(), ClassId(1));
        assert_eq!(boxed.classify(&[0.1]).unwrap(), ClassId(0));
    }

    #[test]
    fn class_id_serde() {
        let json = serde_json::to_string(&ClassId(2)).unwrap();
        let back: ClassId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ClassId(2));
    }
}
