//! Online quality monitoring (extension of the §5 outlook).
//!
//! A deployed CQM was trained against one sensing environment; if the
//! environment drifts (new users, sensor aging, re-mounted node), the
//! quality statistics drift with it. [`QualityMonitor`] tracks the running
//! acceptance rate and mean quality over a sliding window and compares them
//! against the training-time expectations, flagging when retraining is due —
//! the operational counterpart of the paper's "we are in the process of
//! integrating the context system to other appliances and testing".

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::filter::Decision;
use crate::normalize::Quality;
use crate::{CqmError, Result};

/// Expected operating statistics captured at training time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingProfile {
    /// Expected acceptance rate (fraction of classifications above the
    /// threshold) on in-distribution data.
    pub accept_rate: f64,
    /// Expected mean quality of non-ε measures.
    pub mean_quality: f64,
}

impl OperatingProfile {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] for values outside `[0, 1]`.
    pub fn new(accept_rate: f64, mean_quality: f64) -> Result<Self> {
        for (name, v) in [("accept_rate", accept_rate), ("mean_quality", mean_quality)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CqmError::InvalidInput(format!("{name} {v} outside [0, 1]")));
            }
        }
        Ok(OperatingProfile {
            accept_rate,
            mean_quality,
        })
    }

    /// Derive the profile from a trained CQM's own analysis samples.
    pub fn from_trained(trained: &crate::training::TrainedCqm) -> Self {
        let threshold = trained.threshold.value;
        let mut accepts = 0usize;
        let mut total = 0usize;
        let mut q_sum = 0.0;
        let mut q_count = 0usize;
        for s in &trained.analysis_samples {
            total += 1;
            if let Some(q) = s.quality.value() {
                q_sum += q;
                q_count += 1;
                if q > threshold {
                    accepts += 1;
                }
            }
        }
        OperatingProfile {
            accept_rate: if total > 0 {
                accepts as f64 / total as f64
            } else {
                0.0
            },
            mean_quality: if q_count > 0 {
                q_sum / q_count as f64
            } else {
                0.0
            },
        }
    }
}

/// Verdict of the monitor after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MonitorStatus {
    /// Not enough observations yet.
    Warmup,
    /// Statistics within tolerance of the operating profile.
    Healthy,
    /// Statistics drifted beyond tolerance: the model should be retrained
    /// or the sensor checked. Payload: observed (accept rate, mean quality).
    Drifted {
        /// Windowed acceptance rate.
        accept_rate: f64,
        /// Windowed mean quality (non-ε).
        mean_quality: f64,
    },
}

/// Sliding-window drift monitor over `(quality, decision)` observations.
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    profile: OperatingProfile,
    window: usize,
    tolerance: f64,
    history: VecDeque<(Option<f64>, bool)>,
}

impl QualityMonitor {
    /// Create a monitor with the given window length and absolute tolerance
    /// on both tracked statistics.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] if `window < 8` or the tolerance
    /// is not in `(0, 1)`.
    pub fn new(profile: OperatingProfile, window: usize, tolerance: f64) -> Result<Self> {
        if window < 8 {
            return Err(CqmError::InvalidInput(format!(
                "monitor window {window} too small (need >= 8)"
            )));
        }
        if !(tolerance > 0.0 && tolerance < 1.0) {
            return Err(CqmError::InvalidInput(format!(
                "tolerance {tolerance} outside (0, 1)"
            )));
        }
        Ok(QualityMonitor {
            profile,
            window,
            tolerance,
            history: VecDeque::new(),
        })
    }

    /// Feed one runtime observation and get the current verdict.
    pub fn observe(&mut self, quality: Quality, decision: Decision) -> MonitorStatus {
        self.history
            .push_back((quality.value(), decision.is_accept()));
        while self.history.len() > self.window {
            self.history.pop_front();
        }
        if self.history.len() < self.window {
            return MonitorStatus::Warmup;
        }
        let accepts = self.history.iter().filter(|(_, a)| *a).count();
        let accept_rate = accepts as f64 / self.history.len() as f64;
        let qs: Vec<f64> = self.history.iter().filter_map(|(q, _)| *q).collect();
        let mean_quality = if qs.is_empty() {
            0.0
        } else {
            qs.iter().sum::<f64>() / qs.len() as f64
        };
        let drifted = (accept_rate - self.profile.accept_rate).abs() > self.tolerance
            || (mean_quality - self.profile.mean_quality).abs() > self.tolerance;
        if drifted {
            MonitorStatus::Drifted {
                accept_rate,
                mean_quality,
            }
        } else {
            MonitorStatus::Healthy
        }
    }

    /// Forget all observations (e.g. after a model swap).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// Capture the monitor's full state for persistence.
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            profile: self.profile,
            window: self.window,
            tolerance: self.tolerance,
            history: self.history.iter().copied().collect(),
        }
    }

    /// Rebuild a monitor from a persisted snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] if the snapshot's window or
    /// tolerance are out of domain (same rules as [`QualityMonitor::new`]).
    pub fn from_snapshot(snap: &MonitorSnapshot) -> Result<Self> {
        let mut m = QualityMonitor::new(snap.profile, snap.window, snap.tolerance)?;
        // Keep at most `window` trailing observations, matching observe().
        let skip = snap.history.len().saturating_sub(snap.window);
        m.history = snap.history.iter().skip(skip).copied().collect();
        Ok(m)
    }
}

/// Serializable snapshot of a [`QualityMonitor`] (profile, knobs, and the
/// sliding observation window) for crash-safe persistence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// The training-time operating profile.
    pub profile: OperatingProfile,
    /// Sliding-window length.
    pub window: usize,
    /// Absolute drift tolerance.
    pub tolerance: f64,
    /// Observations, oldest first: `(quality value or None for eps, accepted)`.
    pub history: Vec<(Option<f64>, bool)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> QualityMonitor {
        QualityMonitor::new(
            OperatingProfile::new(0.8, 0.85).unwrap(),
            10,
            0.15,
        )
        .unwrap()
    }

    fn accept(q: f64) -> (Quality, Decision) {
        (Quality::Value(q), Decision::Accept)
    }

    fn discard(q: f64) -> (Quality, Decision) {
        (Quality::Value(q), Decision::Discard)
    }

    #[test]
    fn construction_validation() {
        assert!(OperatingProfile::new(1.5, 0.5).is_err());
        assert!(OperatingProfile::new(0.5, -0.1).is_err());
        let p = OperatingProfile::new(0.8, 0.85).unwrap();
        assert!(QualityMonitor::new(p, 4, 0.1).is_err());
        assert!(QualityMonitor::new(p, 10, 0.0).is_err());
        assert!(QualityMonitor::new(p, 10, 1.0).is_err());
    }

    #[test]
    fn healthy_stream_stays_healthy() {
        let mut m = monitor();
        let mut last = MonitorStatus::Warmup;
        for i in 0..20 {
            let (q, d) = if i % 5 == 4 {
                discard(0.5)
            } else {
                accept(0.93)
            };
            last = m.observe(q, d);
        }
        assert_eq!(last, MonitorStatus::Healthy);
    }

    #[test]
    fn collapsed_acceptance_flags_drift() {
        let mut m = monitor();
        let mut last = MonitorStatus::Warmup;
        for _ in 0..12 {
            last = m.observe(Quality::Value(0.3), Decision::Discard);
        }
        match last {
            MonitorStatus::Drifted {
                accept_rate,
                mean_quality,
            } => {
                assert_eq!(accept_rate, 0.0);
                assert!(mean_quality < 0.5);
            }
            other => panic!("expected drift, got {other:?}"),
        }
    }

    #[test]
    fn warmup_until_window_full() {
        let mut m = monitor();
        for _ in 0..9 {
            assert_eq!(m.observe(accept(0.9).0, accept(0.9).1), MonitorStatus::Warmup);
        }
        assert_ne!(
            m.observe(accept(0.9).0, accept(0.9).1),
            MonitorStatus::Warmup
        );
    }

    #[test]
    fn epsilon_heavy_stream_drifts() {
        // ε carries no quality value; an ε flood craters the accept rate.
        let mut m = monitor();
        let mut last = MonitorStatus::Warmup;
        for _ in 0..12 {
            last = m.observe(Quality::Epsilon, Decision::Discard);
        }
        assert!(matches!(last, MonitorStatus::Drifted { .. }));
    }

    #[test]
    fn reset_returns_to_warmup() {
        let mut m = monitor();
        for _ in 0..12 {
            m.observe(accept(0.9).0, accept(0.9).1);
        }
        m.reset();
        assert_eq!(
            m.observe(accept(0.9).0, accept(0.9).1),
            MonitorStatus::Warmup
        );
    }

    #[test]
    fn drift_reset_then_rehealthy() {
        // The full recovery path: a drifted monitor is reset (model swap /
        // recalibration), re-warms, and reports Healthy again on good data.
        let mut m = monitor();
        let mut last = MonitorStatus::Warmup;
        for _ in 0..12 {
            last = m.observe(Quality::Value(0.2), Decision::Discard);
        }
        assert!(matches!(last, MonitorStatus::Drifted { .. }));
        m.reset();
        // After reset: warmup for window-1 observations, then Healthy —
        // never Drifted, because the bad history is gone. The healthy
        // stream matches the profile: 4 accepts to 1 discard (rate 0.8).
        let profile_stream = |i: usize| {
            if i % 5 == 4 {
                discard(0.8)
            } else {
                accept(0.9)
            }
        };
        for i in 0..9 {
            let (q, d) = profile_stream(i);
            assert_eq!(
                m.observe(q, d),
                MonitorStatus::Warmup,
                "observation {i} after reset"
            );
        }
        for i in 9..20 {
            let (q, d) = profile_stream(i);
            assert_eq!(m.observe(q, d), MonitorStatus::Healthy);
        }
    }

    #[test]
    fn drift_clears_without_reset_once_window_rolls_over() {
        // Recovery also happens organically: once the sliding window is
        // fully repopulated with healthy observations the verdict flips
        // back, no reset required.
        let mut m = monitor();
        for _ in 0..12 {
            m.observe(Quality::Value(0.2), Decision::Discard);
        }
        let mut last = MonitorStatus::Warmup;
        for i in 0..10 {
            let (q, d) = if i % 5 == 4 { discard(0.8) } else { accept(0.9) };
            last = m.observe(q, d);
        }
        assert_eq!(last, MonitorStatus::Healthy);
    }

    #[test]
    fn exactly_at_tolerance_does_not_flap() {
        // The drift predicate is strict (`> tolerance`): a stream whose
        // statistics sit exactly on the tolerance boundary stays Healthy on
        // every observation — no Healthy/Drifted oscillation. All values
        // chosen exactly representable in binary (0.75, 0.5, 0.25) so the
        // boundary really is the boundary.
        //
        // Profile accept_rate 0.75, all accepts → |Δ rate| = 0.25 = tol.
        // Profile mean_quality 0.75, all q = 0.5 → |Δ mean| = 0.25 = tol.
        let profile = OperatingProfile::new(0.75, 0.75).unwrap();
        let mut m = QualityMonitor::new(profile, 8, 0.25).unwrap();
        let mut verdicts = Vec::new();
        for _ in 0..32 {
            verdicts.push(m.observe(Quality::Value(0.5), Decision::Accept));
        }
        // Post-warmup, every verdict is Healthy: exactly-at-tolerance is
        // inside the healthy band, on every single observation.
        for (i, v) in verdicts.iter().enumerate().skip(7) {
            assert_eq!(*v, MonitorStatus::Healthy, "flapped at observation {i}");
        }
        // One hair past the tolerance does drift.
        let mut m2 = QualityMonitor::new(profile, 8, 0.25).unwrap();
        let mut last = MonitorStatus::Warmup;
        for _ in 0..8 {
            last = m2.observe(Quality::Value(0.499), Decision::Accept);
        }
        assert!(
            matches!(last, MonitorStatus::Drifted { .. }),
            "0.001 past tolerance must drift, got {last:?}"
        );
    }

    #[test]
    fn profile_from_trained_cqm() {
        use crate::classifier::test_support::BoundaryClassifier;
        use crate::classifier::ClassId;
        use crate::training::{train_cqm, CqmTrainingConfig};
        let cues: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 199.0]).collect();
        let truth: Vec<ClassId> = cues
            .iter()
            .map(|c| ClassId(usize::from(c[0] > 0.45)))
            .collect();
        let trained = train_cqm(
            &BoundaryClassifier { boundary: 0.5 },
            &cues,
            &truth,
            &CqmTrainingConfig::fast(),
        )
        .unwrap();
        let profile = OperatingProfile::from_trained(&trained);
        assert!((0.0..=1.0).contains(&profile.accept_rate));
        assert!((0.0..=1.0).contains(&profile.mean_quality));
        assert!(profile.mean_quality > 0.3, "{profile:?}");
    }
}
