//! Quality-weighted fusion of context reports (§5 outlook).
//!
//! "Higher level context processors require a measure to decide which of the
//! simpler context information to believe." Given several appliances'
//! `(class, quality)` reports about the same situation, the fuser
//! accumulates quality mass per class and emits the winner together with a
//! fused confidence.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::classifier::ClassId;
use crate::normalize::Quality;
use crate::{CqmError, Result};

/// One context report from a source appliance.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextReport {
    /// Name of the reporting appliance (for diagnostics).
    pub source: String,
    /// Reported context class.
    pub class: ClassId,
    /// Quality attached by the source's CQM.
    pub quality: Quality,
}

/// Result of fusing several reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedContext {
    /// Winning class.
    pub class: ClassId,
    /// Fused confidence: winner's quality mass over total mass, in `[0,1]`.
    pub confidence: f64,
    /// Quality mass accumulated per class.
    pub mass: BTreeMap<ClassId, f64>,
    /// Number of reports that carried ε and were excluded.
    pub epsilon_reports: usize,
}

/// Strategy for combining per-class quality masses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FusionRule {
    /// Sum of quality values per class (default).
    #[default]
    WeightedSum,
    /// Maximum quality per class (a single confident source can win).
    MaxQuality,
}

/// Fuse reports into a single context decision.
///
/// Reports with ε quality are excluded from the vote (they carry no
/// semantically valid measure) but counted in the result.
///
/// # Errors
///
/// Returns [`CqmError::InvalidInput`] if no report carries a usable quality
/// value — the fuser cannot decide on ε-only input.
pub fn fuse(reports: &[ContextReport], rule: FusionRule) -> Result<FusedContext> {
    let mut mass: BTreeMap<ClassId, f64> = BTreeMap::new();
    let mut epsilon_reports = 0usize;
    for r in reports {
        match r.quality {
            Quality::Value(q) => {
                let entry = mass.entry(r.class).or_insert(0.0);
                match rule {
                    FusionRule::WeightedSum => *entry += q,
                    FusionRule::MaxQuality => *entry = entry.max(q),
                }
            }
            Quality::Epsilon => epsilon_reports += 1,
        }
    }
    let total: f64 = mass.values().sum();
    let winner = mass
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(c, m)| (*c, *m));
    match winner {
        Some((class, m)) if total > 0.0 => Ok(FusedContext {
            class,
            confidence: m / total,
            mass,
            epsilon_reports,
        }),
        _ => Err(CqmError::InvalidInput(
            "no report carries a usable quality value".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(source: &str, class: usize, quality: Quality) -> ContextReport {
        ContextReport {
            source: source.into(),
            class: ClassId(class),
            quality,
        }
    }

    #[test]
    fn unanimous_reports_full_confidence() {
        let reports = vec![
            report("pen", 1, Quality::Value(0.9)),
            report("cup", 1, Quality::Value(0.8)),
        ];
        let fused = fuse(&reports, FusionRule::WeightedSum).unwrap();
        assert_eq!(fused.class, ClassId(1));
        assert!((fused.confidence - 1.0).abs() < 1e-12);
        assert_eq!(fused.epsilon_reports, 0);
    }

    #[test]
    fn quality_outvotes_count() {
        // Two low-quality votes for class 0 vs one high-quality for class 1.
        let reports = vec![
            report("a", 0, Quality::Value(0.2)),
            report("b", 0, Quality::Value(0.25)),
            report("c", 1, Quality::Value(0.95)),
        ];
        let fused = fuse(&reports, FusionRule::WeightedSum).unwrap();
        assert_eq!(fused.class, ClassId(1));
        assert!(fused.confidence > 0.6);
    }

    #[test]
    fn max_rule_lets_single_confident_source_win() {
        let reports = vec![
            report("a", 0, Quality::Value(0.5)),
            report("b", 0, Quality::Value(0.5)),
            report("c", 1, Quality::Value(0.9)),
        ];
        // Weighted sum: class 0 wins (1.0 vs 0.9).
        assert_eq!(
            fuse(&reports, FusionRule::WeightedSum).unwrap().class,
            ClassId(0)
        );
        // Max: class 1 wins (0.9 vs 0.5).
        assert_eq!(
            fuse(&reports, FusionRule::MaxQuality).unwrap().class,
            ClassId(1)
        );
    }

    #[test]
    fn epsilon_reports_excluded_but_counted() {
        let reports = vec![
            report("a", 0, Quality::Epsilon),
            report("b", 1, Quality::Value(0.6)),
        ];
        let fused = fuse(&reports, FusionRule::WeightedSum).unwrap();
        assert_eq!(fused.class, ClassId(1));
        assert_eq!(fused.epsilon_reports, 1);
    }

    #[test]
    fn epsilon_only_input_rejected() {
        let reports = vec![report("a", 0, Quality::Epsilon)];
        assert!(fuse(&reports, FusionRule::WeightedSum).is_err());
        assert!(fuse(&[], FusionRule::WeightedSum).is_err());
    }

    #[test]
    fn mass_bookkeeping() {
        let reports = vec![
            report("a", 0, Quality::Value(0.3)),
            report("b", 1, Quality::Value(0.4)),
            report("c", 0, Quality::Value(0.2)),
        ];
        let fused = fuse(&reports, FusionRule::WeightedSum).unwrap();
        assert!((fused.mass[&ClassId(0)] - 0.5).abs() < 1e-12);
        assert!((fused.mass[&ClassId(1)] - 0.4).abs() < 1e-12);
        assert_eq!(fused.class, ClassId(0));
        assert!((fused.confidence - 0.5 / 0.9).abs() < 1e-12);
    }
}
