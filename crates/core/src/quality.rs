//! The quality measure `S_Q = L ∘ S~_Q` (§2.1.2–2.1.3).
//!
//! `S~_Q` is a first-order TSK FIS over the joint vector
//! `v_Q = (v_1, …, v_n, c)`; `L` folds its unbounded output into
//! `[0, 1] ∪ {ε}`. Evaluation is a handful of Gaussian evaluations and a
//! weighted average — microseconds on any hardware, which is what makes the
//! measure "real-time" in the paper's sense (benchmarked in `cqm-bench`).

use serde::{Deserialize, Serialize};

use cqm_fuzzy::{TskFis, TskKernel, TskScratch};

use crate::classifier::ClassId;
use crate::normalize::{normalize, Quality};
use crate::{CqmError, Result};

/// A trained quality measure: the TSK FIS `S~_Q` plus the normalization `L`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityMeasure {
    fis: TskFis,
}

impl QualityMeasure {
    /// Wrap a trained FIS. Its input dimension must be `cue_dim + 1` (the
    /// cues plus the class identifier).
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] if the FIS has fewer than 2
    /// inputs (the paper requires `n > 1` for the cue vector alone).
    pub fn new(fis: TskFis) -> Result<Self> {
        if fis.input_dim() < 2 {
            return Err(CqmError::InvalidInput(format!(
                "quality FIS needs >= 2 inputs (cues + class), got {}",
                fis.input_dim()
            )));
        }
        Ok(QualityMeasure { fis })
    }

    /// Cue dimensionality `n` (FIS inputs minus the class input).
    pub fn cue_dim(&self) -> usize {
        self.fis.input_dim() - 1
    }

    /// The underlying FIS (for inspection/verbalization).
    pub fn fis(&self) -> &TskFis {
        &self.fis
    }

    /// Assemble the joint vector `v_Q = (v_C, c)` (§2.1.1).
    pub fn joint_input(&self, cues: &[f64], class: ClassId) -> Vec<f64> {
        if cfg!(feature = "strict-math") {
            debug_assert!(
                cues.len() == self.cue_dim(),
                "joint_input: {} cues, measure expects {}",
                cues.len(),
                self.cue_dim()
            );
        }
        let mut v = Vec::with_capacity(cues.len() + 1);
        v.extend_from_slice(cues);
        v.push(class.as_f64());
        v
    }

    /// Raw (non-normalized) FIS output `S~_Q(v_Q)`.
    ///
    /// # Errors
    ///
    /// * [`CqmError::InvalidInput`] on dimension mismatch or non-finite
    ///   cues.
    /// * [`CqmError::Fuzzy`] if no rule fires (input far outside the
    ///   training support).
    pub fn raw(&self, cues: &[f64], class: ClassId) -> Result<f64> {
        if cues.len() != self.cue_dim() {
            return Err(CqmError::InvalidInput(format!(
                "cue vector has {} entries, quality measure expects {}",
                cues.len(),
                self.cue_dim()
            )));
        }
        if cues.iter().any(|x| !x.is_finite()) {
            return Err(CqmError::InvalidInput(
                "cue vector contains non-finite values".into(),
            ));
        }
        let v = self.joint_input(cues, class);
        Ok(self.fis.eval(&v)?)
    }

    /// The Context Quality Measure `q = L(S~_Q(v_Q))`.
    ///
    /// Inputs on which the FIS cannot fire any rule yield ε rather than an
    /// error: at runtime an appliance must always get *a* quality verdict,
    /// and "no rule covers this situation" is exactly what ε means.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] on malformed cues (those are
    /// caller bugs, not runtime conditions).
    pub fn measure(&self, cues: &[f64], class: ClassId) -> Result<Quality> {
        let q = match self.raw(cues, class) {
            Ok(raw) => normalize(raw),
            Err(CqmError::Fuzzy(cqm_fuzzy::FuzzyError::NoRuleFired)) => Quality::Epsilon,
            Err(e) => return Err(e),
        };
        if cfg!(feature = "strict-math") {
            debug_assert!(
                q.value().map_or(true, |v| (0.0..=1.0).contains(&v)),
                "quality left [0, 1] union eps: {q}"
            );
        }
        Ok(q)
    }

    /// Build the allocation-free runtime evaluator for this measure (see
    /// [`QualityKernel`]). The kernel snapshots the FIS: retraining requires
    /// rebuilding it.
    pub fn kernel(&self) -> QualityKernel {
        QualityKernel {
            kernel: self.fis.kernel(),
            cue_dim: self.cue_dim(),
        }
    }
}

/// Reusable evaluation scratch for [`QualityKernel`]: the joint input buffer
/// plus the FIS firing buffer. One instance per thread of control.
#[derive(Debug, Clone, Default)]
pub struct QualityScratch {
    joint: Vec<f64>,
    fis: TskScratch,
}

impl QualityScratch {
    /// An empty scratch (sizes itself on first evaluation).
    pub fn new() -> Self {
        QualityScratch::default()
    }
}

/// Flat runtime evaluator of a [`QualityMeasure`]: the struct-of-arrays TSK
/// kernel plus the cue dimensionality. With a caller-provided
/// [`QualityScratch`], [`QualityKernel::measure_into`] evaluates the CQM
/// with zero steady-state heap allocations and results bit-identical to
/// [`QualityMeasure::measure`].
#[derive(Debug, Clone)]
pub struct QualityKernel {
    kernel: TskKernel,
    cue_dim: usize,
}

impl QualityKernel {
    /// Cue dimensionality `n`.
    pub fn cue_dim(&self) -> usize {
        self.cue_dim
    }

    /// Allocation-free [`QualityMeasure::raw`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`QualityMeasure::raw`].
    pub fn raw_into(
        &self,
        cues: &[f64],
        class: ClassId,
        scratch: &mut QualityScratch,
    ) -> Result<f64> {
        if cues.len() != self.cue_dim {
            return Err(CqmError::InvalidInput(format!(
                "cue vector has {} entries, quality measure expects {}",
                cues.len(),
                self.cue_dim
            )));
        }
        if cues.iter().any(|x| !x.is_finite()) {
            return Err(CqmError::InvalidInput(
                "cue vector contains non-finite values".into(),
            ));
        }
        scratch.joint.clear();
        scratch.joint.reserve(cues.len() + 1);
        scratch.joint.extend_from_slice(cues);
        scratch.joint.push(class.as_f64());
        Ok(self.kernel.eval_into(&scratch.joint, &mut scratch.fis)?)
    }

    /// Allocation-free [`QualityMeasure::measure`] — bit-identical output,
    /// same ε mapping for uncovered inputs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QualityMeasure::measure`].
    pub fn measure_into(
        &self,
        cues: &[f64],
        class: ClassId,
        scratch: &mut QualityScratch,
    ) -> Result<Quality> {
        let q = match self.raw_into(cues, class, scratch) {
            Ok(raw) => normalize(raw),
            Err(CqmError::Fuzzy(cqm_fuzzy::FuzzyError::NoRuleFired)) => Quality::Epsilon,
            Err(e) => return Err(e),
        };
        if cfg!(feature = "strict-math") {
            debug_assert!(
                q.value().map_or(true, |v| (0.0..=1.0).contains(&v)),
                "quality left [0, 1] union eps: {q}"
            );
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_fuzzy::{MembershipFunction, TskRule};

    /// Hand-built quality FIS over (cue, class): outputs ~1 when the cue
    /// agrees with the class (cue near class value), ~0 otherwise.
    fn agreement_fis() -> TskFis {
        let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).unwrap();
        TskFis::new(vec![
            // cue near 0, class 0 -> right (1)
            TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).unwrap(),
            // cue near 1, class 1 -> right (1)
            TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).unwrap(),
            // cue near 0, class 1 -> wrong (0)
            TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).unwrap(),
            // cue near 1, class 0 -> wrong (0)
            TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_dimension() {
        let one_input = TskFis::new(vec![TskRule::new(
            vec![MembershipFunction::gaussian(0.0, 1.0).unwrap()],
            vec![0.0, 0.0],
        )
        .unwrap()])
        .unwrap();
        assert!(QualityMeasure::new(one_input).is_err());
        assert!(QualityMeasure::new(agreement_fis()).is_ok());
    }

    #[test]
    fn joint_input_appends_class() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        assert_eq!(qm.cue_dim(), 1);
        assert_eq!(qm.joint_input(&[0.3], ClassId(1)), vec![0.3, 1.0]);
    }

    #[test]
    fn agreement_scores_high_disagreement_low() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        let right = qm.measure(&[0.05], ClassId(0)).unwrap().value().unwrap();
        let wrong = qm.measure(&[0.05], ClassId(1)).unwrap().value().unwrap();
        assert!(right > 0.9, "right-looking got q={right}");
        assert!(wrong < 0.1, "wrong-looking got q={wrong}");
    }

    #[test]
    fn measure_is_normalized() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        let mut x = 0.0;
        while x <= 1.0 {
            for c in 0..2 {
                if let Quality::Value(v) = qm.measure(&[x], ClassId(c)).unwrap() {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
            x += 0.05;
        }
    }

    #[test]
    fn uncovered_input_yields_epsilon_not_error() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        let q = qm.measure(&[1.0e5], ClassId(0)).unwrap();
        assert!(q.is_epsilon());
    }

    #[test]
    fn malformed_cues_are_errors() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        assert!(qm.measure(&[0.1, 0.2], ClassId(0)).is_err());
        assert!(qm.measure(&[f64::NAN], ClassId(0)).is_err());
        assert!(qm.raw(&[], ClassId(0)).is_err());
    }

    #[test]
    fn raw_and_measure_consistent() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        let raw = qm.raw(&[0.4], ClassId(0)).unwrap();
        let q = qm.measure(&[0.4], ClassId(0)).unwrap();
        assert_eq!(q, crate::normalize::normalize(raw));
    }

    #[test]
    fn serde_round_trip() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        let json = serde_json::to_string(&qm).unwrap();
        let back: QualityMeasure = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.measure(&[0.2], ClassId(0)).unwrap(),
            qm.measure(&[0.2], ClassId(0)).unwrap()
        );
    }

    #[test]
    fn kernel_matches_measure_bitwise() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        let kernel = qm.kernel();
        assert_eq!(kernel.cue_dim(), qm.cue_dim());
        let mut scratch = QualityScratch::new();
        let mut x = -0.2;
        while x <= 1.2 {
            for c in 0..2 {
                let a = qm.measure(&[x], ClassId(c)).unwrap();
                let b = kernel.measure_into(&[x], ClassId(c), &mut scratch).unwrap();
                match (a, b) {
                    (Quality::Value(va), Quality::Value(vb)) => {
                        assert_eq!(va.to_bits(), vb.to_bits(), "x={x} c={c}")
                    }
                    (qa, qb) => assert_eq!(qa, qb, "x={x} c={c}"),
                }
                let ra = qm.raw(&[x], ClassId(c)).unwrap();
                let rb = kernel.raw_into(&[x], ClassId(c), &mut scratch).unwrap();
                assert_eq!(ra.to_bits(), rb.to_bits(), "raw x={x} c={c}");
            }
            x += 0.05;
        }
    }

    #[test]
    fn kernel_error_and_epsilon_parity() {
        let qm = QualityMeasure::new(agreement_fis()).unwrap();
        let kernel = qm.kernel();
        let mut scratch = QualityScratch::new();
        // Uncovered input: ε, not an error — like the measure.
        assert!(kernel
            .measure_into(&[1.0e5], ClassId(0), &mut scratch)
            .unwrap()
            .is_epsilon());
        // Malformed cues stay errors.
        assert!(kernel
            .measure_into(&[0.1, 0.2], ClassId(0), &mut scratch)
            .is_err());
        assert!(kernel
            .measure_into(&[f64::NAN], ClassId(0), &mut scratch)
            .is_err());
    }
}
