//! Threshold-based acceptance filtering — the mechanism behind the paper's
//! headline result: "the appliance can discard 33% of the classifications,
//! which equals all wrong contextual classifications, when using the
//! measure" (§3.2).

use serde::{Deserialize, Serialize};

use cqm_stats::confusion::FilterOutcome;

use crate::normalize::Quality;
use crate::{CqmError, Result};

/// Accept/discard decision for one classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Quality above the threshold: the classification may be acted on.
    Accept,
    /// Quality at/below the threshold or ε: the classification should be
    /// ignored by the consuming application.
    Discard,
}

impl Decision {
    /// Whether this is [`Decision::Accept`].
    pub fn is_accept(&self) -> bool {
        matches!(self, Decision::Accept)
    }
}

/// A quality filter with a fixed threshold `s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityFilter {
    threshold: f64,
}

impl QualityFilter {
    /// Create a filter with threshold `s ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] for a threshold outside `[0, 1]`.
    pub fn new(threshold: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&threshold) {
            return Err(CqmError::InvalidInput(format!(
                "threshold {threshold} outside [0, 1]"
            )));
        }
        Ok(QualityFilter { threshold })
    }

    /// The threshold `s`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Decide on one quality value: accept iff `q > s`. The ε state is
    /// always discarded — it signals that no semantically valid measure
    /// exists (§2.1.3).
    pub fn decide(&self, quality: Quality) -> Decision {
        match quality {
            Quality::Value(q) if q > self.threshold => Decision::Accept,
            _ => Decision::Discard,
        }
    }

    /// Evaluate the filter over labeled quality samples, producing the
    /// accounting needed for the improvement experiments.
    pub fn evaluate<'a, I>(&self, samples: I) -> FilterOutcome
    where
        I: IntoIterator<Item = &'a (Quality, bool)>,
    {
        let mut outcome = FilterOutcome::default();
        for &(quality, was_right) in samples {
            match (self.decide(quality), quality, was_right) {
                (_, Quality::Epsilon, _) => outcome.epsilon += 1,
                (Decision::Accept, _, true) => outcome.accepted_right += 1,
                (Decision::Accept, _, false) => outcome.accepted_wrong += 1,
                (Decision::Discard, _, true) => outcome.discarded_right += 1,
                (Decision::Discard, _, false) => outcome.discarded_wrong += 1,
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(QualityFilter::new(0.81).is_ok());
        assert!(QualityFilter::new(0.0).is_ok());
        assert!(QualityFilter::new(1.0).is_ok());
        assert!(QualityFilter::new(-0.1).is_err());
        assert!(QualityFilter::new(1.1).is_err());
        assert!(QualityFilter::new(f64::NAN).is_err());
    }

    #[test]
    fn decisions_strictly_above_threshold() {
        let f = QualityFilter::new(0.81).unwrap();
        assert_eq!(f.decide(Quality::Value(0.9)), Decision::Accept);
        assert_eq!(f.decide(Quality::Value(0.81)), Decision::Discard); // not strictly above
        assert_eq!(f.decide(Quality::Value(0.5)), Decision::Discard);
        assert_eq!(f.decide(Quality::Epsilon), Decision::Discard);
        assert!(f.decide(Quality::Value(0.99)).is_accept());
    }

    #[test]
    fn evaluate_paper_scenario() {
        // 16 right with high q, 8 wrong with low q; s = 0.81 separates.
        let f = QualityFilter::new(0.81).unwrap();
        let mut samples = Vec::new();
        for i in 0..16 {
            samples.push((Quality::Value(0.9 + 0.005 * i as f64), true));
        }
        for i in 0..8 {
            samples.push((Quality::Value(0.1 + 0.05 * i as f64), false));
        }
        let outcome = f.evaluate(&samples);
        assert_eq!(outcome.accepted_right, 16);
        assert_eq!(outcome.discarded_wrong, 8);
        assert_eq!(outcome.accepted_wrong, 0);
        assert_eq!(outcome.discarded_right, 0);
        assert!((outcome.discard_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((outcome.accuracy_after() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_counted_separately() {
        let f = QualityFilter::new(0.5).unwrap();
        let samples = vec![
            (Quality::Epsilon, true),
            (Quality::Epsilon, false),
            (Quality::Value(0.9), true),
        ];
        let outcome = f.evaluate(&samples);
        assert_eq!(outcome.epsilon, 2);
        assert_eq!(outcome.accepted_right, 1);
        assert_eq!(outcome.total(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let f = QualityFilter::new(0.81).unwrap();
        let json = serde_json::to_string(&f).unwrap();
        let back: QualityFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(back.threshold(), 0.81);
    }
}
