//! Runtime composition: classifier ⊕ quality measure ⊕ filter (Fig. 2/4).
//!
//! "Each time the contextual classification gets a new input v_C, the
//! classification result is combined with this vector in a new vector v_Q"
//! (§2.1.1) — [`CqmSystem::classify_with_quality`] performs exactly that
//! interconnection on every sample.

use cqm_parallel::WorkerPool;
use serde::{Deserialize, Serialize};

use crate::classifier::{ClassId, Classifier};
use crate::filter::{Decision, QualityFilter};
use crate::normalize::Quality;
use crate::quality::{QualityKernel, QualityMeasure, QualityScratch};
use crate::training::TrainedCqm;
use crate::{CqmError, Result};

/// Cue vectors per parallel work item in [`CqmSystem::classify_batch_with`].
/// Rows are independent, so any chunking yields identical results; this only
/// balances scheduling granularity against dispatch overhead.
const CLASSIFY_CHUNK: usize = 64;

/// A context classification annotated with its quality and filter decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualifiedClassification {
    /// The class the black box emitted.
    pub class: ClassId,
    /// The CQM value for this classification.
    pub quality: Quality,
    /// The filter's verdict at the configured threshold.
    pub decision: Decision,
}

/// The complete runtime system: black-box classifier, quality FIS and
/// threshold filter.
#[derive(Debug, Clone)]
pub struct CqmSystem<C> {
    classifier: C,
    measure: QualityMeasure,
    filter: QualityFilter,
}

impl<C: Classifier> CqmSystem<C> {
    /// Compose a system from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] if the measure's cue dimension
    /// does not match the classifier's.
    pub fn new(classifier: C, measure: QualityMeasure, filter: QualityFilter) -> Result<Self> {
        if measure.cue_dim() != classifier.cue_dim() {
            return Err(CqmError::InvalidInput(format!(
                "quality measure expects {} cues, classifier produces {}",
                measure.cue_dim(),
                classifier.cue_dim()
            )));
        }
        Ok(CqmSystem {
            classifier,
            measure,
            filter,
        })
    }

    /// Compose a system from a classifier and a training result, using the
    /// trained optimal threshold.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmSystem::new`], plus an invalid trained
    /// threshold.
    pub fn from_trained(classifier: C, trained: &TrainedCqm) -> Result<Self> {
        let filter = QualityFilter::new(trained.threshold.value.clamp(0.0, 1.0))?;
        CqmSystem::new(classifier, trained.measure.clone(), filter)
    }

    /// The black-box classifier.
    pub fn classifier(&self) -> &C {
        &self.classifier
    }

    /// The quality measure.
    pub fn measure(&self) -> &QualityMeasure {
        &self.measure
    }

    /// The filter.
    pub fn filter(&self) -> &QualityFilter {
        &self.filter
    }

    /// Classify one cue vector and annotate the result with its CQM and the
    /// accept/discard decision.
    ///
    /// # Errors
    ///
    /// * [`CqmError::InvalidInput`] on malformed cues.
    /// * Errors from the black-box classifier itself.
    // lint: allow(ASSERT_DENSITY) -- cue validation lives in QualityMeasure::raw, which rejects bad input via Result
    pub fn classify_with_quality(&self, cues: &[f64]) -> Result<QualifiedClassification> {
        let class = self.classifier.classify(cues)?;
        let quality = self.measure.measure(cues, class)?;
        Ok(QualifiedClassification {
            class,
            quality,
            decision: self.filter.decide(quality),
        })
    }

    /// Classify a batch; propagates the first error.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmSystem::classify_with_quality`].
    // lint: allow(ASSERT_DENSITY) -- delegates row-wise to classify_with_quality, which validates via Result
    pub fn classify_batch(&self, batch: &[Vec<f64>]) -> Result<Vec<QualifiedClassification>> {
        batch.iter().map(|c| self.classify_with_quality(c)).collect()
    }

    /// Build the allocation-free quality evaluator for this system's
    /// measure (see [`QualityKernel`]).
    pub fn quality_kernel(&self) -> QualityKernel {
        self.measure.kernel()
    }

    /// [`CqmSystem::classify_with_quality`] through a prebuilt
    /// [`QualityKernel`] and caller-provided scratch: the quality evaluation
    /// allocates nothing in the steady state and the result is bit-identical
    /// to the plain path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmSystem::classify_with_quality`].
    // lint: allow(ASSERT_DENSITY) -- cue validation lives in QualityKernel::raw_into, which rejects bad input via Result
    pub fn classify_with_quality_into(
        &self,
        cues: &[f64],
        kernel: &QualityKernel,
        scratch: &mut QualityScratch,
    ) -> Result<QualifiedClassification> {
        let class = self.classifier.classify(cues)?;
        let quality = kernel.measure_into(cues, class, scratch)?;
        Ok(QualifiedClassification {
            class,
            quality,
            decision: self.filter.decide(quality),
        })
    }

    /// Classify a batch on a worker pool. Rows are independent, so the
    /// outputs are bit-identical to [`CqmSystem::classify_batch`] at any
    /// thread count; the error propagated is always the first by row index.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmSystem::classify_with_quality`].
    // lint: allow(ASSERT_DENSITY) -- delegates row-wise to classify_with_quality_into, which validates via Result
    pub fn classify_batch_with(
        &self,
        batch: &[Vec<f64>],
        pool: &WorkerPool,
    ) -> Result<Vec<QualifiedClassification>>
    where
        C: Sync,
    {
        let kernel = self.quality_kernel();
        let parts = pool.run_chunks(batch.len(), CLASSIFY_CHUNK, |chunk| {
            let mut scratch = QualityScratch::new();
            let mut out = Vec::with_capacity(chunk.len());
            for cues in &batch[chunk.start..chunk.end] {
                out.push(self.classify_with_quality_into(cues, &kernel, &mut scratch));
            }
            out
        });
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_support::BoundaryClassifier;
    use crate::training::{train_cqm, CqmTrainingConfig};

    fn trained_system() -> CqmSystem<BoundaryClassifier> {
        let cues: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 299.0]).collect();
        let truth: Vec<ClassId> = cues
            .iter()
            .map(|c| ClassId(usize::from(c[0] > 0.45)))
            .collect();
        let clf = BoundaryClassifier { boundary: 0.5 };
        let trained = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        CqmSystem::from_trained(BoundaryClassifier { boundary: 0.5 }, &trained).unwrap()
    }

    #[test]
    fn qualified_classification_fields_coherent() {
        let sys = trained_system();
        let q = sys.classify_with_quality(&[0.9]).unwrap();
        assert_eq!(q.class, ClassId(1));
        match q.quality {
            Quality::Value(v) => assert!((0.0..=1.0).contains(&v)),
            Quality::Epsilon => {}
        }
        assert_eq!(q.decision, sys.filter().decide(q.quality));
    }

    #[test]
    fn confident_region_accepted_ambiguous_discarded_more() {
        let sys = trained_system();
        // Far from the boundary: almost always accepted.
        let far: Vec<Vec<f64>> = (0..20).map(|i| vec![0.9 + 0.005 * i as f64]).collect();
        let far_accepts = sys
            .classify_batch(&far)
            .unwrap()
            .iter()
            .filter(|q| q.decision.is_accept())
            .count();
        // Inside the ambiguity band 0.45..0.5: mostly discarded.
        let band: Vec<Vec<f64>> = (0..20).map(|i| vec![0.452 + 0.002 * i as f64]).collect();
        let band_accepts = sys
            .classify_batch(&band)
            .unwrap()
            .iter()
            .filter(|q| q.decision.is_accept())
            .count();
        assert!(
            far_accepts > band_accepts,
            "far {far_accepts}/20 vs band {band_accepts}/20"
        );
    }

    #[test]
    fn dimension_mismatch_rejected_at_composition() {
        let sys = trained_system();
        let measure = sys.measure().clone();
        // A classifier with a different cue dimension cannot be composed.
        struct TwoCue;
        impl Classifier for TwoCue {
            fn classify(&self, _c: &[f64]) -> Result<ClassId> {
                Ok(ClassId(0))
            }
            fn cue_dim(&self) -> usize {
                2
            }
            fn num_classes(&self) -> usize {
                2
            }
        }
        assert!(CqmSystem::new(TwoCue, measure, QualityFilter::new(0.5).unwrap()).is_err());
    }

    #[test]
    fn malformed_cues_propagate() {
        let sys = trained_system();
        assert!(sys.classify_with_quality(&[0.1, 0.2]).is_err());
        assert!(sys.classify_with_quality(&[f64::NAN]).is_err());
    }

    #[test]
    fn accessors() {
        let sys = trained_system();
        assert_eq!(sys.classifier().cue_dim(), 1);
        assert_eq!(sys.measure().cue_dim(), 1);
        assert!(sys.filter().threshold() >= 0.0);
    }

    #[test]
    fn batch_with_pool_matches_serial_batch() {
        let sys = trained_system();
        let batch: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 149.0]).collect();
        let reference = sys.classify_batch(&batch).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let got = sys
                .classify_batch_with(&batch, &WorkerPool::new(threads))
                .unwrap();
            assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.class, b.class, "threads={threads}");
                assert_eq!(a.decision, b.decision, "threads={threads}");
                match (a.quality, b.quality) {
                    (Quality::Value(va), Quality::Value(vb)) => {
                        assert_eq!(va.to_bits(), vb.to_bits(), "threads={threads}")
                    }
                    (qa, qb) => assert_eq!(qa, qb, "threads={threads}"),
                }
            }
        }
    }

    #[test]
    fn kernel_path_matches_plain_path() {
        let sys = trained_system();
        let kernel = sys.quality_kernel();
        let mut scratch = crate::quality::QualityScratch::new();
        for i in 0..50 {
            let cues = vec![i as f64 / 49.0];
            let a = sys.classify_with_quality(&cues).unwrap();
            let b = sys
                .classify_with_quality_into(&cues, &kernel, &mut scratch)
                .unwrap();
            assert_eq!(a, b);
        }
    }
}
