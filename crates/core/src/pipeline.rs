//! Runtime composition: classifier ⊕ quality measure ⊕ filter (Fig. 2/4).
//!
//! "Each time the contextual classification gets a new input v_C, the
//! classification result is combined with this vector in a new vector v_Q"
//! (§2.1.1) — [`CqmSystem::classify_with_quality`] performs exactly that
//! interconnection on every sample.

use serde::{Deserialize, Serialize};

use crate::classifier::{ClassId, Classifier};
use crate::filter::{Decision, QualityFilter};
use crate::normalize::Quality;
use crate::quality::QualityMeasure;
use crate::training::TrainedCqm;
use crate::{CqmError, Result};

/// A context classification annotated with its quality and filter decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualifiedClassification {
    /// The class the black box emitted.
    pub class: ClassId,
    /// The CQM value for this classification.
    pub quality: Quality,
    /// The filter's verdict at the configured threshold.
    pub decision: Decision,
}

/// The complete runtime system: black-box classifier, quality FIS and
/// threshold filter.
#[derive(Debug, Clone)]
pub struct CqmSystem<C> {
    classifier: C,
    measure: QualityMeasure,
    filter: QualityFilter,
}

impl<C: Classifier> CqmSystem<C> {
    /// Compose a system from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] if the measure's cue dimension
    /// does not match the classifier's.
    pub fn new(classifier: C, measure: QualityMeasure, filter: QualityFilter) -> Result<Self> {
        if measure.cue_dim() != classifier.cue_dim() {
            return Err(CqmError::InvalidInput(format!(
                "quality measure expects {} cues, classifier produces {}",
                measure.cue_dim(),
                classifier.cue_dim()
            )));
        }
        Ok(CqmSystem {
            classifier,
            measure,
            filter,
        })
    }

    /// Compose a system from a classifier and a training result, using the
    /// trained optimal threshold.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmSystem::new`], plus an invalid trained
    /// threshold.
    pub fn from_trained(classifier: C, trained: &TrainedCqm) -> Result<Self> {
        let filter = QualityFilter::new(trained.threshold.value.clamp(0.0, 1.0))?;
        CqmSystem::new(classifier, trained.measure.clone(), filter)
    }

    /// The black-box classifier.
    pub fn classifier(&self) -> &C {
        &self.classifier
    }

    /// The quality measure.
    pub fn measure(&self) -> &QualityMeasure {
        &self.measure
    }

    /// The filter.
    pub fn filter(&self) -> &QualityFilter {
        &self.filter
    }

    /// Classify one cue vector and annotate the result with its CQM and the
    /// accept/discard decision.
    ///
    /// # Errors
    ///
    /// * [`CqmError::InvalidInput`] on malformed cues.
    /// * Errors from the black-box classifier itself.
    // lint: allow(ASSERT_DENSITY) -- cue validation lives in QualityMeasure::raw, which rejects bad input via Result
    pub fn classify_with_quality(&self, cues: &[f64]) -> Result<QualifiedClassification> {
        let class = self.classifier.classify(cues)?;
        let quality = self.measure.measure(cues, class)?;
        Ok(QualifiedClassification {
            class,
            quality,
            decision: self.filter.decide(quality),
        })
    }

    /// Classify a batch; propagates the first error.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CqmSystem::classify_with_quality`].
    // lint: allow(ASSERT_DENSITY) -- delegates row-wise to classify_with_quality, which validates via Result
    pub fn classify_batch(&self, batch: &[Vec<f64>]) -> Result<Vec<QualifiedClassification>> {
        batch.iter().map(|c| self.classify_with_quality(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_support::BoundaryClassifier;
    use crate::training::{train_cqm, CqmTrainingConfig};

    fn trained_system() -> CqmSystem<BoundaryClassifier> {
        let cues: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 299.0]).collect();
        let truth: Vec<ClassId> = cues
            .iter()
            .map(|c| ClassId(usize::from(c[0] > 0.45)))
            .collect();
        let clf = BoundaryClassifier { boundary: 0.5 };
        let trained = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        CqmSystem::from_trained(BoundaryClassifier { boundary: 0.5 }, &trained).unwrap()
    }

    #[test]
    fn qualified_classification_fields_coherent() {
        let sys = trained_system();
        let q = sys.classify_with_quality(&[0.9]).unwrap();
        assert_eq!(q.class, ClassId(1));
        match q.quality {
            Quality::Value(v) => assert!((0.0..=1.0).contains(&v)),
            Quality::Epsilon => {}
        }
        assert_eq!(q.decision, sys.filter().decide(q.quality));
    }

    #[test]
    fn confident_region_accepted_ambiguous_discarded_more() {
        let sys = trained_system();
        // Far from the boundary: almost always accepted.
        let far: Vec<Vec<f64>> = (0..20).map(|i| vec![0.9 + 0.005 * i as f64]).collect();
        let far_accepts = sys
            .classify_batch(&far)
            .unwrap()
            .iter()
            .filter(|q| q.decision.is_accept())
            .count();
        // Inside the ambiguity band 0.45..0.5: mostly discarded.
        let band: Vec<Vec<f64>> = (0..20).map(|i| vec![0.452 + 0.002 * i as f64]).collect();
        let band_accepts = sys
            .classify_batch(&band)
            .unwrap()
            .iter()
            .filter(|q| q.decision.is_accept())
            .count();
        assert!(
            far_accepts > band_accepts,
            "far {far_accepts}/20 vs band {band_accepts}/20"
        );
    }

    #[test]
    fn dimension_mismatch_rejected_at_composition() {
        let sys = trained_system();
        let measure = sys.measure().clone();
        // A classifier with a different cue dimension cannot be composed.
        struct TwoCue;
        impl Classifier for TwoCue {
            fn classify(&self, _c: &[f64]) -> Result<ClassId> {
                Ok(ClassId(0))
            }
            fn cue_dim(&self) -> usize {
                2
            }
            fn num_classes(&self) -> usize {
                2
            }
        }
        assert!(CqmSystem::new(TwoCue, measure, QualityFilter::new(0.5).unwrap()).is_err());
    }

    #[test]
    fn malformed_cues_propagate() {
        let sys = trained_system();
        assert!(sys.classify_with_quality(&[0.1, 0.2]).is_err());
        assert!(sys.classify_with_quality(&[f64::NAN]).is_err());
    }

    #[test]
    fn accessors() {
        let sys = trained_system();
        assert_eq!(sys.classifier().cue_dim(), 1);
        assert_eq!(sys.measure().cue_dim(), 1);
        assert!(sys.filter().threshold() >= 0.0);
    }
}
