//! Quality-trend context prediction (§5 outlook).
//!
//! "The measure can i.e. indicate that a context classification changes in
//! direction to another context": while the emitted class is still stable,
//! a consistently *falling* quality means the sensor situation is drifting
//! out of the class's competence region — a transition is likely imminent.
//! [`TrendPredictor`] watches the `(class, quality)` stream and raises a
//! [`PredictionHint`] when that pattern appears.

use std::collections::VecDeque;

use crate::classifier::ClassId;
use crate::normalize::Quality;
use crate::{CqmError, Result};

/// A prediction emitted by the trend watcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictionHint {
    /// Quality stable/high: current context expected to continue.
    Stable,
    /// Quality falling over the window while the class is unchanged: a
    /// context change is likely. The payload is the per-step quality slope
    /// (negative).
    TransitionLikely {
        /// Average quality change per observation (negative).
        slope: f64,
    },
    /// Not enough observations yet.
    Warmup,
}

/// Sliding-window watcher over `(class, quality)` observations.
#[derive(Debug, Clone)]
pub struct TrendPredictor {
    window: usize,
    slope_threshold: f64,
    history: VecDeque<(ClassId, f64)>,
}

impl TrendPredictor {
    /// Create a watcher with the given window length and slope threshold
    /// (a transition is signalled when the fitted quality slope is below
    /// `−slope_threshold` per step and the class did not change within the
    /// window).
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] if `window < 3` or the threshold
    /// is not positive.
    pub fn new(window: usize, slope_threshold: f64) -> Result<Self> {
        if window < 3 {
            return Err(CqmError::InvalidInput(format!(
                "trend window must be >= 3, got {window}"
            )));
        }
        if !(slope_threshold > 0.0 && slope_threshold.is_finite()) {
            return Err(CqmError::InvalidInput(format!(
                "slope threshold {slope_threshold} must be positive"
            )));
        }
        Ok(TrendPredictor {
            window,
            slope_threshold,
            history: VecDeque::new(),
        })
    }

    /// Feed one observation and get the current hint. Observations with ε
    /// quality reset the window — after an ε the measure has no valid
    /// trajectory to extrapolate.
    pub fn observe(&mut self, class: ClassId, quality: Quality) -> PredictionHint {
        let q = match quality {
            Quality::Value(v) => v,
            Quality::Epsilon => {
                self.history.clear();
                return PredictionHint::Warmup;
            }
        };
        // A class change also resets the trend: the transition happened.
        if let Some(&(last_class, _)) = self.history.back() {
            if last_class != class {
                self.history.clear();
            }
        }
        self.history.push_back((class, q));
        while self.history.len() > self.window {
            self.history.pop_front();
        }
        if self.history.len() < self.window {
            return PredictionHint::Warmup;
        }
        // Least-squares slope of quality over the window.
        let n = self.history.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mean_y: f64 = self.history.iter().map(|(_, q)| q).sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, (_, q)) in self.history.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (q - mean_y);
            den += dx * dx;
        }
        let slope = if den > 0.0 { num / den } else { 0.0 };
        if slope < -self.slope_threshold {
            PredictionHint::TransitionLikely { slope }
        } else {
            PredictionHint::Stable
        }
    }

    /// Drop all history.
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(q: f64) -> Quality {
        Quality::Value(q)
    }

    #[test]
    fn construction_validated() {
        assert!(TrendPredictor::new(2, 0.01).is_err());
        assert!(TrendPredictor::new(5, 0.0).is_err());
        assert!(TrendPredictor::new(5, f64::NAN).is_err());
        assert!(TrendPredictor::new(3, 0.01).is_ok());
    }

    #[test]
    fn warmup_then_stable() {
        let mut p = TrendPredictor::new(4, 0.02).unwrap();
        assert_eq!(p.observe(ClassId(0), v(0.9)), PredictionHint::Warmup);
        assert_eq!(p.observe(ClassId(0), v(0.91)), PredictionHint::Warmup);
        assert_eq!(p.observe(ClassId(0), v(0.9)), PredictionHint::Warmup);
        assert_eq!(p.observe(ClassId(0), v(0.92)), PredictionHint::Stable);
    }

    #[test]
    fn falling_quality_predicts_transition() {
        let mut p = TrendPredictor::new(5, 0.02).unwrap();
        let mut last = PredictionHint::Warmup;
        for (i, q) in [0.95, 0.85, 0.72, 0.6, 0.45, 0.3].iter().enumerate() {
            last = p.observe(ClassId(1), v(*q));
            if i < 4 {
                assert_eq!(last, PredictionHint::Warmup);
            }
        }
        match last {
            PredictionHint::TransitionLikely { slope } => assert!(slope < -0.05),
            other => panic!("expected transition, got {other:?}"),
        }
    }

    #[test]
    fn class_change_resets_trend() {
        let mut p = TrendPredictor::new(3, 0.02).unwrap();
        p.observe(ClassId(0), v(0.9));
        p.observe(ClassId(0), v(0.7));
        // Class flips: history restarts, so we are in warmup again.
        assert_eq!(p.observe(ClassId(1), v(0.5)), PredictionHint::Warmup);
    }

    #[test]
    fn epsilon_resets_window() {
        let mut p = TrendPredictor::new(3, 0.02).unwrap();
        p.observe(ClassId(0), v(0.9));
        p.observe(ClassId(0), v(0.8));
        assert_eq!(p.observe(ClassId(0), Quality::Epsilon), PredictionHint::Warmup);
        assert_eq!(p.observe(ClassId(0), v(0.7)), PredictionHint::Warmup);
    }

    #[test]
    fn slow_decline_below_threshold_is_stable() {
        let mut p = TrendPredictor::new(4, 0.05).unwrap();
        let mut last = PredictionHint::Warmup;
        for q in [0.9, 0.895, 0.89, 0.885, 0.88] {
            last = p.observe(ClassId(0), v(q));
        }
        assert_eq!(last, PredictionHint::Stable);
    }

    #[test]
    fn reset_clears_history() {
        let mut p = TrendPredictor::new(3, 0.02).unwrap();
        p.observe(ClassId(0), v(0.9));
        p.observe(ClassId(0), v(0.9));
        p.reset();
        assert_eq!(p.observe(ClassId(0), v(0.9)), PredictionHint::Warmup);
    }
}
