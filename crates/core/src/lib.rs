//! # cqm-core — the Context Quality Measure (CQM)
//!
//! This crate is the paper's primary contribution: a **generic, real-time
//! quality measure for context classifications** that treats the context
//! recognition algorithm as a black box (§2). Every classification
//! `c = classify(v_C)` is accompanied by a quality value `q ∈ [0, 1]`
//! (or the error state ε) computed by a TSK fuzzy inference system over the
//! joint vector `v_Q = (v_C, c)`.
//!
//! The building blocks:
//!
//! * [`classifier`] — the black-box [`classifier::Classifier`] trait and the
//!   [`classifier::ClassId`] newtype. Any recognizer that maps a cue vector
//!   to a class can be wrapped; the CQM never looks inside.
//! * [`normalize`] — the normalization function `L` mapping the unbounded
//!   FIS output onto `[0, 1] ∪ {ε}` (§2.1.3), yielding [`normalize::Quality`].
//! * [`quality`] — [`quality::QualityMeasure`], the trained quality FIS
//!   `S_Q = L ∘ S~_Q`.
//! * [`training`] — the automated construction pipeline (§2.2): run the
//!   black box over labeled data, build targets (1 = right, 0 = wrong),
//!   genfis + ANFIS hybrid learning, then the statistical analysis (§2.3)
//!   on a held-out analysis set to obtain the optimal threshold.
//! * [`filter`] — threshold-based accept/discard decisions and their
//!   bookkeeping (the paper's application improvement mechanism).
//! * [`pipeline`] — [`pipeline::CqmSystem`], the runtime composition of
//!   classifier ⊕ quality measure ⊕ filter shown in the paper's Fig. 2/4.
//! * [`model`] — serde persistence of trained systems.
//! * [`fusion`] — quality-weighted fusion of context reports from multiple
//!   appliances (§5 outlook: "support fusion and aggregation for higher
//!   level contexts").
//! * [`prediction`] — quality-trend context prediction (§5 outlook: "the
//!   measure can i.e. indicate that a context classification changes in
//!   direction to another context").
//!
//! ## Quickstart
//!
//! ```
//! use cqm_core::classifier::{ClassId, Classifier};
//! use cqm_core::training::{train_cqm, CqmTrainingConfig};
//!
//! // A trivial black-box classifier: class 1 iff the cue exceeds 0.5 —
//! // deliberately wrong in the band 0.45..0.55 where the cue is ambiguous.
//! struct Thresholder;
//! impl Classifier for Thresholder {
//!     fn classify(&self, cues: &[f64]) -> cqm_core::Result<ClassId> {
//!         Ok(ClassId(usize::from(cues[0] > 0.5)))
//!     }
//!     fn cue_dim(&self) -> usize { 1 }
//!     fn num_classes(&self) -> usize { 2 }
//! }
//!
//! // Labeled data whose true boundary is 0.45: samples in 0.45..0.55 get
//! // misclassified by the black box, and the CQM learns to flag them.
//! let cues: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 199.0]).collect();
//! let truth: Vec<ClassId> = cues.iter().map(|c| ClassId(usize::from(c[0] > 0.45))).collect();
//! let trained = train_cqm(&Thresholder, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
//! assert!(trained.threshold.value > 0.0 && trained.threshold.value < 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod classifier;
pub mod filter;
pub mod fusion;
pub mod model;
pub mod monitor;
pub mod normalize;
pub mod pipeline;
pub mod prediction;
pub mod quality;
pub mod training;

pub use classifier::{ClassId, Classifier};
pub use filter::{Decision, QualityFilter};
pub use normalize::Quality;
pub use pipeline::CqmSystem;
pub use quality::{QualityKernel, QualityMeasure, QualityScratch};
pub use training::{train_cqm, train_cqm_with, CqmTrainingConfig, TrainedCqm};

/// Errors produced by the CQM layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CqmError {
    /// Propagated from the fuzzy substrate.
    Fuzzy(cqm_fuzzy::FuzzyError),
    /// Propagated from ANFIS construction/training.
    Anfis(cqm_anfis::AnfisError),
    /// Propagated from the statistical analysis.
    Stats(cqm_stats::StatsError),
    /// Input data inconsistent with the system's dimensions.
    InvalidInput(String),
    /// Training data insufficient (e.g. only one outcome present).
    InvalidTrainingData(String),
    /// Persistence (serde) failure.
    Persistence(String),
}

impl std::fmt::Display for CqmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CqmError::Fuzzy(e) => write!(f, "fuzzy error: {e}"),
            CqmError::Anfis(e) => write!(f, "anfis error: {e}"),
            CqmError::Stats(e) => write!(f, "stats error: {e}"),
            CqmError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CqmError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            CqmError::Persistence(msg) => write!(f, "persistence error: {msg}"),
        }
    }
}

impl std::error::Error for CqmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CqmError::Fuzzy(e) => Some(e),
            CqmError::Anfis(e) => Some(e),
            CqmError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cqm_fuzzy::FuzzyError> for CqmError {
    fn from(e: cqm_fuzzy::FuzzyError) -> Self {
        CqmError::Fuzzy(e)
    }
}

impl From<cqm_anfis::AnfisError> for CqmError {
    fn from(e: cqm_anfis::AnfisError) -> Self {
        CqmError::Anfis(e)
    }
}

impl From<cqm_stats::StatsError> for CqmError {
    fn from(e: cqm_stats::StatsError) -> Self {
        CqmError::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CqmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let e: CqmError = cqm_fuzzy::FuzzyError::NoRuleFired.into();
        assert!(matches!(e, CqmError::Fuzzy(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: CqmError = cqm_stats::StatsError::InvalidData("x".into()).into();
        assert!(e.to_string().contains("stats"));
        let e = CqmError::Persistence("disk".into());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CqmError>();
    }
}
