//! Persistence of trained CQM artifacts.
//!
//! A deployed appliance (the AwarePen's Particle node in the paper) receives
//! a pre-trained model — training happens offline. The model bundles the
//! quality FIS and the operating threshold, versioned for forward
//! compatibility.

use serde::{Deserialize, Serialize};

use crate::filter::QualityFilter;
use crate::quality::QualityMeasure;
use crate::training::TrainedCqm;
use crate::{CqmError, Result};

/// Current model format version.
pub const MODEL_VERSION: u32 = 1;

/// Serializable bundle of everything an appliance needs at runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CqmModel {
    /// Format version (for forward compatibility checks on load).
    pub version: u32,
    /// The trained quality measure.
    pub measure: QualityMeasure,
    /// The operating threshold.
    pub threshold: f64,
    /// Free-form provenance note (training set, date, appliance).
    pub note: String,
}

impl CqmModel {
    /// Bundle a training result.
    pub fn from_trained(trained: &TrainedCqm, note: impl Into<String>) -> Self {
        CqmModel {
            version: MODEL_VERSION,
            measure: trained.measure.clone(),
            threshold: trained.threshold.value.clamp(0.0, 1.0),
            note: note.into(),
        }
    }

    /// Serialize to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::Persistence`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| CqmError::Persistence(e.to_string()))
    }

    /// Deserialize from a JSON string, checking the version.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::Persistence`] on malformed JSON or a newer,
    /// unknown format version.
    pub fn from_json(json: &str) -> Result<Self> {
        let model: CqmModel =
            serde_json::from_str(json).map_err(|e| CqmError::Persistence(e.to_string()))?;
        if model.version > MODEL_VERSION {
            return Err(CqmError::Persistence(format!(
                "model version {} is newer than supported {}",
                model.version, MODEL_VERSION
            )));
        }
        if !(0.0..=1.0).contains(&model.threshold) {
            return Err(CqmError::Persistence(format!(
                "model threshold {} outside [0, 1]",
                model.threshold
            )));
        }
        Ok(model)
    }

    /// Write to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::Persistence`] on I/O or serialization failure.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| CqmError::Persistence(e.to_string()))
    }

    /// Read from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::Persistence`] on I/O or parse failure.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let json =
            std::fs::read_to_string(path).map_err(|e| CqmError::Persistence(e.to_string()))?;
        Self::from_json(&json)
    }

    /// Rebuild the runtime filter.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidInput`] if the stored threshold is
    /// invalid (guarded at load, so practically unreachable).
    pub fn filter(&self) -> Result<QualityFilter> {
        QualityFilter::new(self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_support::BoundaryClassifier;
    use crate::classifier::ClassId;
    use crate::training::{train_cqm, CqmTrainingConfig};

    fn trained() -> TrainedCqm {
        let cues: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 199.0]).collect();
        let truth: Vec<ClassId> = cues
            .iter()
            .map(|c| ClassId(usize::from(c[0] > 0.45)))
            .collect();
        train_cqm(
            &BoundaryClassifier { boundary: 0.5 },
            &cues,
            &truth,
            &CqmTrainingConfig::fast(),
        )
        .unwrap()
    }

    #[test]
    fn json_round_trip_preserves_behaviour() {
        let t = trained();
        let model = CqmModel::from_trained(&t, "unit test");
        let json = model.to_json().unwrap();
        let back = CqmModel::from_json(&json).unwrap();
        assert_eq!(back, model);
        // Behaviour identical.
        let q1 = model.measure.measure(&[0.3], ClassId(0)).unwrap();
        let q2 = back.measure.measure(&[0.3], ClassId(0)).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(back.note, "unit test");
    }

    #[test]
    fn file_round_trip() {
        let t = trained();
        let model = CqmModel::from_trained(&t, "file test");
        let dir = std::env::temp_dir().join("cqm_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let back = CqmModel::load(&path).unwrap();
        assert_eq!(back, model);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_guard() {
        let t = trained();
        let mut model = CqmModel::from_trained(&t, "v");
        model.version = MODEL_VERSION + 1;
        let json = model.to_json().unwrap();
        let err = CqmModel::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("newer"));
    }

    #[test]
    fn threshold_guard() {
        let t = trained();
        let mut model = CqmModel::from_trained(&t, "v");
        model.threshold = 2.0;
        let json = model.to_json().unwrap();
        assert!(CqmModel::from_json(&json).is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(CqmModel::from_json("{not json").is_err());
        assert!(CqmModel::load(std::path::Path::new("/nonexistent/x.json")).is_err());
    }

    #[test]
    fn filter_reconstruction() {
        let t = trained();
        let model = CqmModel::from_trained(&t, "f");
        let f = model.filter().unwrap();
        assert!((f.threshold() - model.threshold).abs() < 1e-15);
    }
}
