//! Automated construction of the quality system (§2.2) plus the statistical
//! analysis (§2.3), end to end.
//!
//! Given a black-box classifier and labeled cue data, the pipeline
//!
//! 1. runs the classifier on every cue vector, forming the joint samples
//!    `v_Q = (v_C, c)` with designated output 1 (classification right) or 0
//!    (wrong);
//! 2. splits the samples into a **training**, a **checking** (early
//!    stopping) and an **analysis** set — the paper requires "a second data
//!    set different from the training set" for the MLE (§2.31);
//! 3. builds the initial FIS by subtractive clustering + least squares and
//!    tunes it with ANFIS hybrid learning;
//! 4. fits the right/wrong Gaussians on the analysis set, intersects them
//!    for the optimal threshold `s` and computes the §2.33 probabilities.

// lint: allow(PANIC_IN_LIB, file) -- training folds index datasets whose shape was validated upstream

use cqm_anfis::dataset::Dataset;
use cqm_anfis::genfis::{genfis_with, GenfisParams};
use cqm_anfis::hybrid::{train_hybrid_with, HybridConfig, TrainReport};
use cqm_parallel::WorkerPool;
use cqm_stats::mle::QualityGroups;
use cqm_stats::probabilities::TailProbabilities;
use cqm_stats::threshold::{optimal_threshold, Threshold};

use crate::classifier::{ClassId, Classifier};
use crate::normalize::Quality;
use crate::quality::QualityMeasure;
use crate::{CqmError, Result};

/// Configuration of the CQM training pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CqmTrainingConfig {
    /// Structure identification + initial consequent fit.
    pub genfis: GenfisParams,
    /// Hybrid-learning loop parameters.
    pub hybrid: HybridConfig,
    /// Fraction of the samples used for FIS training (the rest is split
    /// between checking and analysis).
    pub train_fraction: f64,
    /// Of the held-out part, fraction used for the early-stopping check set
    /// (the remainder is the statistical analysis set).
    pub check_fraction: f64,
    /// Shuffle seed for the deterministic split.
    pub shuffle_seed: u64,
    /// Sigma floor for degenerate analysis groups.
    pub sigma_floor: f64,
}

impl Default for CqmTrainingConfig {
    fn default() -> Self {
        // The quality FIS needs finer structure than the coarse black-box
        // classifier it watches: a small cluster radius with permissive
        // accept/reject ratios yields the extra rules that localize the
        // classifier's systematic error regions (tuned on the AwarePen
        // testbed; see DESIGN.md ABL notes).
        let mut genfis = GenfisParams::with_radius(0.15);
        genfis.clustering.accept_ratio = 0.2;
        genfis.clustering.reject_ratio = 0.03;
        CqmTrainingConfig {
            genfis,
            hybrid: HybridConfig {
                epochs: 40,
                ..HybridConfig::default()
            },
            train_fraction: 0.6,
            check_fraction: 0.5,
            shuffle_seed: 0x5EED,
            sigma_floor: cqm_stats::mle::DEFAULT_SIGMA_FLOOR,
        }
    }
}

impl CqmTrainingConfig {
    /// A configuration tuned for speed (fewer epochs) — used in doctests
    /// and quick examples; quality differences against the default are
    /// small on the workloads in this repository.
    pub fn fast() -> Self {
        CqmTrainingConfig {
            hybrid: HybridConfig {
                epochs: 10,
                ..HybridConfig::default()
            },
            ..CqmTrainingConfig::default()
        }
    }

    /// Validate the split fractions.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError::InvalidTrainingData`] for out-of-domain
    /// fractions.
    pub fn validate(&self) -> Result<()> {
        if !(self.train_fraction > 0.0 && self.train_fraction < 1.0) {
            return Err(CqmError::InvalidTrainingData(format!(
                "train_fraction {} not in (0, 1)",
                self.train_fraction
            )));
        }
        if !(self.check_fraction > 0.0 && self.check_fraction < 1.0) {
            return Err(CqmError::InvalidTrainingData(format!(
                "check_fraction {} not in (0, 1)",
                self.check_fraction
            )));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-rejecting guard
        if !(self.sigma_floor > 0.0) {
            return Err(CqmError::InvalidTrainingData(format!(
                "sigma_floor {} must be positive",
                self.sigma_floor
            )));
        }
        Ok(())
    }
}

/// One labeled quality observation from the analysis set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySample {
    /// The quality measure produced for this sample.
    pub quality: Quality,
    /// Whether the black-box classification was actually right.
    pub was_right: bool,
    /// The class the black box emitted.
    pub predicted: ClassId,
    /// The true class.
    pub truth: ClassId,
}

/// A fully trained CQM: measure, densities, threshold, probabilities.
#[derive(Debug, Clone)]
pub struct TrainedCqm {
    /// The quality measure `S_Q`.
    pub measure: QualityMeasure,
    /// Gaussian fits of right/wrong quality values on the analysis set.
    pub groups: QualityGroups,
    /// Optimal threshold from the density intersection.
    pub threshold: Threshold,
    /// §2.33 probabilities at the threshold.
    pub probabilities: TailProbabilities,
    /// ANFIS training diagnostics.
    pub report: TrainReport,
    /// Labeled quality values of the analysis set (for Fig. 5/6-style
    /// output and further experiments).
    pub analysis_samples: Vec<QualitySample>,
    /// Fraction of all samples the black box classified correctly (the
    /// "before" accuracy the filter improves on).
    pub classifier_accuracy: f64,
}

/// Run the complete CQM construction over labeled data.
///
/// `cues[i]` is a cue vector, `truth[i]` its ground-truth context. The
/// black box is evaluated on each sample; its rightness becomes the FIS
/// target.
///
/// # Errors
///
/// * [`CqmError::InvalidTrainingData`] if the inputs are inconsistent, too
///   small (fewer than 12 samples), or the classifier is never / always
///   right — a CQM cannot be trained without both outcomes, matching the
///   paper's requirement of right *and* wrong samples.
/// * [`CqmError::Anfis`] / [`CqmError::Stats`] propagated from the
///   substrates.
// lint: allow(ASSERT_DENSITY) -- thin delegation; the pooled variant validates via Result
pub fn train_cqm(
    classifier: &dyn Classifier,
    cues: &[Vec<f64>],
    truth: &[ClassId],
    config: &CqmTrainingConfig,
) -> Result<TrainedCqm> {
    train_cqm_with(classifier, cues, truth, config, &WorkerPool::serial())
}

/// [`train_cqm`] on a worker pool: subtractive clustering, the ANFIS hybrid
/// loop and the analysis-set evaluation all run on `pool` with deterministic
/// chunking, so the trained measure, threshold and probabilities are
/// bit-identical at any thread count (including the serial pool used by
/// [`train_cqm`]).
///
/// # Errors
///
/// Same conditions as [`train_cqm`].
pub fn train_cqm_with(
    classifier: &dyn Classifier,
    cues: &[Vec<f64>],
    truth: &[ClassId],
    config: &CqmTrainingConfig,
    pool: &WorkerPool,
) -> Result<TrainedCqm> {
    config.validate()?;
    if cues.len() != truth.len() {
        return Err(CqmError::InvalidTrainingData(format!(
            "{} cue vectors but {} labels",
            cues.len(),
            truth.len()
        )));
    }
    if cues.len() < 12 {
        return Err(CqmError::InvalidTrainingData(format!(
            "need at least 12 samples to train, check and analyse; got {}",
            cues.len()
        )));
    }

    // 1. Run the black box; build joint samples with rightness targets.
    let mut joint = Dataset::new(classifier.cue_dim() + 1);
    let mut outcomes: Vec<(ClassId, ClassId)> = Vec::with_capacity(cues.len());
    let mut right_count = 0usize;
    for (v, &t) in cues.iter().zip(truth) {
        let predicted = classifier.classify(v)?;
        let was_right = predicted == t;
        right_count += usize::from(was_right);
        let mut row = v.clone();
        row.push(predicted.as_f64());
        joint
            .push(row, if was_right { 1.0 } else { 0.0 })
            .map_err(CqmError::Anfis)?;
        outcomes.push((predicted, t));
    }
    if right_count == 0 || right_count == cues.len() {
        return Err(CqmError::InvalidTrainingData(format!(
            "classifier was right on {right_count}/{} samples; training the quality \
             measure requires both right and wrong classifications",
            cues.len()
        )));
    }
    let classifier_accuracy = right_count as f64 / cues.len() as f64;

    // 2. Deterministic shuffled three-way split. The shuffle permutes the
    //    dataset; `outcomes` must follow the same permutation, so shuffle a
    //    joined structure instead: rebuild outcomes from the dataset rows.
    let mut indexed = Dataset::new(joint.dim() + 2);
    for (i, (x, y)) in joint.iter().enumerate() {
        let mut row = x.to_vec();
        row.push(outcomes[i].0.as_f64()); // predicted (redundant with x's last, kept for clarity)
        row.push(outcomes[i].1.as_f64()); // truth
        indexed.push(row, y).map_err(CqmError::Anfis)?;
    }
    indexed.shuffle(config.shuffle_seed);

    let (train_part, rest) = indexed.split(config.train_fraction).map_err(CqmError::Anfis)?;
    let (check_part, analysis_part) = rest.split(config.check_fraction).map_err(CqmError::Anfis)?;

    let strip = |part: &Dataset| -> Result<Dataset> {
        let mut d = Dataset::new(joint.dim());
        for (x, y) in part.iter() {
            d.push(x[..joint.dim()].to_vec(), y).map_err(CqmError::Anfis)?;
        }
        Ok(d)
    };
    let train_set = strip(&train_part)?;
    let check_set = strip(&check_part)?;

    // 3. Automated FIS construction + hybrid learning with early stopping.
    let mut fis = genfis_with(&train_set, &config.genfis, pool)?;
    let report = train_hybrid_with(&mut fis, &train_set, Some(&check_set), &config.hybrid, pool)?;
    let measure = QualityMeasure::new(fis)?;

    // 4. Statistical analysis on the held-out analysis set, through the
    //    allocation-free kernel (bit-identical to QualityMeasure::measure).
    let kernel = measure.kernel();
    let mut scratch = crate::quality::QualityScratch::new();
    let mut analysis_samples = Vec::with_capacity(analysis_part.len());
    let mut labeled: Vec<(f64, bool)> = Vec::new();
    for (row, target) in analysis_part.iter() {
        let n = joint.dim() - 1; // cue dimensionality
        let cue_part = &row[..n];
        let predicted = ClassId(row[n] as usize);
        let truth_class = ClassId(row[n + 2] as usize);
        let was_right = target > 0.5;
        let quality = kernel.measure_into(cue_part, predicted, &mut scratch)?;
        if let Quality::Value(q) = quality {
            labeled.push((q, was_right));
        }
        analysis_samples.push(QualitySample {
            quality,
            was_right,
            predicted,
            truth: truth_class,
        });
    }
    let right: Vec<f64> = labeled.iter().filter(|(_, r)| *r).map(|(q, _)| *q).collect();
    let wrong: Vec<f64> = labeled
        .iter()
        .filter(|(_, r)| !*r)
        .map(|(q, _)| *q)
        .collect();
    let groups = QualityGroups::fit_with_floor(&right, &wrong, config.sigma_floor)?;
    let threshold = optimal_threshold(&groups)?;
    let probabilities = TailProbabilities::at(&groups, &threshold);

    Ok(TrainedCqm {
        measure,
        groups,
        threshold,
        probabilities,
        report,
        analysis_samples,
        classifier_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_support::BoundaryClassifier;

    /// Data where the black box (boundary 0.5) disagrees with the truth
    /// (boundary 0.45) inside the ambiguity band 0.45..0.5.
    fn band_data(n: usize) -> (Vec<Vec<f64>>, Vec<ClassId>) {
        let cues: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let truth = cues
            .iter()
            .map(|c| ClassId(usize::from(c[0] > 0.45)))
            .collect();
        (cues, truth)
    }

    #[test]
    fn full_pipeline_produces_usable_threshold() {
        let (cues, truth) = band_data(300);
        let clf = BoundaryClassifier { boundary: 0.5 };
        let trained = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        assert!(trained.threshold.value > 0.0 && trained.threshold.value < 1.0);
        assert!(trained.groups.is_ordered());
        assert!(trained.classifier_accuracy > 0.9); // 5% band misclassified
        assert!(!trained.analysis_samples.is_empty());
        // Quality separates: selection index must beat chance by far.
        assert!(
            trained.probabilities.selection_right > 0.5,
            "{}",
            trained.probabilities
        );
    }

    #[test]
    fn quality_flags_ambiguous_band() {
        let (cues, truth) = band_data(400);
        let clf = BoundaryClassifier { boundary: 0.5 };
        let trained = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        // Measure quality inside the wrong band vs far outside.
        let q_bad = trained
            .measure
            .measure(&[0.475], clf.classify(&[0.475]).unwrap())
            .unwrap()
            .value_or(0.0);
        let q_good = trained
            .measure
            .measure(&[0.95], ClassId(1))
            .unwrap()
            .value_or(0.0);
        assert!(
            q_good > q_bad,
            "good-region quality {q_good} should exceed band quality {q_bad}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (cues, truth) = band_data(200);
        let clf = BoundaryClassifier { boundary: 0.5 };
        let a = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        let b = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        assert_eq!(a.threshold.value, b.threshold.value);
        assert_eq!(a.measure, b.measure);
    }

    #[test]
    fn different_seed_different_split() {
        let (cues, truth) = band_data(200);
        let clf = BoundaryClassifier { boundary: 0.5 };
        let mut cfg2 = CqmTrainingConfig::fast();
        cfg2.shuffle_seed = 999;
        let a = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        let b = train_cqm(&clf, &cues, &truth, &cfg2).unwrap();
        // Different splits ⇒ (almost surely) different thresholds.
        assert_ne!(a.threshold.value, b.threshold.value);
    }

    #[test]
    fn all_right_classifier_rejected() {
        let (cues, truth) = band_data(100);
        let clf = BoundaryClassifier { boundary: 0.45 }; // agrees with truth everywhere
        let err = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap_err();
        assert!(err.to_string().contains("both right and wrong"));
    }

    #[test]
    fn input_validation() {
        let clf = BoundaryClassifier { boundary: 0.5 };
        let cfg = CqmTrainingConfig::fast();
        // Mismatched lengths.
        assert!(train_cqm(&clf, &[vec![0.0]], &[], &cfg).is_err());
        // Too small.
        let (cues, truth) = band_data(8);
        assert!(train_cqm(&clf, &cues, &truth, &cfg).is_err());
        // Bad fractions.
        let (cues, truth) = band_data(100);
        let mut bad = CqmTrainingConfig::fast();
        bad.train_fraction = 1.0;
        assert!(train_cqm(&clf, &cues, &truth, &bad).is_err());
        let mut bad = CqmTrainingConfig::fast();
        bad.check_fraction = 0.0;
        assert!(train_cqm(&clf, &cues, &truth, &bad).is_err());
        let mut bad = CqmTrainingConfig::fast();
        bad.sigma_floor = 0.0;
        assert!(train_cqm(&clf, &cues, &truth, &bad).is_err());
    }

    #[test]
    fn analysis_samples_cover_both_outcomes() {
        let (cues, truth) = band_data(400);
        let clf = BoundaryClassifier { boundary: 0.5 };
        let trained = train_cqm(&clf, &cues, &truth, &CqmTrainingConfig::fast()).unwrap();
        let rights = trained.analysis_samples.iter().filter(|s| s.was_right).count();
        let wrongs = trained.analysis_samples.len() - rights;
        assert!(rights > 0);
        assert!(wrongs > 0);
        // Truth/predicted recorded coherently.
        for s in &trained.analysis_samples {
            assert_eq!(s.was_right, s.predicted == s.truth);
        }
    }
}
