//! Property-based tests for the clustering crate.

use cqm_cluster::fcm::fuzzy_c_means;
use cqm_cluster::kmeans::kmeans;
use cqm_cluster::normalize::UnitScaler;
use cqm_cluster::subtractive::{SubtractiveClustering, SubtractiveParams};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // 2-D points, 4..40 of them, coordinates in a modest range.
    prop::collection::vec(
        ((-50.0f64..50.0), (-50.0f64..50.0)).prop_map(|(a, b)| vec![a, b]),
        4..40,
    )
}

proptest! {
    #[test]
    fn scaler_round_trip(data in dataset()) {
        let s = UnitScaler::fit(&data).unwrap();
        for p in &data {
            let t = s.transform(p).unwrap();
            for &x in &t {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x));
            }
            let back = s.inverse(&t).unwrap();
            for (a, b) in p.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
            }
        }
    }

    #[test]
    fn subtractive_centers_are_data_points(data in dataset()) {
        let r = SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&data)
            .unwrap();
        prop_assert!(!r.centers.is_empty());
        for c in &r.centers {
            prop_assert!(
                data.iter()
                    .any(|p| p.iter().zip(c).all(|(a, b)| (a - b).abs() < 1e-6)),
                "center {c:?} is not a data point"
            );
        }
        // Relative potentials decrease-ish and start at 1.
        prop_assert!((r.relative_potentials[0] - 1.0).abs() < 1e-12);
        for w in &r.relative_potentials {
            prop_assert!(*w > 0.0 && *w <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn subtractive_respects_max_centers(data in dataset(), cap in 1usize..5) {
        let params = SubtractiveParams { max_centers: cap, radius: 0.15, ..Default::default() };
        let r = SubtractiveClustering::new(params).cluster(&data).unwrap();
        prop_assert!(r.centers.len() <= cap);
    }

    #[test]
    fn kmeans_assignments_match_nearest_center(data in dataset(), k in 1usize..4) {
        prop_assume!(k <= data.len());
        let r = kmeans(&data, k, 1).unwrap();
        for (p, &a) in data.iter().zip(&r.assignments) {
            let da = cqm_math::vector::dist_sq(p, &r.centers[a]).unwrap();
            for c in &r.centers {
                let dc = cqm_math::vector::dist_sq(p, c).unwrap();
                prop_assert!(da <= dc + 1e-9);
            }
        }
    }

    #[test]
    fn fcm_membership_rows_are_distributions(data in dataset(), c in 2usize..4) {
        prop_assume!(c <= data.len());
        if let Ok(r) = fuzzy_c_means(&data, c, 2.0, 0) {
            for u in &r.memberships {
                let s: f64 = u.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-6);
                for &x in u {
                    prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x));
                }
            }
        }
    }

    #[test]
    fn cluster_centers_inside_data_hull(data in dataset()) {
        // Bounding-box version of the hull property.
        let r = SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&data)
            .unwrap();
        for d in 0..2 {
            let lo = data.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
            let hi = data.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max);
            for c in &r.centers {
                prop_assert!(c[d] >= lo - 1e-9 && c[d] <= hi + 1e-9);
            }
        }
    }
}
