//! Subtractive clustering (Chiu 1994/1996).
//!
//! The paper's structure-identification step (§2.2.1): "This clustering
//! estimates every data point as possible cluster center, so the prior
//! specifications are none. A definition of parameters the subtractive
//! clustering needs for good cluster determination are given by Chiu."
//!
//! The algorithm, on data normalized into the unit hypercube:
//!
//! 1. potential of each point: `P_i = Σ_j exp(−α ‖x_i − x_j‖²)`,
//!    `α = 4 / r_a²`;
//! 2. the point with the highest potential becomes a cluster center;
//! 3. subtract its influence: `P_i ← P_i − P* exp(−β ‖x_i − x*‖²)`,
//!    `β = 4 / r_b²`, `r_b = squash · r_a`;
//! 4. accept further centers while the remaining peak potential is above
//!    `accept_ratio · P₁*`; reject below `reject_ratio · P₁*`; in the gray
//!    zone apply Chiu's distance criterion
//!    `d_min/r_a + P*/P₁* ≥ 1`.
//!
//! ## Determinism of the parallel potential field
//!
//! The potential of each point is a **row-wise** sum `P_i = Σ_{j=0}^{n-1}
//! exp(−α‖x_i−x_j‖²)` accumulated in ascending `j` (the `j = i` term is
//! `exp(0) = 1`). Rows are independent, so distributing them over a
//! [`WorkerPool`] cannot change any bit of the result — see DESIGN.md §9.
//! Pairwise distances computed for the field are cached (when the `n×n`
//! matrix fits the [`DIST_CACHE_MAX_POINTS`] budget) and reused by the
//! revision loop and the gray-zone criterion instead of being recomputed.

// analyze: hot-path
// lint: allow(PANIC_IN_LIB, file) -- density kernel over shapes validated at entry; potentials vector sized to n

use crate::normalize::UnitScaler;
use crate::{check_data, ClusterError, Result};
use cqm_math::fastexp::exp_exact;
use cqm_math::vector::dist_sq;
use cqm_parallel::WorkerPool;

/// Rows per parallel work item when building the potential field.
const POTENTIAL_ROW_CHUNK: usize = 16;

/// Largest point count for which the full `n×n` distance matrix is cached
/// (8·n² bytes; 4096 points ≈ 128 MiB). Beyond it, per-center distance rows
/// are still cached so the gray-zone criterion never recomputes them.
pub const DIST_CACHE_MAX_POINTS: usize = 4096;

/// Parameters of subtractive clustering, defaults per Chiu (1997).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubtractiveParams {
    /// Cluster radius `r_a` in normalized (unit-cube) coordinates.
    pub radius: f64,
    /// Squash factor: `r_b = squash · r_a` (default 1.25).
    pub squash: f64,
    /// Accept a center outright above this fraction of the first potential
    /// (default 0.5).
    pub accept_ratio: f64,
    /// Reject a center outright below this fraction (default 0.15).
    pub reject_ratio: f64,
    /// Hard cap on the number of centers (defense against pathological
    /// parameterizations; default 64).
    pub max_centers: usize,
}

impl Default for SubtractiveParams {
    fn default() -> Self {
        SubtractiveParams {
            radius: 0.5,
            squash: 1.25,
            accept_ratio: 0.5,
            reject_ratio: 0.15,
            max_centers: 64,
        }
    }
}

impl SubtractiveParams {
    /// Validate parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] for out-of-domain values.
    pub fn validate(&self) -> Result<()> {
        if !(self.radius > 0.0 && self.radius.is_finite()) {
            return Err(ClusterError::InvalidParameter {
                name: "radius",
                value: self.radius,
            });
        }
        if !(self.squash > 0.0 && self.squash.is_finite()) {
            return Err(ClusterError::InvalidParameter {
                name: "squash",
                value: self.squash,
            });
        }
        if !(0.0..=1.0).contains(&self.accept_ratio) {
            return Err(ClusterError::InvalidParameter {
                name: "accept_ratio",
                value: self.accept_ratio,
            });
        }
        if !(0.0..=1.0).contains(&self.reject_ratio) || self.reject_ratio > self.accept_ratio {
            return Err(ClusterError::InvalidParameter {
                name: "reject_ratio",
                value: self.reject_ratio,
            });
        }
        if self.max_centers == 0 {
            return Err(ClusterError::InvalidParameter {
                name: "max_centers",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// Result of a subtractive clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtractiveResult {
    /// Cluster centers in the **original** coordinate system.
    pub centers: Vec<Vec<f64>>,
    /// Potential of each accepted center relative to the first (`P*/P₁*`).
    pub relative_potentials: Vec<f64>,
    /// The scaler fitted on the data (maps original ↔ unit cube); exposes
    /// the per-dimension ranges the genfis step needs for its sigmas.
    pub scaler: UnitScaler,
}

/// Subtractive clustering runner.
#[derive(Debug, Clone)]
pub struct SubtractiveClustering {
    params: SubtractiveParams,
}

impl SubtractiveClustering {
    /// Create a runner with the given parameters.
    pub fn new(params: SubtractiveParams) -> Self {
        SubtractiveClustering { params }
    }

    /// The parameters.
    pub fn params(&self) -> &SubtractiveParams {
        &self.params
    }

    /// Run the algorithm on `data` (original coordinates; normalization is
    /// internal). Serial entry point: identical to
    /// [`SubtractiveClustering::cluster_with`] on a one-thread pool.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidData`] on empty/ragged/non-finite data.
    /// * [`ClusterError::InvalidParameter`] from parameter validation.
    pub fn cluster(&self, data: &[Vec<f64>]) -> Result<SubtractiveResult> {
        self.cluster_with(data, &WorkerPool::serial())
    }

    /// The initial (pre-revision) potential field over the normalized data,
    /// exposed for the serial-vs-parallel bit-identity tests.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SubtractiveClustering::cluster`].
    pub fn initial_potentials(&self, data: &[Vec<f64>], pool: &WorkerPool) -> Result<Vec<f64>> {
        check_data(data)?;
        self.params.validate()?;
        let scaler = UnitScaler::fit(data)?;
        let x = scaler.transform_all(data)?;
        let alpha = 4.0 / (self.params.radius * self.params.radius);
        Ok(potential_field(&x, alpha, pool, false).0)
    }

    /// Potential of one **unit-normalized** point with respect to a set of
    /// unit-normalized data points: `P(x) = Σ_j exp(−α ‖x − x_j‖²)`,
    /// accumulated in ascending `j` — the same fixed-order row sum the
    /// batch [`potential_field`] uses, so a point that *is* `data[i]`
    /// scores bit-identically to row `i` of
    /// [`SubtractiveClustering::initial_potentials`] on the same
    /// normalization. This is the incremental entry point: streaming
    /// adaptation (`cqm-adapt`) scores one new sample against a window
    /// without rebuilding the O(n²) field.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidData`] on empty data or dimension mismatch.
    /// * [`ClusterError::InvalidParameter`] from parameter validation.
    pub fn potential_of(&self, point: &[f64], data_unit: &[Vec<f64>]) -> Result<f64> {
        self.params.validate()?;
        if data_unit.is_empty() {
            return Err(ClusterError::InvalidData("empty data".into()));
        }
        let alpha = 4.0 / (self.params.radius * self.params.radius);
        let mut p = 0.0f64;
        for xj in data_unit {
            let d2 = dist_sq(point, xj).map_err(|_| {
                // lint: allow(HOT_LOOP_ALLOC) -- error path: allocates once and returns
                ClusterError::InvalidData(format!(
                    "point has {} dims, data has {}",
                    point.len(),
                    xj.len()
                ))
            })?;
            p += exp_exact(-alpha * d2);
        }
        Ok(p)
    }

    /// Run the algorithm with the O(n²) potential field distributed over
    /// `pool`. The result is bit-identical to the serial path at any thread
    /// count: every point's potential is an independent row sum accumulated
    /// in a fixed index order, and the sequential revision loop reuses the
    /// distances the field construction already produced.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SubtractiveClustering::cluster`].
    pub fn cluster_with(&self, data: &[Vec<f64>], pool: &WorkerPool) -> Result<SubtractiveResult> {
        check_data(data)?;
        self.params.validate()?;
        let scaler = UnitScaler::fit(data)?;
        let x = scaler.transform_all(data)?;
        let n = x.len();

        let alpha = 4.0 / (self.params.radius * self.params.radius);
        let rb = self.params.squash * self.params.radius;
        let beta = 4.0 / (rb * rb);

        // Initial potentials, with the pairwise d² matrix kept when it fits
        // the memory budget so the revision loop never recomputes distances.
        let cache_matrix = n <= DIST_CACHE_MAX_POINTS;
        let (mut potential, dist_cache) = potential_field(&x, alpha, pool, cache_matrix);

        let mut centers_unit: Vec<Vec<f64>> = Vec::new();
        // Data index of each accepted center: the key into the cached rows.
        let mut center_idx: Vec<usize> = Vec::new();
        // Without the full matrix: one d²(center, ·) row per accepted
        // center, computed once by the revision loop and reused by the
        // gray-zone criterion.
        let mut center_rows: Vec<Vec<f64>> = Vec::new();
        let mut relative_potentials = Vec::new();
        let mut first_potential = 0.0;

        for _ in 0..self.params.max_centers {
            let (best, p_star) = match cqm_math::vector::argmax(&potential) {
                Some(bp) => bp,
                None => break,
            };
            if centers_unit.is_empty() {
                first_potential = p_star;
                if first_potential <= 0.0 {
                    break;
                }
            }
            let rel = p_star / first_potential;
            let accepted = if rel > self.params.accept_ratio {
                true
            } else if rel < self.params.reject_ratio {
                false
            } else {
                // Gray zone: Chiu's distance criterion, over distances the
                // potential field / earlier revisions already produced.
                let d_min = (0..centers_unit.len())
                    .map(|k| {
                        let d2 = match &dist_cache {
                            Some(cache) => cache[center_idx[k] * n + best],
                            None => center_rows[k][best],
                        };
                        d2.sqrt()
                    })
                    .fold(f64::INFINITY, f64::min);
                d_min / self.params.radius + rel >= 1.0
            };
            if !accepted {
                break;
            }
            // lint: allow(HOT_LOOP_ALLOC) -- bounded by max_centers (default 64), not by the O(n²) data loop
            centers_unit.push(x[best].clone());
            center_idx.push(best);
            relative_potentials.push(rel);
            // Subtract the accepted center's influence, reading d² from the
            // cache when present; otherwise compute the row once and keep it
            // for later gray-zone checks.
            match &dist_cache {
                Some(cache) => {
                    let row = &cache[best * n..(best + 1) * n];
                    for (p, &d2) in potential.iter_mut().zip(row) {
                        *p -= p_star * exp_exact(-beta * d2);
                    }
                }
                None => {
                    let row: Vec<f64> = x
                        .iter()
                        .map(|xi| dist_sq(xi, &x[best]).expect("equal dims"))
                        // lint: allow(HOT_LOOP_ALLOC) -- one row per accepted center (<= max_centers), cached for reuse
                        .collect();
                    for (p, &d2) in potential.iter_mut().zip(&row) {
                        *p -= p_star * exp_exact(-beta * d2);
                    }
                    center_rows.push(row);
                }
            }
            // Revisiting the same peak forever is impossible because its own
            // potential drops to ~0, but keep potentials non-negative for the
            // ratio tests.
            for p in potential.iter_mut() {
                if *p < 0.0 {
                    *p = 0.0;
                }
            }
        }

        if centers_unit.is_empty() {
            return Err(ClusterError::InvalidData(
                "no cluster center could be established".into(),
            ));
        }

        let centers = centers_unit
            .iter()
            .map(|c| scaler.inverse(c))
            .collect::<Result<Vec<_>>>()?;
        Ok(SubtractiveResult {
            centers,
            relative_potentials,
            scaler,
        })
    }
}

/// Build the potential field `P_i = Σ_j exp(−α d²(x_i, x_j))` (ascending
/// `j`; the `j = i` term is exactly `1.0`), optionally returning the flat
/// row-major d² matrix for reuse by the revision loop.
///
/// Rows are distributed over `pool` in fixed [`POTENTIAL_ROW_CHUNK`] blocks;
/// each row is an independent fixed-order sum, so the output is
/// bit-identical at every thread count.
fn potential_field(
    x: &[Vec<f64>],
    alpha: f64,
    pool: &WorkerPool,
    cache_matrix: bool,
) -> (Vec<f64>, Option<Vec<f64>>) {
    let n = x.len();
    let parts = pool.run_chunks(n, POTENTIAL_ROW_CHUNK, |chunk| {
        let mut rows = Vec::with_capacity(if cache_matrix { chunk.len() * n } else { 0 });
        let mut pots = Vec::with_capacity(chunk.len());
        for i in chunk.start..chunk.end {
            let xi = &x[i];
            let mut p = 0.0f64;
            for xj in x {
                let d2 = dist_sq(xi, xj).expect("equal dims");
                p += exp_exact(-alpha * d2);
                if cache_matrix {
                    rows.push(d2);
                }
            }
            pots.push(p);
        }
        (rows, pots)
    });
    let mut potential = Vec::with_capacity(n);
    let mut matrix = Vec::with_capacity(if cache_matrix { n * n } else { 0 });
    for (rows, pots) in parts {
        matrix.extend(rows);
        potential.extend(pots);
    }
    (potential, cache_matrix.then_some(matrix))
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // one-bad-field fixtures
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        // Deterministic ring of points around (cx, cy).
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![cx + spread * t.cos(), cy + spread * t.sin()]
            })
            .collect()
    }

    #[test]
    fn defaults_are_chius() {
        let p = SubtractiveParams::default();
        assert_eq!(p.radius, 0.5);
        assert_eq!(p.squash, 1.25);
        assert_eq!(p.accept_ratio, 0.5);
        assert_eq!(p.reject_ratio, 0.15);
        p.validate().unwrap();
    }

    #[test]
    fn parameter_validation() {
        let mut p = SubtractiveParams::default();
        p.radius = 0.0;
        assert!(p.validate().is_err());
        let mut p = SubtractiveParams::default();
        p.reject_ratio = 0.9; // above accept
        assert!(p.validate().is_err());
        let mut p = SubtractiveParams::default();
        p.accept_ratio = 1.5;
        assert!(p.validate().is_err());
        let mut p = SubtractiveParams::default();
        p.max_centers = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn two_planted_blobs_found() {
        let mut data = blob(0.0, 0.0, 30, 0.05);
        data.extend(blob(10.0, 10.0, 30, 0.05));
        let r = SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&data)
            .unwrap();
        assert_eq!(r.centers.len(), 2, "centers: {:?}", r.centers);
        // One center near each blob (original coordinates).
        let near = |cx: f64, cy: f64| {
            r.centers
                .iter()
                .any(|c| (c[0] - cx).abs() < 1.0 && (c[1] - cy).abs() < 1.0)
        };
        assert!(near(0.0, 0.0));
        assert!(near(10.0, 10.0));
        // First potential is the reference.
        assert_eq!(r.relative_potentials[0], 1.0);
        assert!(r.relative_potentials[1] <= 1.0);
    }

    #[test]
    fn three_blobs_with_smaller_radius() {
        let mut data = blob(0.0, 0.0, 25, 0.1);
        data.extend(blob(5.0, 0.0, 25, 0.1));
        data.extend(blob(0.0, 5.0, 25, 0.1));
        let params = SubtractiveParams {
            radius: 0.3,
            ..SubtractiveParams::default()
        };
        let r = SubtractiveClustering::new(params).cluster(&data).unwrap();
        assert_eq!(r.centers.len(), 3, "centers: {:?}", r.centers);
    }

    #[test]
    fn single_dense_blob_first_center_at_density_peak() {
        // Filled spiral: density concentrates at the middle. Normalization
        // stretches any lone cluster across the whole unit cube, so the
        // meaningful invariants are (a) the first center sits at the density
        // peak and (b) a large radius keeps the center count minimal.
        let data: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let t = i as f64 / 60.0;
                let ang = t * 6.0 * std::f64::consts::TAU;
                vec![3.0 + 0.2 * t * ang.cos(), -2.0 + 0.2 * t * ang.sin()]
            })
            .collect();
        let params = SubtractiveParams {
            radius: 1.0,
            ..SubtractiveParams::default()
        };
        let r = SubtractiveClustering::new(params).cluster(&data).unwrap();
        assert!((r.centers[0][0] - 3.0).abs() < 0.15, "{:?}", r.centers[0]);
        assert!((r.centers[0][1] + 2.0).abs() < 0.15, "{:?}", r.centers[0]);
        assert!(r.centers.len() <= 2, "got {} centers", r.centers.len());
    }

    #[test]
    fn centers_are_data_points() {
        // Subtractive centers are always actual data points.
        let mut data = blob(0.0, 0.0, 10, 0.3);
        data.extend(blob(8.0, 1.0, 10, 0.3));
        let r = SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&data)
            .unwrap();
        for c in &r.centers {
            assert!(
                data.iter()
                    .any(|p| p.iter().zip(c).all(|(a, b)| (a - b).abs() < 1e-9)),
                "center {c:?} is not a data point"
            );
        }
    }

    #[test]
    fn larger_radius_fewer_clusters() {
        let mut data = blob(0.0, 0.0, 20, 0.2);
        data.extend(blob(3.0, 0.0, 20, 0.2));
        data.extend(blob(6.0, 0.0, 20, 0.2));
        data.extend(blob(9.0, 0.0, 20, 0.2));
        let count = |radius: f64| {
            let params = SubtractiveParams {
                radius,
                ..SubtractiveParams::default()
            };
            SubtractiveClustering::new(params)
                .cluster(&data)
                .unwrap()
                .centers
                .len()
        };
        assert!(count(0.2) >= count(0.9), "small radius should find >= clusters");
        assert!(count(0.2) >= 3);
    }

    #[test]
    fn max_centers_caps_output() {
        let data: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let params = SubtractiveParams {
            radius: 0.05,
            max_centers: 4,
            ..SubtractiveParams::default()
        };
        let r = SubtractiveClustering::new(params).cluster(&data).unwrap();
        assert!(r.centers.len() <= 4);
    }

    #[test]
    fn identical_points_give_one_center() {
        let data = vec![vec![1.0, 1.0]; 12];
        let r = SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&data)
            .unwrap();
        assert_eq!(r.centers.len(), 1);
        assert_eq!(r.centers[0], vec![1.0, 1.0]);
    }

    #[test]
    fn empty_data_rejected() {
        assert!(SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&[])
            .is_err());
    }

    #[test]
    fn parallel_cluster_is_bit_identical_to_serial() {
        let mut data = blob(0.0, 0.0, 40, 0.4);
        data.extend(blob(4.0, 1.0, 40, 0.3));
        data.extend(blob(-2.0, 5.0, 40, 0.5));
        let runner = SubtractiveClustering::new(SubtractiveParams {
            radius: 0.3,
            ..SubtractiveParams::default()
        });
        let reference = runner.cluster(&data).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let got = runner
                .cluster_with(&data, &WorkerPool::new(threads))
                .unwrap();
            assert_eq!(got.centers.len(), reference.centers.len());
            for (a, b) in got.centers.iter().zip(&reference.centers) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
                }
            }
            for (a, b) in got
                .relative_potentials
                .iter()
                .zip(&reference.relative_potentials)
            {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn initial_potentials_bit_identical_across_thread_counts() {
        let mut data = blob(1.0, -1.0, 35, 0.6);
        data.extend(blob(6.0, 2.0, 35, 0.2));
        let runner = SubtractiveClustering::new(SubtractiveParams::default());
        let reference = runner
            .initial_potentials(&data, &WorkerPool::serial())
            .unwrap();
        for threads in [2usize, 3, 8] {
            let got = runner
                .initial_potentials(&data, &WorkerPool::new(threads))
                .unwrap();
            assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn potential_of_matches_field_rows_bit_for_bit() {
        let mut data = blob(0.0, 0.0, 25, 0.3);
        data.extend(blob(5.0, 2.0, 25, 0.4));
        let runner = SubtractiveClustering::new(SubtractiveParams::default());
        let field = runner
            .initial_potentials(&data, &WorkerPool::serial())
            .unwrap();
        let scaler = UnitScaler::fit(&data).unwrap();
        let x = scaler.transform_all(&data).unwrap();
        for (i, xi) in x.iter().enumerate() {
            let p = runner.potential_of(xi, &x).unwrap();
            assert_eq!(p.to_bits(), field[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn potential_of_validates_inputs() {
        let runner = SubtractiveClustering::new(SubtractiveParams::default());
        assert!(runner.potential_of(&[0.5], &[]).is_err());
        assert!(runner
            .potential_of(&[0.5], &[vec![0.1, 0.2]])
            .is_err());
    }

    #[test]
    fn uncached_distance_path_matches_cached() {
        // Force the no-matrix path through potential_field directly and
        // check the revision loop's per-center rows give the same centers.
        let mut data = blob(0.0, 0.0, 30, 0.2);
        data.extend(blob(7.0, 3.0, 30, 0.2));
        let runner = SubtractiveClustering::new(SubtractiveParams::default());
        let cached = runner.cluster(&data).unwrap();

        let scaler = UnitScaler::fit(&data).unwrap();
        let x = scaler.transform_all(&data).unwrap();
        let alpha = 4.0 / (0.5 * 0.5);
        let pool = WorkerPool::serial();
        let (p_cache, m) = potential_field(&x, alpha, &pool, true);
        let (p_plain, none) = potential_field(&x, alpha, &pool, false);
        assert!(m.is_some() && none.is_none());
        for (a, b) in p_cache.iter().zip(&p_plain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Sanity on the run itself.
        assert_eq!(cached.centers.len(), 2);
    }
}
