//! Subtractive clustering (Chiu 1994/1996).
//!
//! The paper's structure-identification step (§2.2.1): "This clustering
//! estimates every data point as possible cluster center, so the prior
//! specifications are none. A definition of parameters the subtractive
//! clustering needs for good cluster determination are given by Chiu."
//!
//! The algorithm, on data normalized into the unit hypercube:
//!
//! 1. potential of each point: `P_i = Σ_j exp(−α ‖x_i − x_j‖²)`,
//!    `α = 4 / r_a²`;
//! 2. the point with the highest potential becomes a cluster center;
//! 3. subtract its influence: `P_i ← P_i − P* exp(−β ‖x_i − x*‖²)`,
//!    `β = 4 / r_b²`, `r_b = squash · r_a`;
//! 4. accept further centers while the remaining peak potential is above
//!    `accept_ratio · P₁*`; reject below `reject_ratio · P₁*`; in the gray
//!    zone apply Chiu's distance criterion
//!    `d_min/r_a + P*/P₁* ≥ 1`.

// lint: allow(PANIC_IN_LIB, file) -- density kernel over shapes validated at entry; potentials vector sized to n

use crate::normalize::UnitScaler;
use crate::{check_data, ClusterError, Result};
use cqm_math::vector::dist_sq;

/// Parameters of subtractive clustering, defaults per Chiu (1997).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubtractiveParams {
    /// Cluster radius `r_a` in normalized (unit-cube) coordinates.
    pub radius: f64,
    /// Squash factor: `r_b = squash · r_a` (default 1.25).
    pub squash: f64,
    /// Accept a center outright above this fraction of the first potential
    /// (default 0.5).
    pub accept_ratio: f64,
    /// Reject a center outright below this fraction (default 0.15).
    pub reject_ratio: f64,
    /// Hard cap on the number of centers (defense against pathological
    /// parameterizations; default 64).
    pub max_centers: usize,
}

impl Default for SubtractiveParams {
    fn default() -> Self {
        SubtractiveParams {
            radius: 0.5,
            squash: 1.25,
            accept_ratio: 0.5,
            reject_ratio: 0.15,
            max_centers: 64,
        }
    }
}

impl SubtractiveParams {
    /// Validate parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] for out-of-domain values.
    pub fn validate(&self) -> Result<()> {
        if !(self.radius > 0.0 && self.radius.is_finite()) {
            return Err(ClusterError::InvalidParameter {
                name: "radius",
                value: self.radius,
            });
        }
        if !(self.squash > 0.0 && self.squash.is_finite()) {
            return Err(ClusterError::InvalidParameter {
                name: "squash",
                value: self.squash,
            });
        }
        if !(0.0..=1.0).contains(&self.accept_ratio) {
            return Err(ClusterError::InvalidParameter {
                name: "accept_ratio",
                value: self.accept_ratio,
            });
        }
        if !(0.0..=1.0).contains(&self.reject_ratio) || self.reject_ratio > self.accept_ratio {
            return Err(ClusterError::InvalidParameter {
                name: "reject_ratio",
                value: self.reject_ratio,
            });
        }
        if self.max_centers == 0 {
            return Err(ClusterError::InvalidParameter {
                name: "max_centers",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// Result of a subtractive clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtractiveResult {
    /// Cluster centers in the **original** coordinate system.
    pub centers: Vec<Vec<f64>>,
    /// Potential of each accepted center relative to the first (`P*/P₁*`).
    pub relative_potentials: Vec<f64>,
    /// The scaler fitted on the data (maps original ↔ unit cube); exposes
    /// the per-dimension ranges the genfis step needs for its sigmas.
    pub scaler: UnitScaler,
}

/// Subtractive clustering runner.
#[derive(Debug, Clone)]
pub struct SubtractiveClustering {
    params: SubtractiveParams,
}

impl SubtractiveClustering {
    /// Create a runner with the given parameters.
    pub fn new(params: SubtractiveParams) -> Self {
        SubtractiveClustering { params }
    }

    /// The parameters.
    pub fn params(&self) -> &SubtractiveParams {
        &self.params
    }

    /// Run the algorithm on `data` (original coordinates; normalization is
    /// internal).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidData`] on empty/ragged/non-finite data.
    /// * [`ClusterError::InvalidParameter`] from parameter validation.
    pub fn cluster(&self, data: &[Vec<f64>]) -> Result<SubtractiveResult> {
        check_data(data)?;
        self.params.validate()?;
        let scaler = UnitScaler::fit(data)?;
        let x = scaler.transform_all(data)?;
        let n = x.len();

        let alpha = 4.0 / (self.params.radius * self.params.radius);
        let rb = self.params.squash * self.params.radius;
        let beta = 4.0 / (rb * rb);

        // Initial potentials.
        let mut potential = vec![0.0f64; n];
        for i in 0..n {
            // Symmetric: accumulate both halves in one pass.
            potential[i] += 1.0; // j == i term
            for j in (i + 1)..n {
                let d2 = dist_sq(&x[i], &x[j]).expect("equal dims");
                let p = (-alpha * d2).exp();
                potential[i] += p;
                potential[j] += p;
            }
        }

        let mut centers_unit: Vec<Vec<f64>> = Vec::new();
        let mut relative_potentials = Vec::new();
        let mut first_potential = 0.0;

        for _ in 0..self.params.max_centers {
            let (best, p_star) = match cqm_math::vector::argmax(&potential) {
                Some(bp) => bp,
                None => break,
            };
            if centers_unit.is_empty() {
                first_potential = p_star;
                if first_potential <= 0.0 {
                    break;
                }
            }
            let rel = p_star / first_potential;
            let accepted = if rel > self.params.accept_ratio {
                true
            } else if rel < self.params.reject_ratio {
                false
            } else {
                // Gray zone: Chiu's distance criterion.
                let d_min = centers_unit
                    .iter()
                    .map(|c| dist_sq(c, &x[best]).expect("equal dims").sqrt())
                    .fold(f64::INFINITY, f64::min);
                d_min / self.params.radius + rel >= 1.0
            };
            if !accepted {
                break;
            }
            centers_unit.push(x[best].clone());
            relative_potentials.push(rel);
            // Subtract the accepted center's influence.
            for i in 0..n {
                let d2 = dist_sq(&x[i], &x[best]).expect("equal dims");
                potential[i] -= p_star * (-beta * d2).exp();
            }
            // Revisiting the same peak forever is impossible because its own
            // potential drops to ~0, but keep potentials non-negative for the
            // ratio tests.
            for p in potential.iter_mut() {
                if *p < 0.0 {
                    *p = 0.0;
                }
            }
        }

        if centers_unit.is_empty() {
            return Err(ClusterError::InvalidData(
                "no cluster center could be established".into(),
            ));
        }

        let centers = centers_unit
            .iter()
            .map(|c| scaler.inverse(c))
            .collect::<Result<Vec<_>>>()?;
        Ok(SubtractiveResult {
            centers,
            relative_potentials,
            scaler,
        })
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // one-bad-field fixtures
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        // Deterministic ring of points around (cx, cy).
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![cx + spread * t.cos(), cy + spread * t.sin()]
            })
            .collect()
    }

    #[test]
    fn defaults_are_chius() {
        let p = SubtractiveParams::default();
        assert_eq!(p.radius, 0.5);
        assert_eq!(p.squash, 1.25);
        assert_eq!(p.accept_ratio, 0.5);
        assert_eq!(p.reject_ratio, 0.15);
        p.validate().unwrap();
    }

    #[test]
    fn parameter_validation() {
        let mut p = SubtractiveParams::default();
        p.radius = 0.0;
        assert!(p.validate().is_err());
        let mut p = SubtractiveParams::default();
        p.reject_ratio = 0.9; // above accept
        assert!(p.validate().is_err());
        let mut p = SubtractiveParams::default();
        p.accept_ratio = 1.5;
        assert!(p.validate().is_err());
        let mut p = SubtractiveParams::default();
        p.max_centers = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn two_planted_blobs_found() {
        let mut data = blob(0.0, 0.0, 30, 0.05);
        data.extend(blob(10.0, 10.0, 30, 0.05));
        let r = SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&data)
            .unwrap();
        assert_eq!(r.centers.len(), 2, "centers: {:?}", r.centers);
        // One center near each blob (original coordinates).
        let near = |cx: f64, cy: f64| {
            r.centers
                .iter()
                .any(|c| (c[0] - cx).abs() < 1.0 && (c[1] - cy).abs() < 1.0)
        };
        assert!(near(0.0, 0.0));
        assert!(near(10.0, 10.0));
        // First potential is the reference.
        assert_eq!(r.relative_potentials[0], 1.0);
        assert!(r.relative_potentials[1] <= 1.0);
    }

    #[test]
    fn three_blobs_with_smaller_radius() {
        let mut data = blob(0.0, 0.0, 25, 0.1);
        data.extend(blob(5.0, 0.0, 25, 0.1));
        data.extend(blob(0.0, 5.0, 25, 0.1));
        let params = SubtractiveParams {
            radius: 0.3,
            ..SubtractiveParams::default()
        };
        let r = SubtractiveClustering::new(params).cluster(&data).unwrap();
        assert_eq!(r.centers.len(), 3, "centers: {:?}", r.centers);
    }

    #[test]
    fn single_dense_blob_first_center_at_density_peak() {
        // Filled spiral: density concentrates at the middle. Normalization
        // stretches any lone cluster across the whole unit cube, so the
        // meaningful invariants are (a) the first center sits at the density
        // peak and (b) a large radius keeps the center count minimal.
        let data: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let t = i as f64 / 60.0;
                let ang = t * 6.0 * std::f64::consts::TAU;
                vec![3.0 + 0.2 * t * ang.cos(), -2.0 + 0.2 * t * ang.sin()]
            })
            .collect();
        let params = SubtractiveParams {
            radius: 1.0,
            ..SubtractiveParams::default()
        };
        let r = SubtractiveClustering::new(params).cluster(&data).unwrap();
        assert!((r.centers[0][0] - 3.0).abs() < 0.15, "{:?}", r.centers[0]);
        assert!((r.centers[0][1] + 2.0).abs() < 0.15, "{:?}", r.centers[0]);
        assert!(r.centers.len() <= 2, "got {} centers", r.centers.len());
    }

    #[test]
    fn centers_are_data_points() {
        // Subtractive centers are always actual data points.
        let mut data = blob(0.0, 0.0, 10, 0.3);
        data.extend(blob(8.0, 1.0, 10, 0.3));
        let r = SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&data)
            .unwrap();
        for c in &r.centers {
            assert!(
                data.iter()
                    .any(|p| p.iter().zip(c).all(|(a, b)| (a - b).abs() < 1e-9)),
                "center {c:?} is not a data point"
            );
        }
    }

    #[test]
    fn larger_radius_fewer_clusters() {
        let mut data = blob(0.0, 0.0, 20, 0.2);
        data.extend(blob(3.0, 0.0, 20, 0.2));
        data.extend(blob(6.0, 0.0, 20, 0.2));
        data.extend(blob(9.0, 0.0, 20, 0.2));
        let count = |radius: f64| {
            let params = SubtractiveParams {
                radius,
                ..SubtractiveParams::default()
            };
            SubtractiveClustering::new(params)
                .cluster(&data)
                .unwrap()
                .centers
                .len()
        };
        assert!(count(0.2) >= count(0.9), "small radius should find >= clusters");
        assert!(count(0.2) >= 3);
    }

    #[test]
    fn max_centers_caps_output() {
        let data: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let params = SubtractiveParams {
            radius: 0.05,
            max_centers: 4,
            ..SubtractiveParams::default()
        };
        let r = SubtractiveClustering::new(params).cluster(&data).unwrap();
        assert!(r.centers.len() <= 4);
    }

    #[test]
    fn identical_points_give_one_center() {
        let data = vec![vec![1.0, 1.0]; 12];
        let r = SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&data)
            .unwrap();
        assert_eq!(r.centers.len(), 1);
        assert_eq!(r.centers[0], vec![1.0, 1.0]);
    }

    #[test]
    fn empty_data_rejected() {
        assert!(SubtractiveClustering::new(SubtractiveParams::default())
            .cluster(&[])
            .is_err());
    }
}
