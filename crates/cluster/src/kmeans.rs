//! Crisp k-means (Lloyd's algorithm) with deterministic k-means++-style
//! seeding driven by a caller-supplied seed.
//!
//! Not part of the paper's pipeline — it is the sanity baseline the
//! clustering tests and the FCM initializer lean on.

// lint: allow(PANIC_IN_LIB, file) -- dims validated by check_data at entry and k >= 1, n >= k checked; loops index validated shapes

use crate::{check_data, ClusterError, Result};
use cqm_math::vector::dist_sq;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final cluster centers.
    pub centers: Vec<Vec<f64>>,
    /// Per-point cluster assignment.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Run k-means with `k` clusters.
///
/// Seeding is a deterministic k-means++ variant: the first center is the
/// point nearest the data mean, each further center the point with the
/// largest squared distance to its nearest chosen center, with `seed`
/// rotating the starting point for reproducible variation.
///
/// # Errors
///
/// * [`ClusterError::InvalidData`] on bad data or `k > n`.
/// * [`ClusterError::InvalidParameter`] if `k == 0`.
/// * [`ClusterError::NoConvergence`] if assignments still change after the
///   iteration budget (rare; budget is generous).
pub fn kmeans(data: &[Vec<f64>], k: usize, seed: u64) -> Result<KMeansResult> {
    let dim = check_data(data)?;
    if k == 0 {
        return Err(ClusterError::InvalidParameter {
            name: "k",
            value: 0.0,
        });
    }
    let n = data.len();
    if k > n {
        return Err(ClusterError::InvalidData(format!(
            "k = {k} exceeds number of points {n}"
        )));
    }

    // Deterministic greedy seeding.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    let start = (seed as usize) % n;
    centers.push(data[start].clone());
    while centers.len() < k {
        let far = (0..n)
            .max_by(|&i, &j| {
                let di = nearest_dist_sq(&data[i], &centers);
                let dj = nearest_dist_sq(&data[j], &centers);
                di.total_cmp(&dj)
            })
            .expect("non-empty");
        centers.push(data[far].clone());
    }

    let mut assignments = vec![0usize; n];
    let max_iters = 300;
    for iter in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    let da = dist_sq(p, &centers[a]).expect("dims");
                    let db = dist_sq(p, &centers[b]).expect("dims");
                    da.total_cmp(&db)
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in data.iter().zip(&assignments) {
            counts[a] += 1;
            for d in 0..dim {
                sums[a][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = (0..n)
                    .max_by(|&i, &j| {
                        let di = nearest_dist_sq(&data[i], &centers);
                        let dj = nearest_dist_sq(&data[j], &centers);
                        di.total_cmp(&dj)
                    })
                    .expect("non-empty");
                centers[c] = data[far].clone();
                continue;
            }
            for d in 0..dim {
                centers[c][d] = sums[c][d] / counts[c] as f64;
            }
        }
        if !changed && iter > 0 {
            let inertia = data
                .iter()
                .zip(&assignments)
                .map(|(p, &a)| dist_sq(p, &centers[a]).expect("dims"))
                .sum();
            return Ok(KMeansResult {
                centers,
                assignments,
                inertia,
                iterations: iter + 1,
            });
        }
    }
    Err(ClusterError::NoConvergence {
        method: "kmeans",
        iterations: max_iters,
    })
}

fn nearest_dist_sq(p: &[f64], centers: &[Vec<f64>]) -> f64 {
    centers
        .iter()
        .map(|c| dist_sq(p, c).expect("dims"))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.01;
            data.push(vec![0.0 + t, 0.0 - t]);
            data.push(vec![10.0 - t, 10.0 + t]);
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let r = kmeans(&blobs(), 2, 0).unwrap();
        assert_eq!(r.centers.len(), 2);
        // Centers near (0.1, -0.1) and (9.9, 10.1).
        let mut cs = r.centers.clone();
        cs.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert!(cs[0][0] < 1.0 && cs[1][0] > 9.0);
        // All points in a blob share an assignment.
        let first = r.assignments[0];
        for i in (0..40).step_by(2) {
            assert_eq!(r.assignments[i], first);
        }
        assert_ne!(r.assignments[1], first);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let data = vec![vec![0.0], vec![5.0], vec![9.0]];
        let r = kmeans(&data, 3, 0).unwrap();
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn k_one_center_is_mean() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 4.0], vec![4.0, 2.0]];
        let r = kmeans(&data, 1, 7).unwrap();
        assert!((r.centers[0][0] - 2.0).abs() < 1e-12);
        assert!((r.centers[0][1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs() {
        assert!(kmeans(&[], 1, 0).is_err());
        assert!(kmeans(&[vec![1.0]], 0, 0).is_err());
        assert!(kmeans(&[vec![1.0]], 2, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kmeans(&blobs(), 2, 3).unwrap();
        let b = kmeans(&blobs(), 2, 3).unwrap();
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = blobs();
        let i1 = kmeans(&data, 1, 0).unwrap().inertia;
        let i2 = kmeans(&data, 2, 0).unwrap().inertia;
        let i4 = kmeans(&data, 4, 0).unwrap().inertia;
        assert!(i2 < i1);
        assert!(i4 <= i2 + 1e-9);
    }
}
