//! Affine normalization of data into the unit hypercube.
//!
//! Subtractive and mountain clustering measure density with a single radius
//! across all dimensions, so the data must first be scaled into `[0, 1]^d`
//! (Chiu 1994). The transform is remembered so cluster centers can be mapped
//! back to the original coordinates.

// lint: allow(PANIC_IN_LIB, file) -- column indices range over dims validated by check_data

use crate::{check_data, ClusterError, Result};

/// Affine per-dimension normalizer `x' = (x − lo) / (hi − lo)`.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitScaler {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl UnitScaler {
    /// Fit the per-dimension ranges of `data`.
    ///
    /// Dimensions with zero spread are given an artificial unit range so the
    /// transform stays invertible (they map to the constant 0).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidData`] for empty/ragged/non-finite
    /// input.
    pub fn fit(data: &[Vec<f64>]) -> Result<Self> {
        let dim = check_data(data)?;
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in data {
            for d in 0..dim {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        for d in 0..dim {
            if hi[d] - lo[d] <= 0.0 {
                hi[d] = lo[d] + 1.0;
            }
        }
        Ok(UnitScaler { lo, hi })
    }

    /// Dimensionality this scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Per-dimension range width `hi − lo`.
    pub fn ranges(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).collect()
    }

    /// Map one point into the unit cube.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidData`] on dimension mismatch.
    pub fn transform(&self, p: &[f64]) -> Result<Vec<f64>> {
        if p.len() != self.dim() {
            return Err(ClusterError::InvalidData(format!(
                "point has dimension {}, scaler expects {}",
                p.len(),
                self.dim()
            )));
        }
        Ok(p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&x, (&l, &h))| (x - l) / (h - l))
            .collect())
    }

    /// Map a whole data set into the unit cube.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidData`] on dimension mismatch.
    pub fn transform_all(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        data.iter().map(|p| self.transform(p)).collect()
    }

    /// Map a unit-cube point back to original coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidData`] on dimension mismatch.
    pub fn inverse(&self, p: &[f64]) -> Result<Vec<f64>> {
        if p.len() != self.dim() {
            return Err(ClusterError::InvalidData(format!(
                "point has dimension {}, scaler expects {}",
                p.len(),
                self.dim()
            )));
        }
        Ok(p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&x, (&l, &h))| l + x * (h - l))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_round_trip() {
        let data = vec![vec![0.0, 10.0], vec![2.0, 30.0], vec![1.0, 20.0]];
        let s = UnitScaler::fit(&data).unwrap();
        let t = s.transform_all(&data).unwrap();
        assert_eq!(t[0], vec![0.0, 0.0]);
        assert_eq!(t[1], vec![1.0, 1.0]);
        assert_eq!(t[2], vec![0.5, 0.5]);
        for (orig, tr) in data.iter().zip(&t) {
            let back = s.inverse(tr).unwrap();
            for (a, b) in orig.iter().zip(&back) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transformed_data_in_unit_cube() {
        let data = vec![vec![-5.0, 100.0], vec![3.0, -2.0], vec![0.1, 7.0]];
        let s = UnitScaler::fit(&data).unwrap();
        for p in s.transform_all(&data).unwrap() {
            for x in p {
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    #[test]
    fn constant_dimension_handled() {
        let data = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let s = UnitScaler::fit(&data).unwrap();
        let t = s.transform_all(&data).unwrap();
        assert_eq!(t[0][0], 0.0);
        assert_eq!(t[1][0], 0.0);
        assert_eq!(s.ranges(), vec![1.0, 1.0]);
        // Inverse still restores the constant.
        assert_eq!(s.inverse(&t[0]).unwrap()[0], 5.0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let s = UnitScaler::fit(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(s.transform(&[1.0, 2.0]).is_err());
        assert!(s.inverse(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(UnitScaler::fit(&[]).is_err());
    }
}
