//! Fuzzy c-means (Bezdek).
//!
//! Partitional fuzzy baseline: unlike subtractive clustering it needs the
//! cluster count up front, which is exactly why the paper's automated
//! construction does not use it (§2.2.1: "Since there is no knowledge about
//! how many clusters there are, an algorithm is needed that determines the
//! number automatically"). It remains useful as a refinement step and in the
//! validity-index experiments.

// lint: allow(PANIC_IN_LIB, file) -- data/center shapes validated by check_data at entry; membership rows sized to k

use crate::kmeans::kmeans;
use crate::{check_data, ClusterError, Result};
use cqm_math::vector::dist_sq;

/// Result of a fuzzy c-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct FcmResult {
    /// Cluster centers.
    pub centers: Vec<Vec<f64>>,
    /// Membership matrix `u[i][c]` of point `i` in cluster `c`; rows sum
    /// to 1.
    pub memberships: Vec<Vec<f64>>,
    /// Final objective value `Σ_i Σ_c u_ic^m d_ic²`.
    pub objective: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Run fuzzy c-means with `c` clusters and fuzzifier `m` (> 1; 2.0 is the
/// conventional choice).
///
/// # Errors
///
/// * [`ClusterError::InvalidData`] on bad data or `c > n`.
/// * [`ClusterError::InvalidParameter`] if `c == 0` or `m <= 1`.
/// * [`ClusterError::NoConvergence`] if the membership change does not fall
///   below tolerance within the iteration budget.
pub fn fuzzy_c_means(data: &[Vec<f64>], c: usize, m: f64, seed: u64) -> Result<FcmResult> {
    let dim = check_data(data)?;
    if c == 0 {
        return Err(ClusterError::InvalidParameter {
            name: "c",
            value: 0.0,
        });
    }
    if !(m > 1.0 && m.is_finite()) {
        return Err(ClusterError::InvalidParameter { name: "m", value: m });
    }
    let n = data.len();
    if c > n {
        return Err(ClusterError::InvalidData(format!(
            "c = {c} exceeds number of points {n}"
        )));
    }

    // Initialise centers with k-means for robustness and determinism.
    let mut centers = kmeans(data, c, seed)?.centers;
    let mut memberships = vec![vec![0.0; c]; n];
    let exponent = 2.0 / (m - 1.0);
    let max_iters = 300;
    let tol = 1e-7;
    let mut prev_obj = f64::INFINITY;

    for iter in 0..max_iters {
        // Membership update.
        for (i, p) in data.iter().enumerate() {
            let d2: Vec<f64> = centers
                .iter()
                .map(|ctr| dist_sq(p, ctr).expect("dims").max(1e-300))
                .collect();
            // If the point coincides with a center, give it crisp membership.
            if let Some(hit) = d2.iter().position(|&d| d < 1e-18) {
                for (k, u) in memberships[i].iter_mut().enumerate() {
                    *u = if k == hit { 1.0 } else { 0.0 };
                }
                continue;
            }
            // u_ik = 1 / Σ_j (d_ik / d_ij)^(2/(m-1))
            for k in 0..c {
                let s: f64 = d2.iter().map(|&dj| (d2[k] / dj).powf(exponent / 2.0)).sum();
                memberships[i][k] = 1.0 / s;
            }
        }
        // Center update.
        for (k, ctr) in centers.iter_mut().enumerate() {
            let mut num = vec![0.0; dim];
            let mut den = 0.0;
            for (p, u) in data.iter().zip(&memberships) {
                let w = u[k].powf(m);
                den += w;
                for d in 0..dim {
                    num[d] += w * p[d];
                }
            }
            if den > 0.0 {
                for d in 0..dim {
                    ctr[d] = num[d] / den;
                }
            }
        }
        // Objective and convergence.
        let obj: f64 = data
            .iter()
            .zip(&memberships)
            .map(|(p, u)| {
                u.iter()
                    .zip(&centers)
                    .map(|(&uk, ctr)| uk.powf(m) * dist_sq(p, ctr).expect("dims"))
                    .sum::<f64>()
            })
            .sum();
        if (prev_obj - obj).abs() < tol {
            return Ok(FcmResult {
                centers,
                memberships,
                objective: obj,
                iterations: iter + 1,
            });
        }
        prev_obj = obj;
    }
    Err(ClusterError::NoConvergence {
        method: "fcm",
        iterations: max_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for i in 0..15 {
            let t = i as f64 * 0.02;
            data.push(vec![0.0 + t, 0.0]);
            data.push(vec![8.0 - t, 8.0]);
        }
        data
    }

    #[test]
    fn memberships_sum_to_one() {
        let r = fuzzy_c_means(&blobs(), 2, 2.0, 0).unwrap();
        for u in &r.memberships {
            let s: f64 = u.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "membership row sums to {s}");
            for &x in u {
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    #[test]
    fn separates_two_blobs_with_high_membership() {
        let r = fuzzy_c_means(&blobs(), 2, 2.0, 0).unwrap();
        // Every point should belong to its blob with membership > 0.9.
        for (i, u) in r.memberships.iter().enumerate() {
            let peak = u.iter().cloned().fold(0.0, f64::max);
            assert!(peak > 0.9, "point {i} has ambiguous membership {u:?}");
        }
        let mut cs = r.centers.clone();
        cs.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert!(cs[0][0] < 1.0 && cs[1][0] > 7.0);
    }

    #[test]
    fn point_on_center_has_crisp_membership() {
        let data = vec![vec![0.0], vec![0.0], vec![10.0], vec![10.0]];
        let r = fuzzy_c_means(&data, 2, 2.0, 0).unwrap();
        for u in &r.memberships {
            let peak = u.iter().cloned().fold(0.0, f64::max);
            assert!(peak > 0.99);
        }
    }

    #[test]
    fn fuzzier_m_softens_memberships() {
        let data = blobs();
        let crisp = fuzzy_c_means(&data, 2, 1.5, 0).unwrap();
        let soft = fuzzy_c_means(&data, 2, 4.0, 0).unwrap();
        let avg_peak = |r: &FcmResult| {
            r.memberships
                .iter()
                .map(|u| u.iter().cloned().fold(0.0, f64::max))
                .sum::<f64>()
                / r.memberships.len() as f64
        };
        assert!(avg_peak(&crisp) > avg_peak(&soft));
    }

    #[test]
    fn parameter_validation() {
        let data = blobs();
        assert!(fuzzy_c_means(&data, 0, 2.0, 0).is_err());
        assert!(fuzzy_c_means(&data, 2, 1.0, 0).is_err());
        assert!(fuzzy_c_means(&data, 2, f64::NAN, 0).is_err());
        assert!(fuzzy_c_means(&[], 2, 2.0, 0).is_err());
        assert!(fuzzy_c_means(&[vec![1.0]], 2, 2.0, 0).is_err());
    }

    #[test]
    fn objective_nonnegative_and_finite() {
        let r = fuzzy_c_means(&blobs(), 3, 2.0, 1).unwrap();
        assert!(r.objective.is_finite());
        assert!(r.objective >= 0.0);
        assert!(r.iterations >= 1);
    }
}
