//! Mountain clustering (Yager & Filev 1994).
//!
//! The alternative the paper considered and rejected because it "is highly
//! dependent on the grid structure" (§2.2.1). Kept as a fully working
//! implementation so the ABL-CLUST ablation can quantify that dependence:
//! instead of evaluating the density potential at every data point, the
//! mountain method evaluates it on a regular grid over the unit cube, so its
//! centers are grid vertices rather than data points.

// lint: allow(PANIC_IN_LIB, file) -- grid dimensions fixed at construction; peak search operates on non-empty grids

use crate::normalize::UnitScaler;
use crate::{check_data, ClusterError, Result};
use cqm_math::vector::dist_sq;

/// Parameters of mountain clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MountainParams {
    /// Grid points per dimension (total vertices = `grid^dim`).
    pub grid: usize,
    /// Mountain-building exponent factor `α` (density bandwidth).
    pub alpha: f64,
    /// Mountain-destruction factor `β` (typically `1.5 α`).
    pub beta: f64,
    /// Stop when the remaining peak falls below this fraction of the first
    /// peak.
    pub stop_ratio: f64,
    /// Hard cap on the number of centers.
    pub max_centers: usize,
}

impl Default for MountainParams {
    fn default() -> Self {
        MountainParams {
            grid: 10,
            alpha: 5.4,
            beta: 8.1,
            stop_ratio: 0.3,
            max_centers: 64,
        }
    }
}

impl MountainParams {
    /// Validate parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidParameter`] for out-of-domain values.
    pub fn validate(&self) -> Result<()> {
        if self.grid < 2 {
            return Err(ClusterError::InvalidParameter {
                name: "grid",
                value: self.grid as f64,
            });
        }
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err(ClusterError::InvalidParameter {
                name: "alpha",
                value: self.alpha,
            });
        }
        if !(self.beta > 0.0 && self.beta.is_finite()) {
            return Err(ClusterError::InvalidParameter {
                name: "beta",
                value: self.beta,
            });
        }
        if !(0.0..1.0).contains(&self.stop_ratio) {
            return Err(ClusterError::InvalidParameter {
                name: "stop_ratio",
                value: self.stop_ratio,
            });
        }
        if self.max_centers == 0 {
            return Err(ClusterError::InvalidParameter {
                name: "max_centers",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// Result of a mountain clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct MountainResult {
    /// Cluster centers in original coordinates (grid vertices!).
    pub centers: Vec<Vec<f64>>,
    /// Peak mountain value of each accepted center relative to the first.
    pub relative_heights: Vec<f64>,
}

/// Mountain clustering runner.
#[derive(Debug, Clone)]
pub struct MountainClustering {
    params: MountainParams,
}

impl MountainClustering {
    /// Create a runner.
    pub fn new(params: MountainParams) -> Self {
        MountainClustering { params }
    }

    /// Run mountain clustering on `data`.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidData`] on degenerate data or if the grid is
    ///   infeasibly large (`grid^dim > 1e6` vertices).
    /// * [`ClusterError::InvalidParameter`] from validation.
    pub fn cluster(&self, data: &[Vec<f64>]) -> Result<MountainResult> {
        let dim = check_data(data)?;
        self.params.validate()?;
        let vertices = (self.params.grid as f64).powi(dim as i32);
        if vertices > 1e6 {
            return Err(ClusterError::InvalidData(format!(
                "grid of {vertices} vertices is infeasible; reduce grid or dimensionality"
            )));
        }
        let scaler = UnitScaler::fit(data)?;
        let x = scaler.transform_all(data)?;

        // Enumerate grid vertices in the unit cube.
        let g = self.params.grid;
        let mut grid_points: Vec<Vec<f64>> = Vec::with_capacity(vertices as usize);
        let mut idx = vec![0usize; dim];
        loop {
            grid_points.push(idx.iter().map(|&i| i as f64 / (g - 1) as f64).collect());
            // Odometer increment.
            let mut d = 0;
            loop {
                idx[d] += 1;
                if idx[d] < g {
                    break;
                }
                idx[d] = 0;
                d += 1;
                if d == dim {
                    break;
                }
            }
            if d == dim {
                break;
            }
        }

        // Build mountains.
        let mut height: Vec<f64> = grid_points
            .iter()
            .map(|v| {
                x.iter()
                    .map(|p| (-self.params.alpha * dist_sq(v, p).expect("dims")).exp())
                    .sum()
            })
            .collect();

        let mut centers_unit = Vec::new();
        let mut relative_heights = Vec::new();
        let mut first_peak = 0.0;
        for _ in 0..self.params.max_centers {
            let (best, peak) = match cqm_math::vector::argmax(&height) {
                Some(bp) => bp,
                None => break,
            };
            if centers_unit.is_empty() {
                first_peak = peak;
                if first_peak <= 0.0 {
                    break;
                }
            }
            let rel = peak / first_peak;
            if rel < self.params.stop_ratio {
                break;
            }
            centers_unit.push(grid_points[best].clone());
            relative_heights.push(rel);
            // Destroy the mountain around the accepted center.
            for (h, v) in height.iter_mut().zip(&grid_points) {
                let d2 = dist_sq(v, &grid_points[best]).expect("dims");
                *h -= peak * (-self.params.beta * d2).exp();
                if *h < 0.0 {
                    *h = 0.0;
                }
            }
        }

        if centers_unit.is_empty() {
            return Err(ClusterError::InvalidData(
                "no mountain peak could be established".into(),
            ));
        }
        let centers = centers_unit
            .iter()
            .map(|c| scaler.inverse(c))
            .collect::<Result<Vec<_>>>()?;
        Ok(MountainResult {
            centers,
            relative_heights,
        })
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // one-bad-field fixtures
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![cx + spread * t.cos(), cy + spread * t.sin()]
            })
            .collect()
    }

    #[test]
    fn two_blobs_found_near_truth() {
        let mut data = blob(0.0, 0.0, 30, 0.05);
        data.extend(blob(10.0, 10.0, 30, 0.05));
        let r = MountainClustering::new(MountainParams::default())
            .cluster(&data)
            .unwrap();
        assert_eq!(r.centers.len(), 2, "{:?}", r.centers);
        let near = |cx: f64, cy: f64| {
            r.centers
                .iter()
                .any(|c| (c[0] - cx).abs() < 1.5 && (c[1] - cy).abs() < 1.5)
        };
        assert!(near(0.0, 0.0));
        assert!(near(10.0, 10.0));
    }

    #[test]
    fn centers_are_grid_vertices_not_data_points() {
        // Shift blobs off the grid: mountain centers land on grid vertices,
        // demonstrating the grid dependence the paper criticises.
        let mut data = blob(0.37, 0.29, 30, 0.02);
        data.extend(blob(9.61, 9.73, 30, 0.02));
        let params = MountainParams {
            grid: 5,
            ..MountainParams::default()
        };
        let r = MountainClustering::new(params).cluster(&data).unwrap();
        // With 5 grid points over ~[0.35, 9.63] the vertices are coarse;
        // centers cannot coincide with the true blob centers.
        for c in &r.centers {
            let is_data_point = data
                .iter()
                .any(|p| p.iter().zip(c).all(|(a, b)| (a - b).abs() < 1e-9));
            assert!(!is_data_point, "mountain center unexpectedly a data point");
        }
    }

    #[test]
    fn grid_resolution_changes_result() {
        // The documented grid dependence: center positions move with grid.
        // The middle blob normalizes to an interior point no coarse grid
        // vertex can hit (corner blobs normalize onto vertices of *every*
        // grid, so they would mask the effect).
        let mut data = blob(0.0, 0.0, 25, 0.03);
        data.extend(blob(3.1, 4.3, 25, 0.03));
        data.extend(blob(10.0, 10.0, 25, 0.03));
        let run = |grid: usize| {
            let params = MountainParams {
                grid,
                ..MountainParams::default()
            };
            MountainClustering::new(params).cluster(&data).unwrap().centers
        };
        let coarse = run(4);
        let fine = run(21);
        // Grid dependence: the same data yields different center sets under
        // different grid resolutions (subtractive clustering has no such
        // knob — its candidates are the data points themselves).
        let same = coarse.len() == fine.len()
            && coarse
                .iter()
                .zip(&fine)
                .all(|(a, b)| a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9));
        assert!(!same, "coarse and fine grids produced identical centers");
        // And the interior blob cannot be recovered better than the coarse
        // grid spacing allows.
        let err = |centers: &Vec<Vec<f64>>| {
            centers
                .iter()
                .map(|c| ((c[0] - 3.1).powi(2) + (c[1] - 4.3).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min)
        };
        let spacing_coarse = 10.06 / 3.0; // range / (grid - 1)
        assert!(
            err(&coarse) > spacing_coarse / 4.0,
            "coarse grid unexpectedly recovered the interior blob: {}",
            err(&coarse)
        );
    }

    #[test]
    fn parameter_validation() {
        let mut p = MountainParams::default();
        p.grid = 1;
        assert!(p.validate().is_err());
        let mut p = MountainParams::default();
        p.alpha = -1.0;
        assert!(p.validate().is_err());
        let mut p = MountainParams::default();
        p.stop_ratio = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn infeasible_grid_rejected() {
        let data = vec![vec![0.0; 8], vec![1.0; 8]];
        let params = MountainParams {
            grid: 10, // 10^8 vertices
            ..MountainParams::default()
        };
        assert!(MountainClustering::new(params).cluster(&data).is_err());
    }

    #[test]
    fn single_dense_blob_first_peak_near_density_maximum() {
        // A filled spiral concentrates density at the middle; normalization
        // stretches the lone cluster across the grid, so assert on the first
        // (highest) peak rather than an absolute center count.
        let data: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let t = i as f64 / 60.0;
                let ang = t * 6.0 * std::f64::consts::TAU;
                vec![1.0 + 0.1 * t * ang.cos(), 1.0 + 0.1 * t * ang.sin()]
            })
            .collect();
        let r = MountainClustering::new(MountainParams::default())
            .cluster(&data)
            .unwrap();
        assert_eq!(r.relative_heights[0], 1.0);
        assert!((r.centers[0][0] - 1.0).abs() < 0.1, "{:?}", r.centers[0]);
        assert!((r.centers[0][1] - 1.0).abs() < 0.1, "{:?}", r.centers[0]);
    }
}
