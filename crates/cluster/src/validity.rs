//! Cluster-validity indices.
//!
//! Used by the ablation experiments to judge cluster counts produced by the
//! different structure-identification methods.

// lint: allow(PANIC_IN_LIB, file) -- membership/center shapes cross-checked at entry before the index loops

use crate::{check_data, ClusterError, Result};
use cqm_math::vector::dist_sq;

/// Bezdek's partition coefficient `PC = (1/n) Σ_i Σ_c u_ic²`.
///
/// 1 for a crisp partition, `1/c` for a maximally fuzzy one; larger is
/// better.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidData`] for an empty or ragged membership
/// matrix.
pub fn partition_coefficient(memberships: &[Vec<f64>]) -> Result<f64> {
    if memberships.is_empty() || memberships[0].is_empty() {
        return Err(ClusterError::InvalidData("empty membership matrix".into()));
    }
    let c = memberships[0].len();
    if memberships.iter().any(|u| u.len() != c) {
        return Err(ClusterError::InvalidData("ragged membership matrix".into()));
    }
    let n = memberships.len() as f64;
    Ok(memberships
        .iter()
        .map(|u| u.iter().map(|x| x * x).sum::<f64>())
        .sum::<f64>()
        / n)
}

/// Partition entropy `PE = −(1/n) Σ_i Σ_c u_ic ln u_ic`; smaller is better.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidData`] for an empty or ragged membership
/// matrix.
pub fn partition_entropy(memberships: &[Vec<f64>]) -> Result<f64> {
    if memberships.is_empty() || memberships[0].is_empty() {
        return Err(ClusterError::InvalidData("empty membership matrix".into()));
    }
    let c = memberships[0].len();
    if memberships.iter().any(|u| u.len() != c) {
        return Err(ClusterError::InvalidData("ragged membership matrix".into()));
    }
    let n = memberships.len() as f64;
    Ok(-memberships
        .iter()
        .map(|u| {
            u.iter()
                .map(|&x| if x > 0.0 { x * x.ln() } else { 0.0 })
                .sum::<f64>()
        })
        .sum::<f64>()
        / n)
}

/// Xie–Beni index: compactness / separation; smaller is better.
///
/// `XB = Σ_i Σ_c u_ic² d_ic² / (n · min_{j≠k} ‖v_j − v_k‖²)`
///
/// # Errors
///
/// * [`ClusterError::InvalidData`] on inconsistent shapes or fewer than two
///   centers.
pub fn xie_beni(
    data: &[Vec<f64>],
    centers: &[Vec<f64>],
    memberships: &[Vec<f64>],
) -> Result<f64> {
    check_data(data)?;
    if centers.len() < 2 {
        return Err(ClusterError::InvalidData(
            "xie-beni needs at least 2 centers".into(),
        ));
    }
    if memberships.len() != data.len() {
        return Err(ClusterError::InvalidData(
            "membership rows must match data".into(),
        ));
    }
    let mut compactness = 0.0;
    for (p, u) in data.iter().zip(memberships) {
        if u.len() != centers.len() {
            return Err(ClusterError::InvalidData(
                "membership columns must match centers".into(),
            ));
        }
        for (uk, c) in u.iter().zip(centers) {
            compactness += uk * uk * dist_sq(p, c).expect("dims");
        }
    }
    let mut min_sep = f64::INFINITY;
    for j in 0..centers.len() {
        for k in (j + 1)..centers.len() {
            min_sep = min_sep.min(dist_sq(&centers[j], &centers[k]).expect("dims"));
        }
    }
    if min_sep <= 0.0 {
        return Err(ClusterError::InvalidData(
            "duplicate cluster centers".into(),
        ));
    }
    Ok(compactness / (data.len() as f64 * min_sep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crisp_partition_pc_is_one() {
        let u = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!((partition_coefficient(&u).unwrap() - 1.0).abs() < 1e-15);
        assert!(partition_entropy(&u).unwrap().abs() < 1e-15);
    }

    #[test]
    fn uniform_partition_pc_is_inverse_c() {
        let u = vec![vec![0.5, 0.5]; 4];
        assert!((partition_coefficient(&u).unwrap() - 0.5).abs() < 1e-15);
        assert!((partition_entropy(&u).unwrap() - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn pc_orders_sharp_vs_fuzzy() {
        let sharp = vec![vec![0.9, 0.1], vec![0.1, 0.9]];
        let fuzzy = vec![vec![0.6, 0.4], vec![0.4, 0.6]];
        assert!(
            partition_coefficient(&sharp).unwrap() > partition_coefficient(&fuzzy).unwrap()
        );
        assert!(partition_entropy(&sharp).unwrap() < partition_entropy(&fuzzy).unwrap());
    }

    #[test]
    fn empty_or_ragged_rejected() {
        assert!(partition_coefficient(&[]).is_err());
        assert!(partition_coefficient(&[vec![]]).is_err());
        assert!(partition_coefficient(&[vec![1.0], vec![0.5, 0.5]]).is_err());
        assert!(partition_entropy(&[]).is_err());
    }

    #[test]
    fn xie_beni_prefers_separated_tight_clusters() {
        let data = vec![vec![0.0], vec![0.1], vec![9.9], vec![10.0]];
        let good_centers = vec![vec![0.05], vec![9.95]];
        let bad_centers = vec![vec![3.0], vec![7.0]];
        let u = vec![
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
        ];
        let good = xie_beni(&data, &good_centers, &u).unwrap();
        let bad = xie_beni(&data, &bad_centers, &u).unwrap();
        assert!(good < bad);
    }

    #[test]
    fn xie_beni_validation() {
        let data = vec![vec![0.0], vec![1.0]];
        let u = vec![vec![1.0], vec![1.0]];
        assert!(xie_beni(&data, &[vec![0.5]], &u).is_err());
        let dup = vec![vec![0.5], vec![0.5]];
        let u2 = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        assert!(xie_beni(&data, &dup, &u2).is_err());
        assert!(xie_beni(&data, &[vec![0.0], vec![1.0]], &[vec![1.0, 0.0]]).is_err());
    }
}
