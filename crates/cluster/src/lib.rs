//! # cqm-cluster — structure identification for fuzzy systems
//!
//! The paper's automated FIS construction starts with **structure
//! identification**: how many rules are there and where do their membership
//! functions sit? §2.2.1 evaluates two density-based cluster estimators and
//! picks subtractive clustering:
//!
//! > "A mountain clustering could be suitable, but is highly dependent on the
//! > grid structure. We opt for a subtractive clustering instead."
//!
//! * [`subtractive`] — Chiu's subtractive clustering: every data point is a
//!   candidate center, no prior cluster count, parameters per Chiu (1997).
//! * [`mountain`] — Yager–Filev mountain clustering on a regular grid (the
//!   rejected alternative; kept for the ABL-CLUST ablation).
//! * [`fcm`] — fuzzy c-means, the classic partitional baseline.
//! * [`kmeans`] — crisp k-means (used as an initializer and sanity baseline).
//! * [`normalize`] — affine mapping of data into the unit hypercube, which
//!   both density methods require to make their radii meaningful.
//! * [`validity`] — partition validity indices for choosing cluster counts.
//!
//! ```
//! use cqm_cluster::subtractive::{SubtractiveClustering, SubtractiveParams};
//!
//! // Two well-separated planted blobs.
//! let mut data = Vec::new();
//! for i in 0..20 {
//!     let t = i as f64 * 0.001;
//!     data.push(vec![0.1 + t, 0.1 - t]);
//!     data.push(vec![0.9 - t, 0.9 + t]);
//! }
//! let result = SubtractiveClustering::new(SubtractiveParams::default())
//!     .cluster(&data)
//!     .unwrap();
//! assert_eq!(result.centers.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod fcm;
pub mod kmeans;
pub mod mountain;
pub mod normalize;
pub mod subtractive;
pub mod validity;

pub use subtractive::{SubtractiveClustering, SubtractiveParams};

/// Errors produced by the clustering algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The data set was empty or had inconsistent dimensionality.
    InvalidData(String),
    /// An algorithm parameter was out of domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Iterative refinement did not converge.
    NoConvergence {
        /// Algorithm name.
        method: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            ClusterError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            ClusterError::NoConvergence { method, iterations } => {
                write!(f, "{method} did not converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Validate that `data` is a non-empty set of equal-length points and return
/// the dimension.
pub(crate) fn check_data(data: &[Vec<f64>]) -> Result<usize> {
    if data.is_empty() {
        return Err(ClusterError::InvalidData("empty data set".into()));
    }
    let dim = data[0].len();
    if dim == 0 {
        return Err(ClusterError::InvalidData("zero-dimensional points".into()));
    }
    for (i, p) in data.iter().enumerate() {
        if p.len() != dim {
            return Err(ClusterError::InvalidData(format!(
                "point {i} has dimension {} but expected {dim}",
                p.len()
            )));
        }
        if p.iter().any(|x| !x.is_finite()) {
            return Err(ClusterError::InvalidData(format!(
                "point {i} contains a non-finite coordinate"
            )));
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_data_accepts_consistent_points() {
        assert_eq!(check_data(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(), 2);
    }

    #[test]
    fn check_data_rejects_bad_input() {
        assert!(check_data(&[]).is_err());
        assert!(check_data(&[vec![]]).is_err());
        assert!(check_data(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(check_data(&[vec![f64::NAN]]).is_err());
        assert!(check_data(&[vec![f64::INFINITY]]).is_err());
    }

    #[test]
    fn error_display() {
        let e = ClusterError::NoConvergence {
            method: "fcm",
            iterations: 100,
        };
        assert!(e.to_string().contains("fcm"));
    }
}
