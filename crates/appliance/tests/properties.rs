//! Property-based tests for the appliance layer's pure logic.

use cqm_appliance::aggregator::OfficeAggregator;
use cqm_appliance::camera::Snapshot;
use cqm_appliance::events::ContextEvent;
use cqm_appliance::office::score_camera;
use cqm_core::filter::Decision;
use cqm_core::normalize::Quality;
use cqm_sensors::Context;
use proptest::prelude::*;

proptest! {
    #[test]
    fn camera_score_accounting_invariants(
        snaps in prop::collection::vec(0.0f64..100.0, 0..12),
        ends in prop::collection::vec(0.0f64..100.0, 0..8),
        tolerance in 0.5f64..10.0,
    ) {
        let snapshots: Vec<Snapshot> = snaps.iter().map(|&t| Snapshot { t }).collect();
        let m = score_camera(&snapshots, &ends, tolerance, 100.0);
        prop_assert_eq!(m.taken, snapshots.len());
        prop_assert_eq!(m.expected, ends.len());
        // Accounting closes: every snapshot is correct or false; every end
        // is matched or missed.
        prop_assert_eq!(m.correct + m.false_triggers, m.taken);
        prop_assert_eq!(m.correct + m.missed, m.expected);
        prop_assert!(m.correct <= m.taken.min(m.expected));
        let acc = m.decision_accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn perfect_snapshots_score_perfectly(
        ends in prop::collection::vec(1.0f64..100.0, 1..8),
    ) {
        // Distinct, well-separated ends: snapshot exactly at each end.
        let mut sorted = ends.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted.dedup_by(|a, b| (*a - *b).abs() < 2.0);
        let snapshots: Vec<Snapshot> = sorted.iter().map(|&t| Snapshot { t }).collect();
        let m = score_camera(&snapshots, &sorted, 0.5, 200.0);
        prop_assert_eq!(m.correct, sorted.len());
        prop_assert_eq!(m.false_triggers, 0);
        prop_assert_eq!(m.missed, 0);
        prop_assert_eq!(m.decision_accuracy(), 1.0);
    }

    #[test]
    fn aggregator_buckets_cover_event_span(
        times in prop::collection::vec(0.0f64..60.0, 1..40),
        bucket in 1.0f64..10.0,
    ) {
        let events: Vec<ContextEvent> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| ContextEvent {
                source: format!("s{}", i % 3),
                context: Context::ALL[i % 3],
                quality: Quality::Value(0.5 + 0.4 * ((i % 5) as f64 / 5.0)),
                decision: Decision::Accept,
                timestamp: t,
            })
            .collect();
        let agg = OfficeAggregator::new(bucket, true).unwrap();
        let situations = agg.aggregate(&events);
        prop_assert!(!situations.is_empty());
        // Bucket times are multiples of the width, strictly increasing, and
        // cover [min_t, max_t].
        let min_t = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_t = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(situations.first().unwrap().t <= min_t + 1e-9);
        prop_assert!(situations.last().unwrap().t + bucket >= max_t - 1e-9);
        for w in situations.windows(2) {
            prop_assert!((w[1].t - w[0].t - bucket).abs() < 1e-9);
        }
        // Total reports across buckets equals the event count.
        let total: usize = situations.iter().map(|s| s.reports + s.excluded).sum();
        prop_assert_eq!(total, events.len());
    }
}
