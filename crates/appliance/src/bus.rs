//! In-process publish/subscribe event bus.
//!
//! Stands in for the Particle Computer radio network that distributes
//! context events through the AwareOffice. Publishers broadcast to every
//! live subscriber over unbounded crossbeam channels; dropped subscribers
//! are pruned lazily on publish.

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::events::ContextEvent;

/// A cloneable handle to the office event bus.
#[derive(Clone)]
pub struct EventBus {
    inner: Arc<Mutex<Vec<Sender<ContextEvent>>>>,
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new()
    }
}

impl EventBus {
    /// Create an empty bus.
    pub fn new() -> Self {
        EventBus {
            inner: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Subscribe; returns the receiving end of a fresh unbounded channel.
    /// Dropping the receiver unsubscribes (lazily).
    pub fn subscribe(&self) -> Receiver<ContextEvent> {
        let (tx, rx) = unbounded();
        self.inner.lock().push(tx);
        rx
    }

    /// Publish an event to all live subscribers; returns how many received
    /// it. Disconnected subscribers are removed.
    pub fn publish(&self, event: &ContextEvent) -> usize {
        let mut subs = self.inner.lock();
        subs.retain(|tx| tx.send(event.clone()).is_ok());
        subs.len()
    }

    /// Current number of subscribers (may include ones whose receiver was
    /// dropped but not yet pruned).
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().len()
    }

    /// Disconnect all subscribers: their receivers will observe the end of
    /// the stream once drained. Used by the office runner to signal
    /// end-of-scenario.
    pub fn close(&self) {
        self.inner.lock().clear();
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_core::filter::Decision;
    use cqm_core::normalize::Quality;
    use cqm_sensors::Context;

    fn event(t: f64) -> ContextEvent {
        ContextEvent {
            source: "test".into(),
            context: Context::Writing,
            quality: Quality::Value(0.9),
            decision: Decision::Accept,
            timestamp: t,
        }
    }

    #[test]
    fn fan_out_to_all_subscribers() {
        let bus = EventBus::new();
        let rx1 = bus.subscribe();
        let rx2 = bus.subscribe();
        assert_eq!(bus.publish(&event(1.0)), 2);
        assert_eq!(rx1.recv().unwrap().timestamp, 1.0);
        assert_eq!(rx2.recv().unwrap().timestamp, 1.0);
    }

    #[test]
    fn dropped_subscriber_pruned_on_publish() {
        let bus = EventBus::new();
        let rx1 = bus.subscribe();
        {
            let _rx2 = bus.subscribe();
        } // rx2 dropped
        assert_eq!(bus.subscriber_count(), 2);
        assert_eq!(bus.publish(&event(2.0)), 1);
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(rx1.recv().unwrap().timestamp, 2.0);
    }

    #[test]
    fn close_ends_streams() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        bus.publish(&event(1.0));
        bus.close();
        // Buffered event still delivered, then the channel ends.
        assert!(rx.recv().is_ok());
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        let bus2 = bus.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                bus2.publish(&event(i as f64));
            }
            bus2.close();
        });
        let mut count = 0;
        while let Ok(e) = rx.recv() {
            assert_eq!(e.timestamp, count as f64);
            count += 1;
        }
        handle.join().unwrap();
        assert_eq!(count, 10);
    }

    #[test]
    fn publish_without_subscribers_is_fine() {
        let bus = EventBus::new();
        assert_eq!(bus.publish(&event(0.0)), 0);
        assert!(format!("{bus:?}").contains("subscribers"));
    }
}
