//! In-process publish/subscribe event bus.
//!
//! Stands in for the Particle Computer radio network that distributes
//! context events through the AwareOffice. Publishers broadcast to every
//! live subscriber; dropped subscribers are pruned lazily on publish.
//!
//! Two delivery modes exist:
//!
//! * **Unbounded** ([`EventBus::new`]) — the historical behaviour: every
//!   subscriber gets an unbounded queue, a stalled consumer grows it
//!   without limit.
//! * **Bounded** ([`EventBus::bounded`]) — each subscriber gets a queue of
//!   fixed capacity and a [`SlowSubscriberPolicy`] decides what happens
//!   when it fills: shed the oldest queued event, shed the incoming event,
//!   or block the publisher up to a timeout. Shedding is per-subscriber —
//!   one stalled consumer never costs the others an event — and every shed
//!   event is counted, queryable via [`EventBus::health`].

use crossbeam_channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

use crate::events::ContextEvent;
use crate::{ApplianceError, Result};

/// What a bounded bus does when a subscriber's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowSubscriberPolicy {
    /// Evict the oldest queued event to make room (freshest data wins —
    /// the right default for live context, where stale events lose value).
    DropOldest,
    /// Drop the incoming event for that subscriber (history wins).
    DropNewest,
    /// Block the publisher up to the timeout, then drop the incoming event.
    Block {
        /// Longest the publisher will wait on one subscriber.
        timeout: Duration,
    },
}

/// Per-subscriber delivery statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubscriberStats {
    /// Stable id, assigned in subscription order.
    pub id: usize,
    /// Events enqueued to this subscriber.
    pub delivered: u64,
    /// Events shed for this subscriber (policy drops + block timeouts).
    pub dropped: u64,
}

/// A snapshot of the bus's delivery health.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BusHealth {
    /// Live subscribers at snapshot time.
    pub subscribers: usize,
    /// Total publish calls.
    pub published: u64,
    /// Total successful enqueues across all subscribers, live and pruned.
    pub delivered: u64,
    /// Total shed events across all subscribers, live and pruned.
    pub dropped: u64,
    /// Per-subscriber breakdown (live subscribers only).
    pub per_subscriber: Vec<SubscriberStats>,
}

impl BusHealth {
    /// Fraction of attempted deliveries that were shed, in `[0, 1]`.
    pub fn drop_rate(&self) -> f64 {
        let attempts = self.delivered + self.dropped;
        if attempts == 0 {
            0.0
        } else {
            self.dropped as f64 / attempts as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusMode {
    Unbounded,
    Bounded {
        capacity: usize,
        policy: SlowSubscriberPolicy,
    },
}

struct Subscriber {
    id: usize,
    tx: Sender<ContextEvent>,
    delivered: u64,
    dropped: u64,
}

struct BusInner {
    subs: Vec<Subscriber>,
    next_id: usize,
    published: u64,
    /// Totals carried over from pruned subscribers so bus-wide counters
    /// never go backwards.
    retired_delivered: u64,
    retired_dropped: u64,
}

/// A cloneable handle to the office event bus.
#[derive(Clone)]
pub struct EventBus {
    inner: Arc<Mutex<BusInner>>,
    mode: BusMode,
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new()
    }
}

impl EventBus {
    fn with_mode(mode: BusMode) -> Self {
        EventBus {
            inner: Arc::new(Mutex::new(BusInner {
                subs: Vec::new(),
                next_id: 0,
                published: 0,
                retired_delivered: 0,
                retired_dropped: 0,
            })),
            mode,
        }
    }

    /// Create an empty bus with unbounded subscriber queues.
    pub fn new() -> Self {
        EventBus::with_mode(BusMode::Unbounded)
    }

    /// Create an empty bus whose subscribers each get a queue of `capacity`
    /// events, governed by `policy` when full.
    ///
    /// # Errors
    ///
    /// Returns [`ApplianceError::InvalidConfig`] for zero capacity or a
    /// zero `Block` timeout (which would be an unconditional drop dressed
    /// up as a block).
    pub fn bounded(capacity: usize, policy: SlowSubscriberPolicy) -> Result<Self> {
        if capacity == 0 {
            return Err(ApplianceError::InvalidConfig(
                "bus capacity must be positive".into(),
            ));
        }
        if let SlowSubscriberPolicy::Block { timeout } = policy {
            if timeout.is_zero() {
                return Err(ApplianceError::InvalidConfig(
                    "block timeout must be positive; use DropNewest for zero waiting".into(),
                ));
            }
        }
        Ok(EventBus::with_mode(BusMode::Bounded { capacity, policy }))
    }

    /// Subscribe; returns the receiving end of a fresh channel (bounded or
    /// not per the bus mode). Dropping the receiver unsubscribes (lazily).
    pub fn subscribe(&self) -> Receiver<ContextEvent> {
        let (tx, rx) = match self.mode {
            BusMode::Unbounded => unbounded(),
            BusMode::Bounded { capacity, .. } => bounded(capacity),
        };
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.push(Subscriber {
            id,
            tx,
            delivered: 0,
            dropped: 0,
        });
        rx
    }

    /// Publish an event to all live subscribers; returns how many
    /// subscribers the event was actually enqueued to. Disconnected
    /// subscribers are pruned *before* counting, so the return value counts
    /// successful sends only — a full queue under `DropNewest`/`Block` is a
    /// shed (counted in [`EventBus::health`]), not a success.
    pub fn publish(&self, event: &ContextEvent) -> usize {
        let mode = self.mode;
        let mut inner = self.inner.lock();
        inner.published += 1;
        let mut successes = 0usize;
        let mut retired_delivered = 0u64;
        let mut retired_dropped = 0u64;
        inner.subs.retain_mut(|sub| {
            let outcome = deliver(&sub.tx, event, mode);
            match outcome {
                Delivery::Enqueued { evicted } => {
                    sub.delivered += 1;
                    successes += 1;
                    if evicted {
                        sub.dropped += 1;
                    }
                    true
                }
                Delivery::Shed => {
                    sub.dropped += 1;
                    true
                }
                Delivery::Disconnected => {
                    retired_delivered += sub.delivered;
                    retired_dropped += sub.dropped;
                    false
                }
            }
        });
        inner.retired_delivered += retired_delivered;
        inner.retired_dropped += retired_dropped;
        successes
    }

    /// Current number of subscribers (may include ones whose receiver was
    /// dropped but not yet pruned).
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subs.len()
    }

    /// Snapshot the bus's delivery statistics.
    pub fn health(&self) -> BusHealth {
        let inner = self.inner.lock();
        let per_subscriber: Vec<SubscriberStats> = inner
            .subs
            .iter()
            .map(|s| SubscriberStats {
                id: s.id,
                delivered: s.delivered,
                dropped: s.dropped,
            })
            .collect();
        let live_delivered: u64 = per_subscriber.iter().map(|s| s.delivered).sum();
        let live_dropped: u64 = per_subscriber.iter().map(|s| s.dropped).sum();
        BusHealth {
            subscribers: inner.subs.len(),
            published: inner.published,
            delivered: inner.retired_delivered + live_delivered,
            dropped: inner.retired_dropped + live_dropped,
            per_subscriber,
        }
    }

    /// Disconnect all subscribers: their receivers will observe the end of
    /// the stream once drained. Used by the office runner to signal
    /// end-of-scenario.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        let retired: u64 = inner.subs.iter().map(|s| s.delivered).sum();
        let dropped: u64 = inner.subs.iter().map(|s| s.dropped).sum();
        inner.retired_delivered += retired;
        inner.retired_dropped += dropped;
        inner.subs.clear();
    }
}

enum Delivery {
    /// Enqueued; `evicted` marks a DropOldest eviction that made room.
    Enqueued { evicted: bool },
    /// Queue full and the policy shed the incoming event.
    Shed,
    /// The subscriber's receiver is gone.
    Disconnected,
}

fn deliver(tx: &Sender<ContextEvent>, event: &ContextEvent, mode: BusMode) -> Delivery {
    match mode {
        BusMode::Unbounded => match tx.send(event.clone()) {
            Ok(()) => Delivery::Enqueued { evicted: false },
            Err(_) => Delivery::Disconnected,
        },
        BusMode::Bounded { policy, .. } => match policy {
            SlowSubscriberPolicy::DropOldest => match tx.force_send(event.clone()) {
                Ok(evicted) => Delivery::Enqueued {
                    evicted: evicted.is_some(),
                },
                Err(_) => Delivery::Disconnected,
            },
            SlowSubscriberPolicy::DropNewest => match tx.try_send(event.clone()) {
                Ok(()) => Delivery::Enqueued { evicted: false },
                Err(TrySendError::Full(_)) => Delivery::Shed,
                Err(TrySendError::Disconnected(_)) => Delivery::Disconnected,
            },
            SlowSubscriberPolicy::Block { timeout } => {
                match tx.send_timeout(event.clone(), timeout) {
                    Ok(()) => Delivery::Enqueued { evicted: false },
                    Err(e) if e.is_timeout() => Delivery::Shed,
                    Err(_) => Delivery::Disconnected,
                }
            }
        },
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.subscriber_count())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_core::filter::Decision;
    use cqm_core::normalize::Quality;
    use cqm_sensors::Context;
    use std::time::Instant;

    fn event(t: f64) -> ContextEvent {
        ContextEvent {
            source: "test".into(),
            context: Context::Writing,
            quality: Quality::Value(0.9),
            decision: Decision::Accept,
            timestamp: t,
        }
    }

    #[test]
    fn fan_out_to_all_subscribers() {
        let bus = EventBus::new();
        let rx1 = bus.subscribe();
        let rx2 = bus.subscribe();
        assert_eq!(bus.publish(&event(1.0)), 2);
        assert_eq!(rx1.recv().unwrap().timestamp, 1.0);
        assert_eq!(rx2.recv().unwrap().timestamp, 1.0);
    }

    #[test]
    fn dropped_subscriber_pruned_on_publish() {
        let bus = EventBus::new();
        let rx1 = bus.subscribe();
        {
            let _rx2 = bus.subscribe();
        } // rx2 dropped
        assert_eq!(bus.subscriber_count(), 2);
        assert_eq!(bus.publish(&event(2.0)), 1);
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(rx1.recv().unwrap().timestamp, 2.0);
    }

    #[test]
    fn close_ends_streams() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        bus.publish(&event(1.0));
        bus.close();
        // Buffered event still delivered, then the channel ends.
        assert!(rx.recv().is_ok());
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = EventBus::new();
        let rx = bus.subscribe();
        let bus2 = bus.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                bus2.publish(&event(i as f64));
            }
            bus2.close();
        });
        let mut count = 0;
        while let Ok(e) = rx.recv() {
            assert_eq!(e.timestamp, count as f64);
            count += 1;
        }
        handle.join().unwrap();
        assert_eq!(count, 10);
    }

    #[test]
    fn publish_without_subscribers_is_fine() {
        let bus = EventBus::new();
        assert_eq!(bus.publish(&event(0.0)), 0);
        assert!(format!("{bus:?}").contains("subscribers"));
    }

    #[test]
    fn bounded_construction_validated() {
        assert!(EventBus::bounded(0, SlowSubscriberPolicy::DropOldest).is_err());
        assert!(EventBus::bounded(
            4,
            SlowSubscriberPolicy::Block {
                timeout: Duration::ZERO
            }
        )
        .is_err());
        assert!(EventBus::bounded(4, SlowSubscriberPolicy::DropNewest).is_ok());
    }

    #[test]
    fn drop_oldest_keeps_freshest_events() {
        let bus = EventBus::bounded(3, SlowSubscriberPolicy::DropOldest).unwrap();
        let rx = bus.subscribe();
        for i in 0..10 {
            // Every publish succeeds: eviction makes room.
            assert_eq!(bus.publish(&event(i as f64)), 1);
        }
        // The stalled subscriber wakes up and sees exactly the 3 freshest.
        let got: Vec<f64> = rx.try_iter().map(|e| e.timestamp).collect();
        assert_eq!(got, vec![7.0, 8.0, 9.0]);
        let health = bus.health();
        assert_eq!(health.published, 10);
        assert_eq!(health.delivered, 10);
        assert_eq!(health.dropped, 7);
        assert_eq!(health.per_subscriber[0].dropped, 7);
    }

    #[test]
    fn drop_newest_keeps_earliest_events() {
        let bus = EventBus::bounded(3, SlowSubscriberPolicy::DropNewest).unwrap();
        let rx = bus.subscribe();
        let mut successes = 0;
        for i in 0..10 {
            successes += bus.publish(&event(i as f64));
        }
        // Only the first 3 fit; the rest were shed for this subscriber.
        assert_eq!(successes, 3);
        let got: Vec<f64> = rx.try_iter().map(|e| e.timestamp).collect();
        assert_eq!(got, vec![0.0, 1.0, 2.0]);
        let health = bus.health();
        assert_eq!(health.delivered, 3);
        assert_eq!(health.dropped, 7);
        assert!((health.drop_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn stalled_subscriber_does_not_starve_others() {
        let bus = EventBus::bounded(2, SlowSubscriberPolicy::DropNewest).unwrap();
        let stalled = bus.subscribe();
        let healthy = bus.subscribe();
        for i in 0..8 {
            bus.publish(&event(i as f64));
            // The healthy consumer drains every event promptly.
            assert_eq!(healthy.recv().unwrap().timestamp, i as f64);
        }
        let health = bus.health();
        let stalled_stats = health.per_subscriber[0];
        let healthy_stats = health.per_subscriber[1];
        // Drop counters are exact: the stalled queue took 2, shed 6.
        assert_eq!(stalled_stats.delivered, 2);
        assert_eq!(stalled_stats.dropped, 6);
        assert_eq!(healthy_stats.delivered, 8);
        assert_eq!(healthy_stats.dropped, 0);
        drop(stalled);
    }

    #[test]
    fn block_policy_bounds_publisher_latency() {
        let bus = EventBus::bounded(
            1,
            SlowSubscriberPolicy::Block {
                timeout: Duration::from_millis(20),
            },
        )
        .unwrap();
        let _rx = bus.subscribe();
        assert_eq!(bus.publish(&event(0.0)), 1); // fills the queue
        let start = Instant::now();
        assert_eq!(bus.publish(&event(1.0)), 0); // no room: blocks, then sheds
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(15), "returned too early");
        assert!(
            waited < Duration::from_millis(500),
            "publisher blocked far past its timeout"
        );
        assert_eq!(bus.health().dropped, 1);
    }

    #[test]
    fn block_policy_delivers_once_drained() {
        let bus = EventBus::bounded(
            1,
            SlowSubscriberPolicy::Block {
                timeout: Duration::from_millis(200),
            },
        )
        .unwrap();
        let rx = bus.subscribe();
        bus.publish(&event(0.0));
        let bus2 = bus.clone();
        let publisher = std::thread::spawn(move || bus2.publish(&event(1.0)));
        // Drain while the publisher blocks: the send completes inside the
        // timeout instead of shedding.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv().unwrap().timestamp, 0.0);
        assert_eq!(publisher.join().unwrap(), 1);
        assert_eq!(rx.recv().unwrap().timestamp, 1.0);
        assert_eq!(bus.health().dropped, 0);
    }

    #[test]
    fn health_survives_pruning_and_close() {
        let bus = EventBus::bounded(2, SlowSubscriberPolicy::DropNewest).unwrap();
        {
            let _rx = bus.subscribe();
            for i in 0..5 {
                bus.publish(&event(i as f64));
            }
        } // subscriber dropped with 2 delivered / 3 shed on its counters
        bus.publish(&event(9.0)); // prunes it
        let health = bus.health();
        assert_eq!(health.subscribers, 0);
        assert_eq!(health.delivered, 2);
        assert_eq!(health.dropped, 3);
        assert_eq!(health.published, 6);
        // close() on a fresh subscriber also retires its counters.
        let _rx = bus.subscribe();
        bus.publish(&event(10.0));
        bus.close();
        let health = bus.health();
        assert_eq!(health.delivered, 3);
        assert_eq!(BusHealth::default().drop_rate(), 0.0);
    }
}
