//! # cqm-appliance — the AwareOffice appliance simulation
//!
//! The paper's motivating application (§1): the AwarePen publishes detected
//! contexts into the AwareOffice environment; the whiteboard camera consumes
//! them and decides when a writing session has ended so it can photograph
//! the board. Bad context classifications trigger wrong photographs; the
//! CQM lets the camera discard low-quality contexts, improving the decision
//! "by 33 % in our example".
//!
//! * [`events`] — the context event record distributed between appliances;
//! * [`bus`] — an in-process publish/subscribe bus (crossbeam channels),
//!   standing in for the Particle peer-to-peer radio network;
//! * [`pen`] — the AwarePen: sensor node ⊕ TSK classifier ⊕ CQM;
//! * [`camera`] — the whiteboard camera's end-of-writing detector, with
//!   quality filtering on or off;
//! * [`cup`] — a second appliance (MediaCup-style) demonstrating that the
//!   same add-on generalizes ("backed up by other applications built in the
//!   AwareOffice", §5);
//! * [`office`] — the scenario runner wiring pen → bus → camera and scoring
//!   camera decisions against ground truth;
//! * [`aggregator`] — the §5 higher-level context processor fusing all
//!   appliances' qualified reports into office situations.
//!
//! ```no_run
//! use cqm_appliance::office::{run_office, OfficeConfig};
//!
//! let report = run_office(&OfficeConfig::default()).unwrap();
//! // Quality filtering must not hurt the camera's decisions.
//! assert!(report.with_quality.camera.false_triggers
//!     <= report.without_quality.camera.false_triggers);
//! ```

#![forbid(unsafe_code)]

pub mod aggregator;
pub mod bus;
pub mod camera;
pub mod cup;
pub mod events;
pub mod office;
pub mod pen;

/// Errors produced by the appliance layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplianceError {
    /// Propagated from the sensing substrate.
    Sensor(cqm_sensors::SensorError),
    /// Propagated from classifier training.
    Classify(cqm_classify::ClassifyError),
    /// Propagated from the CQM core.
    Core(cqm_core::CqmError),
    /// The appliance was configured inconsistently.
    InvalidConfig(String),
}

impl std::fmt::Display for ApplianceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplianceError::Sensor(e) => write!(f, "sensor error: {e}"),
            ApplianceError::Classify(e) => write!(f, "classify error: {e}"),
            ApplianceError::Core(e) => write!(f, "core error: {e}"),
            ApplianceError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for ApplianceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplianceError::Sensor(e) => Some(e),
            ApplianceError::Classify(e) => Some(e),
            ApplianceError::Core(e) => Some(e),
            ApplianceError::InvalidConfig(_) => None,
        }
    }
}

impl From<cqm_sensors::SensorError> for ApplianceError {
    fn from(e: cqm_sensors::SensorError) -> Self {
        ApplianceError::Sensor(e)
    }
}

impl From<cqm_classify::ClassifyError> for ApplianceError {
    fn from(e: cqm_classify::ClassifyError) -> Self {
        ApplianceError::Classify(e)
    }
}

impl From<cqm_core::CqmError> for ApplianceError {
    fn from(e: cqm_core::CqmError) -> Self {
        ApplianceError::Core(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ApplianceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let e: ApplianceError = cqm_sensors::SensorError::InvalidSpec("s".into()).into();
        assert!(e.to_string().contains("sensor"));
        assert!(std::error::Error::source(&e).is_some());
        let e: ApplianceError = cqm_core::CqmError::InvalidInput("i".into()).into();
        assert!(matches!(e, ApplianceError::Core(_)));
        let e = ApplianceError::InvalidConfig("c".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
