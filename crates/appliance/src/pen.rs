//! The AwarePen appliance: sensor node ⊕ TSK context classifier ⊕ CQM
//! (the full processing chain of the paper's Fig. 4).

use cqm_classify::dataset::ClassifiedDataset;
use cqm_classify::tsk::{FisClassifier, FisClassifierConfig};
use cqm_core::classifier::ClassId;
use cqm_core::pipeline::CqmSystem;
use cqm_core::training::{train_cqm, CqmTrainingConfig, TrainedCqm};
use cqm_sensors::node::{training_corpus, LabeledCues, SensorNode};
use cqm_sensors::synth::Scenario;
use cqm_sensors::Context;

use crate::bus::EventBus;
use crate::events::ContextEvent;
use crate::{ApplianceError, Result};

/// Training artifacts of an AwarePen build.
#[derive(Debug, Clone)]
pub struct PenBuild {
    /// The trained context classifier.
    pub classifier: FisClassifier,
    /// The trained CQM with threshold and analysis statistics.
    pub trained_cqm: TrainedCqm,
    /// Accuracy of the classifier on its training corpus.
    pub train_accuracy: f64,
}

/// Train the complete AwarePen stack from a synthetic corpus.
///
/// # Errors
///
/// Propagates corpus generation, classifier training and CQM training
/// failures.
pub fn train_pen(seed: u64, repetitions: usize) -> Result<PenBuild> {
    let corpus = training_corpus(seed, repetitions)?;
    build_pen_from_corpus(&corpus)
}

/// Train the AwarePen stack from an explicit corpus (used by experiments
/// that control the corpus composition).
///
/// # Errors
///
/// Propagates classifier and CQM training failures.
pub fn build_pen_from_corpus(corpus: &[LabeledCues]) -> Result<PenBuild> {
    let data = ClassifiedDataset::from_labeled_cues(corpus)?;
    let classifier = FisClassifier::train(&data, &FisClassifierConfig::default())?;
    let train_accuracy = classifier.accuracy(&data);
    let truth: Vec<ClassId> = data.labels().to_vec();
    let trained_cqm = train_cqm(
        &classifier,
        data.cues(),
        &truth,
        &CqmTrainingConfig::default(),
    )
    .map_err(ApplianceError::Core)?;
    Ok(PenBuild {
        classifier,
        trained_cqm,
        train_accuracy,
    })
}

/// One published classification together with the ground truth it was
/// scored against (the truth never leaves the simulation).
#[derive(Debug, Clone, PartialEq)]
pub struct PenObservation {
    /// The event as published on the bus.
    pub event: ContextEvent,
    /// Ground-truth context of the window.
    pub truth: Context,
    /// Whether the window straddles a context change.
    pub is_transition: bool,
}

/// The runtime AwarePen appliance.
pub struct AwarePen {
    system: CqmSystem<FisClassifier>,
    node: SensorNode,
    name: String,
}

impl AwarePen {
    /// Assemble a pen from a training build and a sensor node.
    ///
    /// # Errors
    ///
    /// Propagates dimension-mismatch failures from the system composition.
    pub fn new(build: &PenBuild, node: SensorNode) -> Result<Self> {
        let system = CqmSystem::from_trained(build.classifier.clone(), &build.trained_cqm)
            .map_err(ApplianceError::Core)?;
        Ok(AwarePen {
            system,
            node,
            name: "awarepen".into(),
        })
    }

    /// The appliance's bus name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CQM system (for inspection).
    pub fn system(&self) -> &CqmSystem<FisClassifier> {
        &self.system
    }

    /// Run a scenario: classify every window, attach the CQM, publish each
    /// event on the bus, and return the observations with ground truth for
    /// scoring.
    ///
    /// # Errors
    ///
    /// Propagates sensing and classification failures.
    pub fn run_scenario(
        &mut self,
        scenario: &Scenario,
        bus: &EventBus,
    ) -> Result<Vec<PenObservation>> {
        let windows = self.node.run_scenario(scenario)?;
        let mut out = Vec::with_capacity(windows.len());
        for w in windows {
            let qualified = self
                .system
                .classify_with_quality(&w.cues)
                .map_err(ApplianceError::Core)?;
            let context = Context::from_index(qualified.class.0).ok_or_else(|| {
                ApplianceError::InvalidConfig(format!(
                    "classifier emitted unknown class {}",
                    qualified.class
                ))
            })?;
            let event = ContextEvent {
                source: self.name.clone(),
                context,
                quality: qualified.quality,
                decision: qualified.decision,
                timestamp: w.t,
            };
            bus.publish(&event);
            out.push(PenObservation {
                event,
                truth: w.truth,
                is_transition: w.is_transition,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_build() -> PenBuild {
        train_pen(11, 1).expect("pen training")
    }

    #[test]
    fn pen_training_produces_competent_classifier() {
        let build = quick_build();
        assert!(
            build.train_accuracy > 0.8,
            "train accuracy {}",
            build.train_accuracy
        );
        // The CQM found a usable threshold.
        let s = build.trained_cqm.threshold.value;
        assert!(s > 0.0 && s < 1.0, "threshold {s}");
    }

    #[test]
    fn pen_publishes_on_bus_and_scores_against_truth() {
        let build = quick_build();
        let node = SensorNode::with_seed(99);
        let mut pen = AwarePen::new(&build, node).unwrap();
        let bus = EventBus::new();
        let rx = bus.subscribe();
        let obs = pen
            .run_scenario(&Scenario::write_think_write().unwrap(), &bus)
            .unwrap();
        assert!(!obs.is_empty());
        // Everything published.
        bus.close();
        let received: Vec<ContextEvent> = rx.iter().collect();
        assert_eq!(received.len(), obs.len());
        // Most non-transition classifications should be right.
        let clean: Vec<&PenObservation> = obs.iter().filter(|o| !o.is_transition).collect();
        let right = clean
            .iter()
            .filter(|o| o.event.context == o.truth)
            .count();
        assert!(
            right as f64 / clean.len() as f64 > 0.7,
            "{right}/{} clean windows right",
            clean.len()
        );
    }

    #[test]
    fn accepted_events_are_more_accurate_than_discarded() {
        let build = quick_build();
        let node = SensorNode::with_seed(123);
        let mut pen = AwarePen::new(&build, node).unwrap();
        let bus = EventBus::new();
        let scenario = Scenario::balanced_session()
            .unwrap()
            .then(&Scenario::write_think_write().unwrap());
        let obs = pen.run_scenario(&scenario, &bus).unwrap();
        let acc = |pred: &dyn Fn(&&PenObservation) -> bool| {
            let sel: Vec<&PenObservation> = obs.iter().filter(pred).collect();
            if sel.is_empty() {
                return f64::NAN;
            }
            sel.iter().filter(|o| o.event.context == o.truth).count() as f64 / sel.len() as f64
        };
        let accepted = acc(&|o: &&PenObservation| o.event.usable());
        let all = acc(&|_: &&PenObservation| true);
        assert!(
            accepted >= all,
            "accepted accuracy {accepted} should be >= overall {all}"
        );
    }
}
