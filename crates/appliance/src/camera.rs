//! The whiteboard camera appliance.
//!
//! "The context received from the pen is used by the camera of the
//! whiteboard to take a picture copy of the content when a writing session
//! was over" (§1). The camera watches the context stream; after a writing
//! session it snapshots once the context has settled on non-writing for a
//! debounce period. With quality filtering enabled it ignores events the
//! CQM flagged as unreliable — the wrong mid-session "playing"
//! classifications that would otherwise trigger premature photographs.

use crossbeam_channel::Receiver;
use cqm_sensors::Context;

use crate::events::ContextEvent;
use crate::{ApplianceError, Result};

/// Camera decision policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraConfig {
    /// Use only events the publisher's quality filter accepted.
    pub use_quality: bool,
    /// Consecutive non-writing events required to declare the session over.
    pub debounce: usize,
    /// Consecutive writing events required to declare a session started.
    pub arm_count: usize,
}

impl Default for CameraConfig {
    fn default() -> Self {
        CameraConfig {
            use_quality: true,
            debounce: 3,
            arm_count: 2,
        }
    }
}

impl CameraConfig {
    /// Validate the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ApplianceError::InvalidConfig`] for zero counts.
    pub fn validate(&self) -> Result<()> {
        if self.debounce == 0 || self.arm_count == 0 {
            return Err(ApplianceError::InvalidConfig(
                "debounce and arm_count must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// A snapshot the camera decided to take.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Time of the decision (timestamp of the triggering event).
    pub t: f64,
}

/// The whiteboard camera state machine.
#[derive(Debug, Clone)]
pub struct WhiteboardCamera {
    config: CameraConfig,
    writing_streak: usize,
    non_writing_streak: usize,
    session_active: bool,
    snapshots: Vec<Snapshot>,
    events_seen: usize,
    events_used: usize,
}

impl WhiteboardCamera {
    /// Create a camera.
    ///
    /// # Errors
    ///
    /// Propagates config validation.
    pub fn new(config: CameraConfig) -> Result<Self> {
        config.validate()?;
        Ok(WhiteboardCamera {
            config,
            writing_streak: 0,
            non_writing_streak: 0,
            session_active: false,
            snapshots: Vec::new(),
            events_seen: 0,
            events_used: 0,
        })
    }

    /// Process one context event.
    pub fn observe(&mut self, event: &ContextEvent) {
        self.events_seen += 1;
        if self.config.use_quality && !event.usable() {
            return; // quality filter: ignore unreliable context
        }
        self.events_used += 1;
        if event.context == Context::Writing {
            self.writing_streak += 1;
            self.non_writing_streak = 0;
            if self.writing_streak >= self.config.arm_count {
                self.session_active = true;
            }
        } else {
            self.non_writing_streak += 1;
            self.writing_streak = 0;
            if self.session_active && self.non_writing_streak >= self.config.debounce {
                self.snapshots.push(Snapshot { t: event.timestamp });
                self.session_active = false;
                self.non_writing_streak = 0;
            }
        }
    }

    /// Drain an event channel until it closes (office-runner entry point).
    pub fn run(&mut self, rx: &Receiver<ContextEvent>) {
        while let Ok(event) = rx.recv() {
            self.observe(&event);
        }
        self.finish();
    }

    /// Declare end-of-scenario: an armed session that never saw its
    /// debounce still produces its photograph (someone wrote and left).
    pub fn finish(&mut self) {
        if self.session_active {
            self.snapshots.push(Snapshot { t: f64::INFINITY });
            self.session_active = false;
        }
    }

    /// Snapshots taken so far.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Events observed / actually used (after quality filtering).
    pub fn event_counts(&self) -> (usize, usize) {
        (self.events_seen, self.events_used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_core::filter::Decision;
    use cqm_core::normalize::Quality;

    fn ev(t: f64, context: Context, decision: Decision) -> ContextEvent {
        ContextEvent {
            source: "pen".into(),
            context,
            quality: Quality::Value(if decision == Decision::Accept { 0.9 } else { 0.3 }),
            decision,
            timestamp: t,
        }
    }

    fn writing(t: f64) -> ContextEvent {
        ev(t, Context::Writing, Decision::Accept)
    }

    fn still(t: f64) -> ContextEvent {
        ev(t, Context::LyingStill, Decision::Accept)
    }

    #[test]
    fn config_validation() {
        assert!(CameraConfig {
            debounce: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CameraConfig::default().validate().is_ok());
    }

    #[test]
    fn snapshot_after_session_end() {
        let mut cam = WhiteboardCamera::new(CameraConfig::default()).unwrap();
        for t in 0..5 {
            cam.observe(&writing(t as f64));
        }
        for t in 5..8 {
            cam.observe(&still(t as f64));
        }
        assert_eq!(cam.snapshots().len(), 1);
        assert_eq!(cam.snapshots()[0].t, 7.0);
    }

    #[test]
    fn no_snapshot_without_session() {
        let mut cam = WhiteboardCamera::new(CameraConfig::default()).unwrap();
        for t in 0..10 {
            cam.observe(&still(t as f64));
        }
        cam.finish();
        assert!(cam.snapshots().is_empty());
    }

    #[test]
    fn debounce_suppresses_blips() {
        // One spurious non-writing event inside a session must not trigger.
        let mut cam = WhiteboardCamera::new(CameraConfig::default()).unwrap();
        cam.observe(&writing(0.0));
        cam.observe(&writing(1.0));
        cam.observe(&ev(2.0, Context::Playing, Decision::Accept));
        cam.observe(&writing(3.0));
        cam.observe(&ev(4.0, Context::Playing, Decision::Accept));
        cam.observe(&writing(5.0));
        cam.finish();
        // Session still armed at the end: exactly one final snapshot.
        assert_eq!(cam.snapshots().len(), 1);
        assert_eq!(cam.snapshots()[0].t, f64::INFINITY);
    }

    #[test]
    fn quality_filter_drops_discarded_events() {
        let mut with_q = WhiteboardCamera::new(CameraConfig::default()).unwrap();
        let mut without_q = WhiteboardCamera::new(CameraConfig {
            use_quality: false,
            ..CameraConfig::default()
        })
        .unwrap();
        // A writing session interrupted by *discarded* (low-quality)
        // playing classifications — the §1 scenario.
        let mut events = Vec::new();
        for t in 0..4 {
            events.push(writing(t as f64));
        }
        for t in 4..8 {
            events.push(ev(t as f64, Context::Playing, Decision::Discard));
        }
        for t in 8..12 {
            events.push(writing(t as f64));
        }
        for t in 12..16 {
            events.push(still(t as f64));
        }
        for e in &events {
            with_q.observe(e);
            without_q.observe(e);
        }
        with_q.finish();
        without_q.finish();
        // Quality-aware camera: one snapshot at the true session end.
        assert_eq!(with_q.snapshots().len(), 1);
        assert_eq!(with_q.snapshots()[0].t, 14.0);
        // Naive camera: the fake playing burst triggers an extra snapshot.
        assert_eq!(without_q.snapshots().len(), 2);
        let (seen, used) = with_q.event_counts();
        assert_eq!(seen, 16);
        assert_eq!(used, 12);
    }

    #[test]
    fn run_drains_channel() {
        let (tx, rx) = crossbeam_channel::unbounded();
        for t in 0..3 {
            tx.send(writing(t as f64)).unwrap();
        }
        for t in 3..6 {
            tx.send(still(t as f64)).unwrap();
        }
        drop(tx);
        let mut cam = WhiteboardCamera::new(CameraConfig::default()).unwrap();
        cam.run(&rx);
        assert_eq!(cam.snapshots().len(), 1);
    }
}
