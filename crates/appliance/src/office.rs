//! The AwareOffice scenario runner: pen → bus → cameras, scored against
//! ground truth.
//!
//! One pen run feeds two cameras concurrently — one quality-aware, one
//! naive — so both see the *identical* event stream and the comparison
//! isolates exactly the effect of the CQM filter (the paper's improvement
//! claim).

// lint: allow(PANIC_IN_LIB, file) -- simulation harness: scenario invariants are established by the setup code

use cqm_core::normalize::Quality;
use cqm_sensors::synth::Scenario;
use cqm_sensors::{Context, SensorNode};
use cqm_stats::confusion::FilterOutcome;

use crate::bus::EventBus;
use crate::camera::{CameraConfig, Snapshot, WhiteboardCamera};
use crate::pen::{train_pen, AwarePen, PenBuild, PenObservation};
use crate::{ApplianceError, Result};

/// Office experiment configuration.
#[derive(Debug, Clone)]
pub struct OfficeConfig {
    /// Seed for training corpus and runtime sensing.
    pub seed: u64,
    /// Training corpus repetitions (per user style).
    pub training_repetitions: usize,
    /// The runtime scenario.
    pub scenario: Scenario,
    /// Camera debounce/arming policy (quality use is set per camera).
    pub camera: CameraConfig,
    /// Tolerance (seconds) when matching snapshots to true session ends.
    pub match_tolerance: f64,
}

impl Default for OfficeConfig {
    fn default() -> Self {
        OfficeConfig {
            seed: 42,
            training_repetitions: 1,
            scenario: Scenario::write_think_write()
                .expect("built-in scenario")
                .then(&Scenario::balanced_session().expect("built-in scenario")),
            camera: CameraConfig::default(),
            match_tolerance: 6.0,
        }
    }
}

/// Camera scoring against the scenario's true writing-session ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CameraMetrics {
    /// True writing sessions in the scenario.
    pub expected: usize,
    /// Snapshots the camera took.
    pub taken: usize,
    /// Snapshots matched to a true session end within tolerance.
    pub correct: usize,
    /// Snapshots with no matching session end.
    pub false_triggers: usize,
    /// Session ends with no matching snapshot.
    pub missed: usize,
}

impl CameraMetrics {
    /// Decision accuracy: correct / (correct + false + missed); 1.0 when
    /// nothing was expected and nothing taken.
    pub fn decision_accuracy(&self) -> f64 {
        let denom = self.correct + self.false_triggers + self.missed;
        if denom == 0 {
            1.0
        } else {
            self.correct as f64 / denom as f64
        }
    }
}

/// Outcome of one camera variant.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Snapshot scoring.
    pub camera: CameraMetrics,
    /// Events the camera observed / acted on.
    pub events_seen: usize,
    /// Events used after (optional) quality filtering.
    pub events_used: usize,
}

/// Complete office experiment report.
#[derive(Debug, Clone)]
pub struct OfficeReport {
    /// Quality-aware camera.
    pub with_quality: RunSummary,
    /// Naive camera (ignores the CQM).
    pub without_quality: RunSummary,
    /// Pen-level filter accounting over the run (the 33 % discard story).
    pub filter: FilterOutcome,
    /// Raw classification accuracy of the pen over the run.
    pub pen_accuracy: f64,
    /// Accuracy among accepted classifications.
    pub pen_accuracy_accepted: f64,
    /// The training build (for further inspection).
    pub build: PenBuild,
    /// The raw observations (events + ground truth).
    pub observations: Vec<PenObservation>,
}

/// True end times of writing sessions in a scenario (a session is a maximal
/// run of `Writing` segments).
pub fn writing_session_ends(scenario: &Scenario) -> Vec<f64> {
    let mut ends = Vec::new();
    let mut t = 0.0;
    let mut in_session = false;
    for &(context, duration) in scenario.segments() {
        if context == Context::Writing {
            in_session = true;
        } else if in_session {
            ends.push(t);
            in_session = false;
        }
        t += duration;
    }
    if in_session {
        ends.push(t);
    }
    ends
}

/// Greedy time-based matching of snapshots to session ends.
pub fn score_camera(
    snapshots: &[Snapshot],
    session_ends: &[f64],
    tolerance: f64,
    scenario_end: f64,
) -> CameraMetrics {
    let mut matched_end = vec![false; session_ends.len()];
    let mut correct = 0usize;
    let mut false_triggers = 0usize;
    for snap in snapshots {
        // The end-of-scenario snapshot (t = inf) matches a session that ran
        // until the scenario ended.
        let t = if snap.t.is_finite() {
            snap.t
        } else {
            scenario_end
        };
        let hit = session_ends
            .iter()
            .enumerate()
            .filter(|(i, &end)| !matched_end[*i] && t >= end - tolerance && t <= end + tolerance)
            .min_by(|(_, a), (_, b)| (t - **a).abs().total_cmp(&(t - **b).abs()))
            .map(|(i, _)| i);
        match hit {
            Some(i) => {
                matched_end[i] = true;
                correct += 1;
            }
            None => false_triggers += 1,
        }
    }
    let missed = matched_end.iter().filter(|&&m| !m).count();
    CameraMetrics {
        expected: session_ends.len(),
        taken: snapshots.len(),
        correct,
        false_triggers,
        missed,
    }
}

/// Run the complete office experiment.
///
/// # Errors
///
/// Propagates pen training, sensing and camera configuration failures.
pub fn run_office(config: &OfficeConfig) -> Result<OfficeReport> {
    let build = train_pen(config.seed, config.training_repetitions)?;
    run_office_with_build(config, build)
}

/// Run the office experiment with an existing pen build (lets experiments
/// reuse one training run across scenario variations).
///
/// # Errors
///
/// Propagates sensing and camera configuration failures.
pub fn run_office_with_build(config: &OfficeConfig, build: PenBuild) -> Result<OfficeReport> {
    let node = SensorNode::with_seed(config.seed ^ 0xC0FFEE);
    let mut pen = AwarePen::new(&build, node)?;
    let bus = EventBus::new();

    let quality_rx = bus.subscribe();
    let naive_rx = bus.subscribe();
    let cam_cfg = config.camera;
    let quality_cam = std::thread::spawn(move || {
        let mut cam = WhiteboardCamera::new(CameraConfig {
            use_quality: true,
            ..cam_cfg
        })
        .expect("validated config");
        cam.run(&quality_rx);
        cam
    });
    let naive_cam = std::thread::spawn(move || {
        let mut cam = WhiteboardCamera::new(CameraConfig {
            use_quality: false,
            ..cam_cfg
        })
        .expect("validated config");
        cam.run(&naive_rx);
        cam
    });

    let observations = pen.run_scenario(&config.scenario, &bus)?;
    bus.close();
    let quality_cam = quality_cam.join().expect("camera thread");
    let naive_cam = naive_cam.join().expect("camera thread");

    // Pen-level filter accounting.
    let filter = pen.system().filter();
    let labeled: Vec<(Quality, bool)> = observations
        .iter()
        .map(|o| (o.event.quality, o.event.context == o.truth))
        .collect();
    let filter_outcome = filter.evaluate(&labeled);

    let right = observations
        .iter()
        .filter(|o| o.event.context == o.truth)
        .count();
    let pen_accuracy = right as f64 / observations.len().max(1) as f64;

    let ends = writing_session_ends(&config.scenario);
    let scenario_end = config.scenario.duration();
    let summarize = |cam: &WhiteboardCamera| {
        let (seen, used) = cam.event_counts();
        RunSummary {
            camera: score_camera(cam.snapshots(), &ends, config.match_tolerance, scenario_end),
            events_seen: seen,
            events_used: used,
        }
    };

    Ok(OfficeReport {
        with_quality: summarize(&quality_cam),
        without_quality: summarize(&naive_cam),
        filter: filter_outcome,
        pen_accuracy,
        pen_accuracy_accepted: filter_outcome.accuracy_after(),
        build,
        observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_ends_computed() {
        let s = Scenario::write_think_write().unwrap();
        // write(2..10), play(10..13), write(13..19), still(19..21):
        // sessions end at 10 and 19.
        assert_eq!(writing_session_ends(&s), vec![10.0, 19.0]);
        // Trailing writing counts as ending at scenario end.
        let s = Scenario::new(vec![
            (Context::LyingStill, 1.0),
            (Context::Writing, 4.0),
        ])
        .unwrap();
        assert_eq!(writing_session_ends(&s), vec![5.0]);
    }

    #[test]
    fn score_matches_greedily() {
        let snaps = [Snapshot { t: 11.0 }, Snapshot { t: 40.0 }];
        let ends = [10.0, 19.0];
        let m = score_camera(&snaps, &ends, 5.0, 50.0);
        assert_eq!(m.correct, 1);
        assert_eq!(m.false_triggers, 1);
        assert_eq!(m.missed, 1);
        assert_eq!(m.expected, 2);
        assert_eq!(m.taken, 2);
        assert!((m.decision_accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn infinity_snapshot_matches_scenario_end() {
        let snaps = [Snapshot { t: f64::INFINITY }];
        let ends = [30.0];
        let m = score_camera(&snaps, &ends, 5.0, 30.0);
        assert_eq!(m.correct, 1);
    }

    #[test]
    fn empty_everything_is_perfect() {
        let m = score_camera(&[], &[], 5.0, 10.0);
        assert_eq!(m.decision_accuracy(), 1.0);
    }

    #[test]
    fn office_run_end_to_end() {
        // A single short run is statistically noisy, so per-run assertions
        // cover invariants only; the improvement claim is asserted on the
        // aggregate over several independent runs.
        let mut agg_false = [0usize; 2]; // [with_quality, naive]
        let mut agg_correct = [0usize; 2];
        for seed in [5u64, 106, 207] {
            let config = OfficeConfig {
                seed,
                ..OfficeConfig::default()
            };
            let report = run_office(&config).unwrap();
            assert!(!report.observations.is_empty());
            // Both cameras saw the same stream; the quality one used fewer.
            assert_eq!(
                report.with_quality.events_seen,
                report.without_quality.events_seen
            );
            assert!(report.with_quality.events_used <= report.without_quality.events_used);
            // Filtering must not reduce accepted-accuracy below raw
            // accuracy.
            assert!(
                report.pen_accuracy_accepted + 1e-9 >= report.pen_accuracy,
                "accepted {} < raw {}",
                report.pen_accuracy_accepted,
                report.pen_accuracy
            );
            agg_false[0] += report.with_quality.camera.false_triggers;
            agg_false[1] += report.without_quality.camera.false_triggers;
            agg_correct[0] += report.with_quality.camera.correct;
            agg_correct[1] += report.without_quality.camera.correct;
        }
        // Aggregate: the quality-aware camera takes fewer false photographs
        // without losing correct ones.
        assert!(
            agg_false[0] <= agg_false[1],
            "false triggers with quality {} vs naive {}",
            agg_false[0],
            agg_false[1]
        );
        assert!(
            agg_correct[0] + 1 >= agg_correct[1],
            "correct with quality {} vs naive {}",
            agg_correct[0],
            agg_correct[1]
        );
    }
}

/// Result of the two-pen fusion experiment (the §5 outlook "fusion and
/// aggregation for higher level contexts" exercised end-to-end).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionReport {
    /// Accuracy of the first pen alone.
    pub pen_a_accuracy: f64,
    /// Accuracy of the second pen alone.
    pub pen_b_accuracy: f64,
    /// Accuracy of the quality-weighted fusion of both.
    pub fused_accuracy: f64,
    /// Windows fused (both pens produced a usable quality).
    pub fused_windows: usize,
    /// Windows where fusion had to fall back to a single report or none.
    pub degraded_windows: usize,
}

/// Run the same scenario through two independently trained pens (different
/// seeds, different noise, same timeline) and fuse their per-window reports
/// with quality weighting.
///
/// # Errors
///
/// Propagates training and sensing failures.
pub fn run_fused_pens(scenario: &Scenario, seed_a: u64, seed_b: u64) -> Result<FusionReport> {
    use cqm_core::fusion::{fuse, ContextReport, FusionRule};

    let build_a = train_pen(seed_a, 1)?;
    let build_b = train_pen(seed_b, 1)?;
    let bus = EventBus::new();
    let mut pen_a = AwarePen::new(&build_a, SensorNode::with_seed(seed_a ^ 0xAA))?;
    let mut pen_b = AwarePen::new(&build_b, SensorNode::with_seed(seed_b ^ 0xBB))?;
    let obs_a = pen_a.run_scenario(scenario, &bus)?;
    let obs_b = pen_b.run_scenario(scenario, &bus)?;
    if obs_a.len() != obs_b.len() {
        return Err(ApplianceError::InvalidConfig(format!(
            "pens produced different window counts: {} vs {}",
            obs_a.len(),
            obs_b.len()
        )));
    }

    let acc = |obs: &[PenObservation]| {
        obs.iter().filter(|o| o.event.context == o.truth).count() as f64 / obs.len().max(1) as f64
    };
    let mut fused_right = 0usize;
    let mut fused_windows = 0usize;
    let mut degraded = 0usize;
    for (a, b) in obs_a.iter().zip(&obs_b) {
        debug_assert_eq!(a.truth, b.truth, "pens observe the same timeline");
        let reports = vec![
            ContextReport {
                source: "pen-a".into(),
                class: cqm_core::ClassId(a.event.context.index()),
                quality: a.event.quality,
            },
            ContextReport {
                source: "pen-b".into(),
                class: cqm_core::ClassId(b.event.context.index()),
                quality: b.event.quality,
            },
        ];
        match fuse(&reports, FusionRule::WeightedSum) {
            Ok(fused) => {
                fused_windows += 1;
                if fused.class.0 == a.truth.index() {
                    fused_right += 1;
                }
                if fused.epsilon_reports > 0 {
                    degraded += 1;
                }
            }
            Err(_) => degraded += 1,
        }
    }
    Ok(FusionReport {
        pen_a_accuracy: acc(&obs_a),
        pen_b_accuracy: acc(&obs_b),
        fused_accuracy: fused_right as f64 / fused_windows.max(1) as f64,
        fused_windows,
        degraded_windows: degraded,
    })
}

#[cfg(test)]
mod fusion_tests {
    use super::*;

    #[test]
    fn fusion_not_worse_than_weaker_pen() {
        let scenario = Scenario::balanced_session().unwrap();
        let report = run_fused_pens(&scenario, 21, 22).unwrap();
        assert!(report.fused_windows > 0);
        let weakest = report.pen_a_accuracy.min(report.pen_b_accuracy);
        assert!(
            report.fused_accuracy + 0.05 >= weakest,
            "fusion {:.3} collapsed below weakest pen {:.3}",
            report.fused_accuracy,
            weakest
        );
    }
}
