//! A second appliance: the MediaCup-style coffee cup.
//!
//! The paper notes the improvement "is backed up by other applications built
//! in the AwareOffice" (§5). The cup reuses the same motion substrate with
//! cup semantics — *standing* (≈ no motion), *drinking* (≈ small gestures),
//! *carried* (≈ large motion) — and runs the identical classifier ⊕ CQM
//! stack, demonstrating that the add-on is appliance-agnostic.

use cqm_sensors::Context;
use serde::{Deserialize, Serialize};

/// Cup usage contexts, mapped onto the shared motion classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CupContext {
    /// The cup stands on the table.
    Standing,
    /// Someone drinks from the cup (short tilt gestures).
    Drinking,
    /// The cup is carried around.
    Carried,
}

impl CupContext {
    /// All cup contexts in index order.
    pub const ALL: [CupContext; 3] = [
        CupContext::Standing,
        CupContext::Drinking,
        CupContext::Carried,
    ];

    /// Stable class index (shared with the motion substrate).
    pub fn index(&self) -> usize {
        self.motion_class().index()
    }

    /// The underlying motion class driving the accelerometer model.
    pub fn motion_class(&self) -> Context {
        match self {
            CupContext::Standing => Context::LyingStill,
            CupContext::Drinking => Context::Writing,
            CupContext::Carried => Context::Playing,
        }
    }

    /// Inverse of [`CupContext::index`].
    pub fn from_index(i: usize) -> Option<CupContext> {
        CupContext::ALL.get(i).copied()
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CupContext::Standing => "standing",
            CupContext::Drinking => "drinking",
            CupContext::Carried => "carried",
        }
    }
}

impl std::fmt::Display for CupContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for c in CupContext::ALL {
            assert_eq!(CupContext::from_index(c.index()), Some(c));
        }
        assert_eq!(CupContext::from_index(5), None);
    }

    #[test]
    fn motion_mapping_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for c in CupContext::ALL {
            assert!(seen.insert(c.motion_class()));
        }
    }

    #[test]
    fn names() {
        assert_eq!(CupContext::Drinking.to_string(), "drinking");
        assert_eq!(CupContext::Standing.name(), "standing");
    }
}

use cqm_classify::dataset::ClassifiedDataset;
use cqm_classify::tsk::{FisClassifier, FisClassifierConfig};
use cqm_core::classifier::ClassId;
use cqm_core::pipeline::CqmSystem;
use cqm_core::training::{train_cqm, CqmTrainingConfig, TrainedCqm};
use cqm_sensors::node::{NodeConfig, SensorNode};
use cqm_sensors::synth::Scenario;
use cqm_sensors::user::UserStyle;

use crate::bus::EventBus;
use crate::events::ContextEvent;
use crate::{ApplianceError, Result};

/// Training artifacts of a MediaCup build (same stack as the pen: TSK
/// classifier + CQM).
#[derive(Debug, Clone)]
pub struct CupBuild {
    /// The trained context classifier.
    pub classifier: FisClassifier,
    /// The trained CQM.
    pub trained_cqm: TrainedCqm,
}

/// A cup usage scenario in cup semantics.
pub fn cup_scenario(segments: Vec<(CupContext, f64)>) -> Result<Scenario> {
    let mapped = segments
        .into_iter()
        .map(|(c, d)| (c.motion_class(), d))
        .collect();
    Scenario::new(mapped).map_err(ApplianceError::Sensor)
}

/// A typical coffee-break session: stand, drink, stand, carry away.
///
/// # Errors
///
/// Never fails for the built-in constants.
pub fn coffee_break() -> Result<Scenario> {
    cup_scenario(vec![
        (CupContext::Standing, 6.0),
        (CupContext::Drinking, 4.0),
        (CupContext::Standing, 5.0),
        (CupContext::Drinking, 3.0),
        (CupContext::Carried, 5.0),
    ])
}

/// Train the complete MediaCup stack on a synthetic cup corpus. The cup's
/// motion profile differs from the pen's (slower tempo, less vigor), which
/// is exactly the kind of appliance variation §5's generality claim covers.
///
/// # Errors
///
/// Propagates corpus generation and training failures.
pub fn train_cup(seed: u64) -> Result<CupBuild> {
    // Cup users: sipping is slow and gentle; carrying is moderate.
    let styles = [
        UserStyle::new(0.7, 0.6, 0.05).map_err(ApplianceError::Sensor)?,
        UserStyle::new(1.1, 0.8, 0.1).map_err(ApplianceError::Sensor)?,
        UserStyle::new(1.5, 1.0, 0.2).map_err(ApplianceError::Sensor)?,
    ];
    let scenario = coffee_break()?.then(&cup_scenario(vec![
        (CupContext::Carried, 6.0),
        (CupContext::Standing, 6.0),
        (CupContext::Drinking, 6.0),
        (CupContext::Carried, 4.0),
    ])?);
    let mut corpus = Vec::new();
    for (si, style) in styles.iter().enumerate() {
        let node_seed = seed.wrapping_mul(0x517CC1B727220A95).wrapping_add(si as u64);
        let mut node = SensorNode::new(NodeConfig::default(), *style, node_seed)?;
        corpus.extend(node.run_scenario(&scenario)?);
    }
    let data = ClassifiedDataset::from_labeled_cues(&corpus)?;
    let classifier = FisClassifier::train(&data, &FisClassifierConfig::default())?;
    let truth: Vec<ClassId> = data.labels().to_vec();
    let trained_cqm = train_cqm(
        &classifier,
        data.cues(),
        &truth,
        &CqmTrainingConfig::default(),
    )
    .map_err(ApplianceError::Core)?;
    Ok(CupBuild {
        classifier,
        trained_cqm,
    })
}

/// The runtime MediaCup appliance: publishes qualified cup contexts on the
/// office bus under the source name `mediacup`.
pub struct MediaCup {
    system: CqmSystem<FisClassifier>,
    node: SensorNode,
}

impl MediaCup {
    /// Assemble a cup from a training build and a sensor node.
    ///
    /// # Errors
    ///
    /// Propagates composition failures.
    pub fn new(build: &CupBuild, node: SensorNode) -> Result<Self> {
        let system = CqmSystem::from_trained(build.classifier.clone(), &build.trained_cqm)
            .map_err(ApplianceError::Core)?;
        Ok(MediaCup { system, node })
    }

    /// Run a cup scenario and publish qualified events. Returns the
    /// observations with ground truth (in cup semantics).
    ///
    /// # Errors
    ///
    /// Propagates sensing and classification failures.
    pub fn run_scenario(
        &mut self,
        scenario: &Scenario,
        bus: &EventBus,
    ) -> Result<Vec<(ContextEvent, CupContext)>> {
        let windows = self.node.run_scenario(scenario)?;
        let mut out = Vec::with_capacity(windows.len());
        for w in windows {
            let qualified = self
                .system
                .classify_with_quality(&w.cues)
                .map_err(ApplianceError::Core)?;
            let context = Context::from_index(qualified.class.0).ok_or_else(|| {
                ApplianceError::InvalidConfig(format!(
                    "classifier emitted unknown class {}",
                    qualified.class
                ))
            })?;
            // lint: allow(PANIC_IN_LIB) -- CupContext and the window truth enumerate the same index space; from_index is total on it
            let truth = CupContext::from_index(w.truth.index()).expect("shared index space");
            let event = ContextEvent {
                source: "mediacup".into(),
                context,
                quality: qualified.quality,
                decision: qualified.decision,
                timestamp: w.t,
            };
            bus.publish(&event);
            out.push((event, truth));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod appliance_tests {
    use super::*;

    #[test]
    fn cup_stack_trains_and_filters() {
        let build = train_cup(77).expect("cup training");
        let s = build.trained_cqm.threshold.value;
        assert!(s > 0.0 && s < 1.0, "threshold {s}");
        assert!(build.trained_cqm.groups.is_ordered());
    }

    #[test]
    fn cup_publishes_qualified_events() {
        let build = train_cup(77).expect("cup training");
        let node = SensorNode::with_seed(4242);
        let mut cup = MediaCup::new(&build, node).unwrap();
        let bus = EventBus::new();
        let rx = bus.subscribe();
        let obs = cup.run_scenario(&coffee_break().unwrap(), &bus).unwrap();
        bus.close();
        let events: Vec<ContextEvent> = rx.iter().collect();
        assert_eq!(events.len(), obs.len());
        assert!(events.iter().all(|e| e.source == "mediacup"));
        // Accepted accuracy must not fall below raw accuracy (the §5
        // generality claim in miniature).
        let acc = |sel: &dyn Fn(&&(ContextEvent, CupContext)) -> bool| {
            let sel: Vec<_> = obs.iter().filter(sel).collect();
            if sel.is_empty() {
                return f64::NAN;
            }
            sel.iter()
                .filter(|(e, t)| e.context.index() == t.index())
                .count() as f64
                / sel.len() as f64
        };
        let all = acc(&|_| true);
        let accepted = acc(&|(e, _)| e.usable());
        assert!(
            accepted >= all - 1e-9,
            "accepted {accepted} should be >= raw {all}"
        );
    }

    #[test]
    fn cup_scenario_maps_to_motion_classes() {
        let s = cup_scenario(vec![(CupContext::Drinking, 2.0)]).unwrap();
        assert_eq!(s.segments()[0].0, Context::Writing);
        assert!(cup_scenario(vec![]).is_err());
    }
}
