//! Higher-level context aggregation (§5 outlook).
//!
//! "Such complex context systems may unveil the true potential of Ubiquitous
//! Computing … In order to process reasonable output, higher level context
//! processors require a measure to decide which of the simpler context
//! information to believe."
//!
//! The [`OfficeAggregator`] is that higher-level processor: it consumes the
//! qualified context events of *all* appliances on the bus, fuses them per
//! time bucket with quality weighting, and classifies the office situation
//! into [`OfficeSituation`]s. ε-quality and discarded reports never reach
//! the aggregate — the CQM acts as the belief gate.

// lint: allow(PANIC_IN_LIB, file) -- aggregation windows are non-empty by construction before the statistics

use std::collections::BTreeMap;

use cqm_core::fusion::{fuse, ContextReport, FusionRule};
use cqm_core::ClassId;
use cqm_sensors::Context;

use crate::bus::{BusHealth, EventBus};
use crate::events::ContextEvent;
use crate::{ApplianceError, Result};

/// The higher-level office situations derived from appliance activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfficeSituation {
    /// No appliance reports activity.
    Idle,
    /// Dominant writing activity: someone works at the whiteboard.
    FocusedWork,
    /// Dominant playing/handling activity: discussion, thinking, fiddling.
    ActiveDiscussion,
}

impl OfficeSituation {
    fn from_context(c: Context) -> OfficeSituation {
        match c {
            Context::LyingStill => OfficeSituation::Idle,
            Context::Writing => OfficeSituation::FocusedWork,
            Context::Playing => OfficeSituation::ActiveDiscussion,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OfficeSituation::Idle => "idle",
            OfficeSituation::FocusedWork => "focused work",
            OfficeSituation::ActiveDiscussion => "active discussion",
        }
    }
}

impl std::fmt::Display for OfficeSituation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One aggregated time bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedSituation {
    /// Bucket start time (seconds).
    pub t: f64,
    /// The fused office situation.
    pub situation: OfficeSituation,
    /// Fused confidence in `[0, 1]`.
    pub confidence: f64,
    /// Number of usable reports in the bucket.
    pub reports: usize,
    /// Reports excluded by quality (ε or publisher-discarded).
    pub excluded: usize,
}

/// Bucketing aggregator over qualified context events.
#[derive(Debug, Clone)]
pub struct OfficeAggregator {
    bucket_seconds: f64,
    respect_decisions: bool,
}

impl OfficeAggregator {
    /// Create an aggregator with the given time-bucket width.
    ///
    /// `respect_decisions` controls whether publisher-discarded events are
    /// excluded (the quality-aware mode) or counted like any other report
    /// (the naive baseline).
    ///
    /// # Errors
    ///
    /// Returns [`ApplianceError::InvalidConfig`] for a non-positive bucket.
    pub fn new(bucket_seconds: f64, respect_decisions: bool) -> Result<Self> {
        if !(bucket_seconds > 0.0 && bucket_seconds.is_finite()) {
            return Err(ApplianceError::InvalidConfig(format!(
                "bucket width {bucket_seconds} must be positive"
            )));
        }
        Ok(OfficeAggregator {
            bucket_seconds,
            respect_decisions,
        })
    }

    /// Aggregate a batch of events into per-bucket office situations.
    /// Buckets without any usable report are emitted as [`OfficeSituation::Idle`]
    /// with zero confidence — silence is information in an office.
    pub fn aggregate(&self, events: &[ContextEvent]) -> Vec<AggregatedSituation> {
        if events.is_empty() {
            return Vec::new();
        }
        let mut buckets: BTreeMap<i64, Vec<&ContextEvent>> = BTreeMap::new();
        for e in events {
            let key = (e.timestamp / self.bucket_seconds).floor() as i64;
            buckets.entry(key).or_default().push(e);
        }
        let first = *buckets.keys().next().expect("non-empty");
        let last = *buckets.keys().next_back().expect("non-empty");
        let mut out = Vec::new();
        for key in first..=last {
            let t = key as f64 * self.bucket_seconds;
            let bucket = buckets.get(&key);
            let (usable, excluded): (Vec<&ContextEvent>, Vec<&ContextEvent>) = bucket
                .map(|v| {
                    v.iter()
                        .partition(|e| !self.respect_decisions || e.usable())
                })
                .unwrap_or_default();
            let reports: Vec<ContextReport> = usable
                .iter()
                .map(|e| ContextReport {
                    source: e.source.clone(),
                    class: ClassId(e.context.index()),
                    quality: e.quality,
                })
                .collect();
            match fuse(&reports, FusionRule::WeightedSum) {
                Ok(fused) => {
                    let context = Context::from_index(fused.class.0).expect("valid class index");
                    out.push(AggregatedSituation {
                        t,
                        situation: OfficeSituation::from_context(context),
                        confidence: fused.confidence,
                        reports: reports.len(),
                        excluded: excluded.len() + fused.epsilon_reports,
                    });
                }
                Err(_) => out.push(AggregatedSituation {
                    t,
                    situation: OfficeSituation::Idle,
                    confidence: 0.0,
                    reports: 0,
                    excluded: excluded.len(),
                }),
            }
        }
        out
    }

    /// Aggregate and attach a snapshot of the transporting bus's delivery
    /// health, so higher-level consumers see not just *what* the office
    /// reported but how much of the report survived the transport (shed
    /// events are invisible in `events` by definition).
    pub fn aggregate_with_bus(&self, events: &[ContextEvent], bus: &EventBus) -> OfficeReport {
        OfficeReport {
            situations: self.aggregate(events),
            bus: bus.health(),
        }
    }
}

/// Aggregated situations together with transport health.
#[derive(Debug, Clone, PartialEq)]
pub struct OfficeReport {
    /// Per-bucket fused office situations.
    pub situations: Vec<AggregatedSituation>,
    /// Bus delivery statistics at aggregation time.
    pub bus: BusHealth,
}

impl OfficeReport {
    /// Whether the transport shed any events — if so, the situations were
    /// fused from an incomplete record and should be treated accordingly.
    pub fn transport_lossy(&self) -> bool {
        self.bus.dropped > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_core::filter::Decision;
    use cqm_core::normalize::Quality;

    fn ev(t: f64, src: &str, ctx: Context, q: f64, d: Decision) -> ContextEvent {
        ContextEvent {
            source: src.into(),
            context: ctx,
            quality: Quality::Value(q),
            decision: d,
            timestamp: t,
        }
    }

    #[test]
    fn construction_validated() {
        assert!(OfficeAggregator::new(0.0, true).is_err());
        assert!(OfficeAggregator::new(f64::NAN, true).is_err());
        assert!(OfficeAggregator::new(2.0, true).is_ok());
    }

    #[test]
    fn buckets_fuse_by_quality() {
        let agg = OfficeAggregator::new(5.0, true).unwrap();
        let events = vec![
            // Bucket 0: pen says writing strongly, cup weakly disagrees.
            ev(1.0, "pen", Context::Writing, 0.95, Decision::Accept),
            ev(2.0, "cup", Context::Playing, 0.3, Decision::Accept),
            // Bucket 1: unanimous playing.
            ev(6.0, "pen", Context::Playing, 0.8, Decision::Accept),
            ev(7.0, "cup", Context::Playing, 0.9, Decision::Accept),
        ];
        let situations = agg.aggregate(&events);
        assert_eq!(situations.len(), 2);
        assert_eq!(situations[0].situation, OfficeSituation::FocusedWork);
        assert_eq!(situations[1].situation, OfficeSituation::ActiveDiscussion);
        assert!(situations[1].confidence > situations[0].confidence);
    }

    #[test]
    fn discarded_reports_excluded_in_quality_mode() {
        let events = vec![
            ev(0.0, "pen", Context::Playing, 0.2, Decision::Discard),
            ev(1.0, "cup", Context::Writing, 0.9, Decision::Accept),
        ];
        let quality_mode = OfficeAggregator::new(5.0, true).unwrap();
        let s = quality_mode.aggregate(&events);
        assert_eq!(s[0].situation, OfficeSituation::FocusedWork);
        assert_eq!(s[0].reports, 1);
        assert_eq!(s[0].excluded, 1);
        // Naive mode counts the discarded report.
        let naive = OfficeAggregator::new(5.0, false).unwrap();
        let s = naive.aggregate(&events);
        assert_eq!(s[0].reports, 2);
    }

    #[test]
    fn silent_buckets_are_idle() {
        let agg = OfficeAggregator::new(2.0, true).unwrap();
        let events = vec![
            ev(0.5, "pen", Context::Writing, 0.9, Decision::Accept),
            // Gap: bucket at t=2..4 has no events.
            ev(4.5, "pen", Context::Writing, 0.9, Decision::Accept),
        ];
        let s = agg.aggregate(&events);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].situation, OfficeSituation::Idle);
        assert_eq!(s[1].confidence, 0.0);
        assert_eq!(s[1].reports, 0);
    }

    #[test]
    fn empty_input_empty_output() {
        let agg = OfficeAggregator::new(2.0, true).unwrap();
        assert!(agg.aggregate(&[]).is_empty());
    }

    #[test]
    fn bus_health_surfaces_through_aggregation() {
        use crate::bus::SlowSubscriberPolicy;
        let bus = EventBus::bounded(1, SlowSubscriberPolicy::DropNewest).unwrap();
        let rx = bus.subscribe();
        // Two publishes into a capacity-1 queue nobody drains: one sheds.
        let e1 = ev(0.0, "pen", Context::Writing, 0.9, Decision::Accept);
        let e2 = ev(1.0, "pen", Context::Writing, 0.8, Decision::Accept);
        bus.publish(&e1);
        bus.publish(&e2);
        let received: Vec<ContextEvent> = rx.try_iter().collect();
        let agg = OfficeAggregator::new(5.0, true).unwrap();
        let report = agg.aggregate_with_bus(&received, &bus);
        assert_eq!(report.situations.len(), 1);
        assert_eq!(report.situations[0].situation, OfficeSituation::FocusedWork);
        assert!(report.transport_lossy());
        assert_eq!(report.bus.dropped, 1);
        assert_eq!(report.bus.delivered, 1);
        // A clean bus yields a non-lossy report.
        let clean = EventBus::new();
        let report = agg.aggregate_with_bus(&[], &clean);
        assert!(!report.transport_lossy());
    }

    #[test]
    fn lying_still_maps_to_idle() {
        let agg = OfficeAggregator::new(5.0, true).unwrap();
        let events = vec![ev(0.0, "pen", Context::LyingStill, 0.95, Decision::Accept)];
        let s = agg.aggregate(&events);
        assert_eq!(s[0].situation, OfficeSituation::Idle);
        assert!(s[0].confidence > 0.9);
        assert_eq!(OfficeSituation::Idle.to_string(), "idle");
    }
}
