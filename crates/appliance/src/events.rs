//! Context events exchanged between appliances.
//!
//! "The detected situation information is then distributed to other
//! appliances in the AwareOffice environment" (§1). An event carries the
//! classification, its CQM, and the publishing appliance's accept/discard
//! verdict — consumers may apply their own threshold instead.

use cqm_core::filter::Decision;
use cqm_core::normalize::Quality;
use cqm_sensors::Context;
use serde::{Deserialize, Serialize};

/// A context report published on the office bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextEvent {
    /// Name of the publishing appliance ("awarepen", "mediacup", …).
    pub source: String,
    /// Detected context.
    pub context: Context,
    /// Quality of the detection.
    pub quality: Quality,
    /// The publisher's filter verdict at its trained threshold.
    pub decision: Decision,
    /// Sensor time of the underlying window (seconds).
    pub timestamp: f64,
}

impl ContextEvent {
    /// Whether a *quality-aware* consumer should act on this event.
    pub fn usable(&self) -> bool {
        matches!(self.decision, Decision::Accept)
    }
}

impl std::fmt::Display for ContextEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:7.2}s] {} -> {} ({}, {:?})",
            self.timestamp, self.source, self.context, self.quality, self.decision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(decision: Decision) -> ContextEvent {
        ContextEvent {
            source: "awarepen".into(),
            context: Context::Writing,
            quality: Quality::Value(0.9),
            decision,
            timestamp: 12.5,
        }
    }

    #[test]
    fn usable_mirrors_decision() {
        assert!(event(Decision::Accept).usable());
        assert!(!event(Decision::Discard).usable());
    }

    #[test]
    fn display_contains_fields() {
        let s = event(Decision::Accept).to_string();
        assert!(s.contains("awarepen"));
        assert!(s.contains("writing"));
        assert!(s.contains("12.50"));
    }

    #[test]
    fn serde_round_trip() {
        let e = event(Decision::Discard);
        let json = serde_json::to_string(&e).unwrap();
        let back: ContextEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
