//! Deterministic crash recovery: checkpoint + journal tail → the state the
//! process died in.
//!
//! The protocol a restartable appliance follows:
//!
//! 1. [`RecoveryManager::begin_run`] — durably write the initial
//!    checkpoint, start a fresh journal, append the [`RunHeader`];
//! 2. after every supervisor step, [`RecoveryManager::record_step`] (and
//!    [`RecoveryManager::record_event`] for published bus events);
//! 3. periodically [`RecoveryManager::checkpoint`] to bound the journal
//!    tail that recovery must replay;
//! 4. after a crash, [`RecoveryManager::recover`] — load the last good
//!    checkpoint, repair the journal's torn tail, and hand back a
//!    [`RecoveredRun`] that can rebuild the supervisor
//!    ([`RecoveredRun::restore_supervisor`]) and prove the rebuild correct
//!    by re-running the journaled plan ([`RecoveredRun::verify_replay`]).
//!
//! Ordering note: a checkpoint is written *before* its `CheckpointMark` is
//! journaled, so every mark in the journal refers to a checkpoint that is
//! already durable. The reverse order could leave a mark pointing at
//! nothing after a crash between the two writes.

use std::path::PathBuf;

use cqm_appliance::events::ContextEvent;
use cqm_core::classifier::Classifier;
use cqm_core::monitor::QualityMonitor;
use cqm_core::pipeline::CqmSystem;
use cqm_resilience::fault::FaultInjector;
use cqm_resilience::supervisor::{StepReport, SupervisedSystem, WindowSource};

use crate::checkpoint::{load_checkpoint, save_checkpoint};
use crate::journal::{scan_and_repair, JournalWriter};
use crate::records::{JournalRecord, RunHeader, RuntimeCheckpoint};
use crate::{PersistError, Result};

/// File names inside the persistence directory.
const CHECKPOINT_FILE: &str = "checkpoint.cqm";
const JOURNAL_FILE: &str = "journal.wal";

/// Owns a persistence directory and the run-time journaling protocol.
#[derive(Debug)]
pub struct RecoveryManager {
    dir: PathBuf,
    sync_every: usize,
    writer: Option<JournalWriter>,
    seq: u64,
}

impl RecoveryManager {
    /// Bind a manager to `dir`, creating it if needed. `sync_every` batches
    /// journal fsyncs (1 = every record).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the directory cannot be created and
    /// [`PersistError::InvalidState`] for `sync_every == 0`.
    pub fn new(dir: impl Into<PathBuf>, sync_every: usize) -> Result<Self> {
        if sync_every == 0 {
            return Err(PersistError::InvalidState(
                "sync_every must be positive".into(),
            ));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| PersistError::io("creating persistence dir", &e))?;
        Ok(RecoveryManager {
            dir,
            sync_every,
            writer: None,
            seq: 0,
        })
    }

    /// Path of the checkpoint file.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// Steps journaled so far in this run.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn writer(&mut self) -> Result<&mut JournalWriter> {
        self.writer.as_mut().ok_or_else(|| {
            PersistError::InvalidState("no active run: call begin_run first".into())
        })
    }

    /// Start a fresh run: durably checkpoint the initial state, truncate
    /// the journal, and append the run header.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint and journal I/O failures.
    pub fn begin_run(&mut self, initial: &RuntimeCheckpoint, header: &RunHeader) -> Result<()> {
        save_checkpoint(&self.checkpoint_path(), initial)?;
        let mut writer = JournalWriter::create(&self.journal_path(), self.sync_every)?;
        writer.append(&JournalRecord::Header(header.clone()))?;
        writer.sync()?;
        self.writer = Some(writer);
        self.seq = initial.seq;
        Ok(())
    }

    /// Journal one supervisor step; returns its sequence number.
    ///
    /// # Errors
    ///
    /// Propagates journal append failures.
    pub fn record_step(&mut self, report: &StepReport) -> Result<u64> {
        let seq = self.seq + 1;
        self.writer()?
            .append(&JournalRecord::Step {
                seq,
                report: report.clone(),
            })?;
        self.seq = seq;
        Ok(seq)
    }

    /// Journal a published bus event under the current step.
    ///
    /// # Errors
    ///
    /// Propagates journal append failures.
    pub fn record_event(&mut self, event: &ContextEvent) -> Result<()> {
        let seq = self.seq;
        self.writer()?.append(&JournalRecord::Event {
            seq,
            event: event.clone(),
        })
    }

    /// Cut a checkpoint covering everything journaled so far, then journal
    /// the mark. The caller passes the state to persist (typically built
    /// with the supervisor's current snapshot).
    ///
    /// # Errors
    ///
    /// Propagates checkpoint write and journal append failures.
    pub fn checkpoint(&mut self, state: &RuntimeCheckpoint) -> Result<()> {
        if state.seq != self.seq {
            return Err(PersistError::InvalidState(format!(
                "checkpoint claims seq {} but {} steps are journaled",
                state.seq, self.seq
            )));
        }
        save_checkpoint(&self.checkpoint_path(), state)?;
        let seq = self.seq;
        let w = self.writer()?;
        w.append(&JournalRecord::CheckpointMark { seq })?;
        w.sync()
    }

    /// Force the journal to stable storage (e.g. before a planned stop).
    ///
    /// # Errors
    ///
    /// Propagates fsync failures.
    pub fn sync(&mut self) -> Result<()> {
        self.writer()?.sync()
    }

    /// Recover after a restart: load the last good checkpoint, repair the
    /// journal's torn tail, and validate the step sequence.
    ///
    /// # Errors
    ///
    /// * [`PersistError::NoCheckpoint`] on first boot;
    /// * [`PersistError::Corrupt`] / [`PersistError::SchemaVersion`] /
    ///   [`PersistError::Decode`] for damaged files;
    /// * [`PersistError::Corrupt`] if the journal lacks its header record
    ///   or has a gap in step sequence numbers.
    pub fn recover(&self) -> Result<RecoveredRun> {
        let checkpoint: RuntimeCheckpoint = load_checkpoint(&self.checkpoint_path())?;
        let scan = scan_and_repair::<JournalRecord>(&self.journal_path())?;
        let mut iter = scan.records.into_iter();
        let header = match iter.next() {
            Some(JournalRecord::Header(h)) => h,
            Some(_) => {
                return Err(PersistError::Corrupt(
                    "journal does not start with a run header".into(),
                ));
            }
            None => {
                return Err(PersistError::Corrupt(
                    "journal is empty (header record lost)".into(),
                ));
            }
        };
        let mut steps = Vec::new();
        let mut events = Vec::new();
        let mut last_mark = 0u64;
        for record in iter {
            match record {
                JournalRecord::Header(_) => {
                    return Err(PersistError::Corrupt(
                        "second run header mid-journal".into(),
                    ));
                }
                JournalRecord::Step { seq, report } => {
                    let expected = steps.len() as u64 + 1;
                    if seq != expected {
                        return Err(PersistError::Corrupt(format!(
                            "journal step seq {seq} where {expected} was expected"
                        )));
                    }
                    steps.push(report);
                }
                JournalRecord::Event { seq, event } => {
                    if seq > steps.len() as u64 {
                        return Err(PersistError::Corrupt(format!(
                            "journal event references future step {seq}"
                        )));
                    }
                    events.push(event);
                }
                JournalRecord::CheckpointMark { seq } => {
                    if seq > steps.len() as u64 {
                        return Err(PersistError::Corrupt(format!(
                            "checkpoint mark references future step {seq}"
                        )));
                    }
                    last_mark = seq;
                }
            }
        }
        if checkpoint.seq > steps.len() as u64 {
            return Err(PersistError::Corrupt(format!(
                "checkpoint covers {} steps but only {} are journaled",
                checkpoint.seq,
                steps.len()
            )));
        }
        Ok(RecoveredRun {
            checkpoint,
            header,
            steps,
            events,
            last_checkpoint_mark: last_mark,
            truncated_bytes: scan.truncated_bytes,
        })
    }

    /// Resume journaling after [`recover`](Self::recover): reopen the
    /// repaired journal for appending and continue sequence numbers from
    /// the recovered step count.
    ///
    /// # Errors
    ///
    /// Propagates journal open failures.
    pub fn resume_run(&mut self, recovered: &RecoveredRun) -> Result<()> {
        let writer = JournalWriter::open_append(&self.journal_path(), self.sync_every)?;
        self.writer = Some(writer);
        self.seq = recovered.steps.len() as u64;
        Ok(())
    }
}

/// Everything pulled back from disk by [`RecoveryManager::recover`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredRun {
    /// The last durably-written checkpoint.
    pub checkpoint: RuntimeCheckpoint,
    /// The run description (seed, faults, windows, config).
    pub header: RunHeader,
    /// Every journaled step, in order, starting at seq 1.
    pub steps: Vec<StepReport>,
    /// Every journaled bus event, in order.
    pub events: Vec<ContextEvent>,
    /// Highest `CheckpointMark` seq found in the journal.
    pub last_checkpoint_mark: u64,
    /// Torn-tail bytes truncated during journal repair.
    pub truncated_bytes: u64,
}

impl RecoveredRun {
    /// Journal steps recorded after the checkpoint was cut — the tail that
    /// replay must apply on top of the checkpointed supervisor state.
    pub fn tail(&self) -> &[StepReport] {
        &self.steps[self.checkpoint.seq as usize..]
    }

    /// Rebuild the supervised system exactly as it was at the crash:
    /// compose the pipeline from the checkpointed model and the caller's
    /// black-box classifier, restore the supervisor snapshot, then apply
    /// the journal tail.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::InvalidState`] if any restored component
    /// fails its owning crate's revalidation (threshold, policy, monitor,
    /// cue-dimension mismatch with `classifier`).
    pub fn restore_supervisor<C: Classifier>(
        &self,
        classifier: C,
    ) -> Result<SupervisedSystem<C>> {
        let filter = self.checkpoint.model.filter()?;
        let system = CqmSystem::new(classifier, self.checkpoint.model.measure.clone(), filter)?;
        let mut supervisor = SupervisedSystem::restore(system, &self.checkpoint.supervisor)?;
        for report in self.tail() {
            supervisor.apply_journaled_step(report);
        }
        Ok(supervisor)
    }

    /// Prove the recovery deterministic: rebuild a *fresh* supervisor from
    /// the checkpointed model and the run header's initial config, re-run
    /// the journaled fault plan over the journaled windows, and demand that
    /// every regenerated step report equals its journaled counterpart
    /// bit-for-bit (f64 quality values included — the JSON codec
    /// round-trips floats exactly).
    ///
    /// Returns the number of steps verified.
    ///
    /// # Errors
    ///
    /// * [`PersistError::ReplayDivergence`] at the first mismatching step;
    /// * [`PersistError::InvalidState`] if model or plan fail revalidation.
    pub fn verify_replay<C: Classifier>(&self, classifier: C) -> Result<usize> {
        let filter = self.checkpoint.model.filter()?;
        let system = CqmSystem::new(classifier, self.checkpoint.model.measure.clone(), filter)?;
        let mut supervisor = SupervisedSystem::new(system, self.header.config);
        if let Some(snap) = &self.header.monitor {
            supervisor = supervisor.with_monitor(QualityMonitor::from_snapshot(snap)?);
        }
        let plan = self.header.fault_plan()?;
        let mut source = WindowSource::new(self.header.windows.clone(), FaultInjector::new(&plan));
        for (i, journaled) in self.steps.iter().enumerate() {
            let Some(live) = supervisor.step(&mut source) else {
                return Err(PersistError::ReplayDivergence {
                    step: i,
                    detail: "replayed stream ended before the journal did".into(),
                });
            };
            if &live != journaled {
                return Err(PersistError::ReplayDivergence {
                    step: i,
                    detail: format!("journaled {journaled:?} but replay produced {live:?}"),
                });
            }
        }
        Ok(self.steps.len())
    }
}
