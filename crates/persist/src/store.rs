//! A directory of tenant-keyed checkpoints.
//!
//! [`CheckpointStore`] maps a sanitized tenant key to one checkpoint file
//! (`<dir>/<key>.ckpt`) and hands out [`CheckpointHandle`]s bound to those
//! paths, so every per-tenant save inherits the atomic
//! tmp+fsync+rename+dir-fsync discipline of [`crate::checkpoint`]. The store
//! itself holds no file descriptors and no cache — it is a naming scheme
//! plus key validation, which is exactly what a model registry needs to
//! treat disk as the source of truth for which tenants exist.
//!
//! Keys are restricted to `[A-Za-z0-9_-]`, 1..=64 bytes. That closes path
//! traversal (`../`), separator smuggling, and empty-name edge cases before
//! any path is formed; a bad key is a typed [`PersistError::InvalidState`],
//! never a file operation.

use std::path::{Path, PathBuf};

use crate::checkpoint::CheckpointHandle;
use crate::{PersistError, Result};

/// Longest accepted tenant key, in bytes.
pub const MAX_KEY_LEN: usize = 64;

/// Extension given to every checkpoint file in the store.
const CKPT_EXT: &str = "ckpt";

/// Validate a tenant key: 1..=[`MAX_KEY_LEN`] bytes of `[A-Za-z0-9_-]`.
///
/// # Errors
///
/// Returns [`PersistError::InvalidState`] naming the offending key.
pub fn validate_key(key: &str) -> Result<()> {
    let ok_len = !key.is_empty() && key.len() <= MAX_KEY_LEN;
    let ok_chars = key
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok_len && ok_chars {
        Ok(())
    } else {
        Err(PersistError::InvalidState(format!(
            "invalid tenant key {key:?}: need 1..={MAX_KEY_LEN} bytes of [A-Za-z0-9_-]"
        )))
    }
}

/// A directory of per-key checkpoints; see the module docs.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Bind a store to `dir`, creating the directory (and parents) if
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| PersistError::io("creating checkpoint store dir", &e))?;
        Ok(CheckpointStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The checkpoint path for `key`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::InvalidState`] on a key failing
    /// [`validate_key`].
    pub fn path(&self, key: &str) -> Result<PathBuf> {
        validate_key(key)?;
        Ok(self.dir.join(format!("{key}.{CKPT_EXT}")))
    }

    /// A [`CheckpointHandle`] bound to `key`'s path. Nothing is touched on
    /// disk until a save/load call.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::InvalidState`] on a key failing
    /// [`validate_key`].
    pub fn handle(&self, key: &str) -> Result<CheckpointHandle> {
        Ok(CheckpointHandle::new(self.path(key)?))
    }

    /// Whether a checkpoint file currently exists for `key` (it may still
    /// fail validation on load).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::InvalidState`] on a key failing
    /// [`validate_key`].
    pub fn exists(&self, key: &str) -> Result<bool> {
        Ok(self.path(key)?.exists())
    }

    /// Keys with a checkpoint file in the store, sorted ascending so the
    /// listing is deterministic regardless of directory iteration order.
    /// Files without the store's extension or with names that fail key
    /// validation (e.g. leftover `.tmp` siblings from an interrupted save)
    /// are skipped, not errors.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the directory cannot be read.
    pub fn list_keys(&self) -> Result<Vec<String>> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| PersistError::io("listing checkpoint store dir", &e))?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| PersistError::io("listing checkpoint store dir", &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(&format!(".{CKPT_EXT}")) else {
                continue;
            };
            if validate_key(stem).is_ok() {
                keys.push(stem.to_string());
            }
        }
        keys.sort();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Blob {
        id: u64,
        weights: Vec<f64>,
    }

    fn scratch_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("cqm_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        CheckpointStore::new(&dir).expect("store")
    }

    #[test]
    fn key_validation() {
        for ok in ["a", "tenant-7", "A_b-C9", &"x".repeat(MAX_KEY_LEN)] {
            assert!(validate_key(ok).is_ok(), "{ok:?} should be valid");
        }
        for bad in [
            "",
            "../escape",
            "a/b",
            "a b",
            "naïve",
            "dot.dot",
            &"x".repeat(MAX_KEY_LEN + 1),
        ] {
            assert!(
                matches!(validate_key(bad), Err(PersistError::InvalidState(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn per_key_round_trip_and_isolation() {
        let store = scratch_store("roundtrip");
        let a = Blob { id: 1, weights: vec![0.5, 1.0 / 3.0] };
        let b = Blob { id: 2, weights: vec![-0.25] };
        store.handle("alpha").unwrap().save(&a).unwrap();
        store.handle("beta").unwrap().save(&b).unwrap();
        assert_eq!(store.handle("alpha").unwrap().load::<Blob>().unwrap(), a);
        assert_eq!(store.handle("beta").unwrap().load::<Blob>().unwrap(), b);
        assert!(store.exists("alpha").unwrap());
        assert!(!store.exists("gamma").unwrap());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn list_keys_is_sorted_and_skips_foreign_files() {
        let store = scratch_store("list");
        let blob = Blob { id: 9, weights: vec![] };
        for key in ["zeta", "alpha", "mid-7"] {
            store.handle(key).unwrap().save(&blob).unwrap();
        }
        // Foreign files and torn tmp siblings are ignored.
        std::fs::write(store.dir().join("notes.txt"), b"hi").unwrap();
        std::fs::write(store.dir().join("alpha.ckpt.tmp"), b"torn").unwrap();
        assert_eq!(store.list_keys().unwrap(), vec!["alpha", "mid-7", "zeta"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn bad_key_is_typed_before_any_io() {
        let store = scratch_store("badkey");
        assert!(store.handle("../up").is_err());
        assert!(store.path("").is_err());
        assert!(store.exists("a/b").is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
